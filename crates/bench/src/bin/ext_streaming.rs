//! Extension experiment (beyond the paper's figures): response-time
//! behaviour under streaming Poisson arrivals.
//!
//! The paper evaluates batch workloads (all requests queued at time 0).
//! Its complexity analysis, however, explicitly anticipates an online
//! deployment where "the planner should be scheduled more frequently".
//! This experiment sweeps the offered load (mean inter-arrival gap) and
//! reports p50/p95 response times for the windowed online planner vs the
//! serial CPU baseline, exposing the saturation point of each.
//!
//! Arguments: `--requests N` (default 40), `--seed S`.

use h2p_bench::{arg_usize, print_table};
use h2p_models::graph::ModelGraph;
use h2p_simulator::{audit, SocSpec};
use hetero2pipe::executor::{lower_with_arrivals, percentile, response_times};
use hetero2pipe::online::OnlinePlanner;
use hetero2pipe::planner::Planner;
use hetero2pipe::workload::{poisson_arrivals, random_models};

fn main() {
    let n = arg_usize("--requests", 40);
    let seed = arg_usize("--seed", 20_250_705) as u64;
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let models = random_models(seed, n);
    let requests: Vec<ModelGraph> = models.iter().map(|m| m.graph()).collect();

    let mut rows = Vec::new();
    let (mut lint_clean, mut audits_clean, mut events_total) = (true, true, 0usize);
    for gap_ms in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let arrivals = poisson_arrivals(seed ^ 0x57, n, gap_ms);
        // Online Hetero2Pipe, window 8. Both verification layers run on
        // every operating point: the static lint on the combined plan
        // before lowering, the dynamic trace audit after execution.
        let online = OnlinePlanner::new(planner.clone(), 8);
        let planned = online.plan(&requests).expect("plan");
        lint_clean &= planned.lint(&soc).is_clean();
        let lowered = lower_with_arrivals(&planned.plan, &soc, &arrivals).expect("lower");
        let tasks = lowered.simulation().tasks().to_vec();
        let (h2p, events) = lowered.execute_logged().expect("exec");
        events_total += events.len();
        audits_clean &= audit::audit(&soc, &tasks, &h2p.trace).is_clean();
        let h2p_resp = response_times(&h2p, &arrivals);
        // Serial CPU-Big baseline with the same arrivals: one task per
        // request, FIFO on CPU_B, released at arrival.
        let serial = serial_with_arrivals(&soc, &requests, &arrivals);
        rows.push(vec![
            format!("{gap_ms:.0}"),
            format!("{:.0}", percentile(&h2p_resp, 50.0)),
            format!("{:.0}", percentile(&h2p_resp, 95.0)),
            format!("{:.0}", percentile(&serial, 50.0)),
            format!("{:.0}", percentile(&serial, 95.0)),
        ]);
    }
    print_table(
        &format!("Extension — streaming response times, Kirin 990 ({n} Poisson requests)"),
        &[
            "mean gap (ms)",
            "H2P p50",
            "H2P p95",
            "Serial p50",
            "Serial p95",
        ],
        &rows,
    );
    println!(
        "\nAt tight gaps the serial CPU queue saturates (response times explode with\nqueue depth) while the pipeline's higher service rate keeps percentiles\nbounded; at sparse arrivals both converge to solo latency."
    );
    println!(
        "\nverification: static lint {}, trace audit {} ({events_total} engine events logged)",
        if lint_clean { "clean" } else { "FAILED" },
        if audits_clean { "clean" } else { "FAILED" },
    );
    if !(lint_clean && audits_clean) {
        std::process::exit(1);
    }
}

/// Serial CPU-Big execution with request release times; returns
/// per-request response times.
fn serial_with_arrivals(soc: &SocSpec, requests: &[ModelGraph], arrivals: &[f64]) -> Vec<f64> {
    use h2p_models::cost::CostModel;
    use h2p_models::graph::LayerRange;
    use h2p_simulator::engine::{Simulation, TaskSpec};
    let big = soc.processor_by_name("CPU_B").expect("CPU_B");
    let cost = CostModel::new(soc);
    let mut sim = Simulation::new(soc.clone());
    for (i, g) in requests.iter().enumerate() {
        let whole = LayerRange::new(0, g.len() - 1);
        let ms = cost
            .slice_latency_ms(g, whole, big)
            .expect("CPU supports everything");
        sim.add_task(
            TaskSpec::new(format!("{}#{i}", g.name()), big, ms)
                .release(arrivals.get(i).copied().unwrap_or(0.0)),
        );
    }
    let trace = sim.run().expect("runs");
    (0..requests.len())
        .map(|i| trace.span(i).map_or(0.0, |s| s.end_ms) - arrivals.get(i).copied().unwrap_or(0.0))
        .collect()
}
