//! Extension experiment (beyond the paper's figures): response-time
//! behaviour under streaming Poisson arrivals.
//!
//! The paper evaluates batch workloads (all requests queued at time 0).
//! Its complexity analysis, however, explicitly anticipates an online
//! deployment where "the planner should be scheduled more frequently".
//! This experiment sweeps the offered load (mean inter-arrival gap) and
//! reports p50/p95 response times for the windowed online planner vs the
//! serial CPU baseline, exposing the saturation point of each.
//!
//! Arguments: `--requests N` (default 40), `--seed S`, and
//! `--metrics-log PATH` to stream periodic metrics snapshots (one JSON
//! object per line) while the sweep runs.

use std::sync::Arc;
use std::time::Duration;

use h2p_bench::{arg_str, arg_usize, print_table};
use h2p_models::graph::ModelGraph;
use h2p_simulator::{audit, SocSpec};
use h2p_telemetry::MetricsRegistry;
use hetero2pipe::executor::{lower_with_arrivals, percentile, response_times};
use hetero2pipe::online::OnlinePlanner;
use hetero2pipe::plan::PipelinePlan;
use hetero2pipe::planner::Planner;
use hetero2pipe::workload::{poisson_arrivals, random_models};

/// The online planner's re-planning window (requests per window).
const WINDOW: usize = 8;

fn main() {
    let n = arg_usize("--requests", 40);
    let seed = arg_usize("--seed", 20_250_705) as u64;
    let metrics_log = arg_str("--metrics-log", "");
    // Live metrics stream: a background flusher snapshots this registry
    // to JSONL while the sweep runs, the deployment-style counterpart
    // of the final printed table.
    let metrics = Arc::new(MetricsRegistry::new());
    let flusher = if metrics_log.is_empty() {
        None
    } else {
        Some(
            metrics
                .flush_every(
                    Duration::from_millis(25),
                    std::path::Path::new(&metrics_log),
                )
                .expect("metrics flusher"),
        )
    };
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let models = random_models(seed, n);
    let requests: Vec<ModelGraph> = models.iter().map(|m| m.graph()).collect();

    // Online Hetero2Pipe, window 8. Windowed planning is independent of
    // the arrival times, so the stream is planned once and re-executed
    // at every offered load. The static lint runs on the combined plan
    // before any lowering.
    let online = OnlinePlanner::new(planner.clone(), WINDOW);
    let planned = online.plan(&requests).expect("plan");
    let mut lint_clean = planned.lint(&soc).is_clean();

    let mut rows = Vec::new();
    let (mut audits_clean, mut events_total, mut windows_audited) = (true, 0usize, 0usize);
    for gap_ms in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let arrivals = poisson_arrivals(seed ^ 0x57, n, gap_ms);
        // Full-stream execution with the *reconciled* audit: the
        // envelope contracts plus the event-log replay of the logged
        // piecewise interference rates.
        let lowered = lower_with_arrivals(&planned.plan, &soc, &arrivals).expect("lower");
        let tasks = lowered.simulation().tasks().to_vec();
        let (h2p, events) = lowered.execute_logged().expect("exec");
        events_total += events.len();
        audits_clean &= audit::audit_with_events(&soc, &tasks, &events, &h2p.trace).is_clean();
        // Streaming audit: every planning window is additionally
        // executed and reconciled in isolation, with its own slice of
        // the arrival stream rebased to the window's opening — the
        // per-window gate an online deployment would run between
        // planner invocations.
        for (w, win_plan) in window_plans(&planned.plan, WINDOW).iter().enumerate() {
            let offset = w * WINDOW;
            let base = arrivals.get(offset).copied().unwrap_or(0.0);
            let rel: Vec<f64> = arrivals[offset..(offset + WINDOW).min(arrivals.len())]
                .iter()
                .map(|a| (a - base).max(0.0))
                .collect();
            let lowered = lower_with_arrivals(win_plan, &soc, &rel).expect("lower window");
            let win_tasks = lowered.simulation().tasks().to_vec();
            let (rep, ev) = lowered.execute_logged().expect("exec window");
            audits_clean &= audit::audit_with_events(&soc, &win_tasks, &ev, &rep.trace).is_clean();
            lint_clean &= h2p_analyze::lint_tasks(&soc, &win_tasks).is_clean();
            windows_audited += 1;
        }
        let h2p_resp = response_times(&h2p, &arrivals);
        metrics.inc("streaming.loads");
        metrics.add("streaming.events", events.len() as u64);
        metrics.gauge("streaming.last_gap_ms", gap_ms);
        metrics.observe("streaming.p95_ms", percentile(&h2p_resp, 95.0));
        // Serial CPU-Big baseline with the same arrivals: one task per
        // request, FIFO on CPU_B, released at arrival.
        let serial = serial_with_arrivals(&soc, &requests, &arrivals);
        rows.push(vec![
            format!("{gap_ms:.0}"),
            format!("{:.0}", percentile(&h2p_resp, 50.0)),
            format!("{:.0}", percentile(&h2p_resp, 95.0)),
            format!("{:.0}", percentile(&serial, 50.0)),
            format!("{:.0}", percentile(&serial, 95.0)),
        ]);
    }
    print_table(
        &format!("Extension — streaming response times, Kirin 990 ({n} Poisson requests)"),
        &[
            "mean gap (ms)",
            "H2P p50",
            "H2P p95",
            "Serial p50",
            "Serial p95",
        ],
        &rows,
    );
    println!(
        "\nAt tight gaps the serial CPU queue saturates (response times explode with\nqueue depth) while the pipeline's higher service rate keeps percentiles\nbounded; at sparse arrivals both converge to solo latency."
    );
    println!(
        "\nverification: static lint {}, reconciled trace audit {} ({windows_audited} windows \
         audited, {events_total} engine events logged)",
        if lint_clean { "clean" } else { "FAILED" },
        if audits_clean { "clean" } else { "FAILED" },
    );
    if let Some(handle) = flusher {
        metrics.add("streaming.windows_audited", windows_audited as u64);
        let snapshots = handle.stop().expect("metrics flusher join");
        println!("metrics log: {snapshots} snapshot(s) written to {metrics_log}");
    }
    if !(lint_clean && audits_clean) {
        std::process::exit(1);
    }
}

/// Splits the online planner's concatenated plan back into its
/// per-window plans, request indices rebased to each window.
fn window_plans(plan: &PipelinePlan, window: usize) -> Vec<PipelinePlan> {
    plan.requests
        .chunks(window)
        .enumerate()
        .map(|(w, chunk)| {
            let mut requests = chunk.to_vec();
            for req in &mut requests {
                req.request -= w * window;
            }
            PipelinePlan {
                procs: plan.procs.clone(),
                requests,
            }
        })
        .collect()
}

/// Serial CPU-Big execution with request release times; returns
/// per-request response times.
fn serial_with_arrivals(soc: &SocSpec, requests: &[ModelGraph], arrivals: &[f64]) -> Vec<f64> {
    use h2p_models::cost::CostModel;
    use h2p_models::graph::LayerRange;
    use h2p_simulator::engine::{Simulation, TaskSpec};
    let big = soc.processor_by_name("CPU_B").expect("CPU_B");
    let cost = CostModel::new(soc);
    let mut sim = Simulation::new(soc.clone());
    for (i, g) in requests.iter().enumerate() {
        let whole = LayerRange::new(0, g.len() - 1);
        let ms = cost
            .slice_latency_ms(g, whole, big)
            .expect("CPU supports everything");
        sim.add_task(
            TaskSpec::new(format!("{}#{i}", g.name()), big, ms)
                .release(arrivals.get(i).copied().unwrap_or(0.0)),
        );
    }
    let trace = sim.run().expect("runs");
    (0..requests.len())
        .map(|i| trace.span(i).map_or(0.0, |s| s.end_ms) - arrivals.get(i).copied().unwrap_or(0.0))
        .collect()
}
