//! Fig. 2(a) — queueing delay accumulates under serial CPU-Big execution
//! and collapses once heterogeneous processors share the load.
//!
//! A stream of requests is executed (i) serially on the CPU Big cores
//! (vanilla MNN) and (ii) with the full Hetero²Pipe pipeline; the table
//! shows each request's completion time under both.

use h2p_baselines::Scheme;
use h2p_bench::print_table;
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;

fn main() {
    let soc = SocSpec::kirin_990();
    let stream = [
        ModelId::ResNet50,
        ModelId::SqueezeNet,
        ModelId::InceptionV4,
        ModelId::MobileNetV2,
        ModelId::GoogLeNet,
        ModelId::AlexNet,
        ModelId::ResNet50,
        ModelId::Vit,
    ];
    let graphs: Vec<ModelGraph> = stream.iter().map(|m| m.graph()).collect();
    let serial = Scheme::MnnSerial
        .run(&soc, &graphs)
        .expect("serial baseline runs");
    let hetero = Scheme::Hetero2Pipe
        .run(&soc, &graphs)
        .expect("planner runs");

    let rows: Vec<Vec<String>> = stream
        .iter()
        .enumerate()
        .map(|(i, id)| {
            vec![
                format!("{i}"),
                id.name().to_owned(),
                format!("{:.1}", serial.request_latency_ms[i]),
                format!("{:.1}", hetero.request_latency_ms[i]),
            ]
        })
        .collect();
    print_table(
        "Fig. 2(a) — completion time per request (ms), Kirin 990",
        &["#", "Model", "Serial CPU_B", "Hetero2Pipe"],
        &rows,
    );
    println!(
        "\nSerial makespan {:.1} ms vs heterogeneous {:.1} ms ({:.2}x).",
        serial.makespan_ms,
        hetero.makespan_ms,
        serial.makespan_ms / hetero.makespan_ms
    );
}
