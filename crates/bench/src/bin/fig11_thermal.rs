//! Appendix B (Fig. 11's thermal discussion) — thermal behaviour under
//! continuous inference: the CPU clusters heat past their throttle point
//! and slow down, while the GPU/NPU stay inside their envelope.
//!
//! Runs a long back-to-back ResNet50 stream on each processor in
//! *transient* thermal mode and reports per-inference latency at the
//! start vs at thermal steady state, plus the steady-state temperatures.

use h2p_bench::print_table;
use h2p_models::cost::CostModel;
use h2p_models::graph::LayerRange;
use h2p_models::zoo::ModelId;
use h2p_simulator::engine::{Simulation, TaskSpec};
use h2p_simulator::thermal::{ThermalMode, ThermalSpec};
use h2p_simulator::SocSpec;

fn main() {
    let mut soc = SocSpec::kirin_990();
    soc.thermal_mode = ThermalMode::Transient;
    let cost = CostModel::new(&soc);
    let g = ModelId::ResNet50.graph();
    let whole = LayerRange::new(0, g.len() - 1);

    let mut rows = Vec::new();
    for pname in ["CPU_B", "CPU_S", "GPU", "NPU"] {
        let pid = soc.processor_by_name(pname).expect("kirin processor");
        let solo = cost
            .slice_latency_ms(&g, whole, pid)
            .expect("ResNet50 runs everywhere");
        // Run enough back-to-back inferences to pass the thermal time
        // constant (~tens of seconds of busy time).
        let reps = ((60_000.0 / solo).ceil() as usize).clamp(20, 4000);
        let mut sim = Simulation::new(soc.clone());
        for i in 0..reps {
            sim.add_task(TaskSpec::new(format!("r{i}"), pid, solo));
        }
        let trace = sim.run().expect("runs");
        let first = trace.span(0).expect("ran").duration_ms();
        let last = trace.span(reps - 1).expect("ran").duration_ms();
        let spec = ThermalSpec::for_kind(soc.processor(pid).kind);
        rows.push(vec![
            pname.to_owned(),
            format!("{first:.1}"),
            format!("{last:.1}"),
            format!("{:+.1}%", (last / first - 1.0) * 100.0),
            format!("{:.0} C", spec.steady_state_c()),
            format!("{:.0} C", spec.throttle_c),
            if spec.throttles_at_steady_state() {
                "yes".to_owned()
            } else {
                "no".to_owned()
            },
        ]);
    }
    print_table(
        "Appendix B — continuous ResNet50 inference, transient thermal mode (Kirin 990)",
        &[
            "Processor",
            "cold (ms)",
            "hot (ms)",
            "slowdown",
            "steady T",
            "throttle T",
            "throttles",
        ],
        &rows,
    );
    println!(
        "\nShape check: CPUs exceed 60 C and throttle; GPU/NPU equilibrate below 50 C —\nwhich is why all evaluation experiments run pinned at thermal steady state."
    );
}
