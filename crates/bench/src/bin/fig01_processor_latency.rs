//! Fig. 1 / Fig. 11 — processing latency of every model on every
//! processor of the Kirin 990, at thermal steady state.
//!
//! Expected shape (paper): the NPU is fastest by an order of magnitude
//! where operators are supported; the Big CPU cluster is generally on par
//! with the OpenCL GPU; the Small cluster degrades heavily; YOLOv4 and
//! BERT report errors on the NPU due to unsupported operators.

use h2p_bench::print_table;
use h2p_models::cost::CostModel;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;

fn main() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let procs = ["CPU_B", "GPU", "CPU_S", "NPU"];
    let rows: Vec<Vec<String>> = ModelId::ALL
        .iter()
        .map(|id| {
            let g = id.graph();
            let mut row = vec![id.name().to_owned()];
            for p in procs {
                let pid = soc.processor_by_name(p).expect("kirin processor");
                row.push(match cost.model_latency_ms(&g, pid) {
                    Some(ms) => format!("{ms:.1}"),
                    None => "ERR (unsupported op)".to_owned(),
                });
            }
            row
        })
        .collect();
    print_table(
        "Fig. 1 / Fig. 11 — solo inference latency (ms) on Kirin 990",
        &["Model", "CPU_B", "GPU", "CPU_S", "NPU"],
        &rows,
    );
    println!("\nShape checks: NPU << CPU_B ~ GPU << CPU_S; NPU errors for YOLOv4 and BERT.");
}
