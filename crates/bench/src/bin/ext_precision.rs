//! Extension experiment (beyond the paper's figures): the effect of
//! numerical precision on pipeline performance.
//!
//! The paper quotes FP16 CPU figures and the NPU's native low-precision
//! units but evaluates everything at one precision. Here the same
//! workload is planned and executed at FP32 / FP16 / INT8 on the Kirin
//! 990: reduced precision both accelerates compute and shrinks the very
//! memory traffic that causes co-execution slowdown — so the contention
//! problem itself shrinks with the datatype.

use h2p_bench::{mean, print_table};
use h2p_models::cost::Precision;
use h2p_models::graph::ModelGraph;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::{Planner, PlannerConfig};
use hetero2pipe::workload::random_combinations;

fn main() {
    let soc = SocSpec::kirin_990();
    let sets = random_combinations(20_250_705, 25, 6, 10);

    let mut rows = Vec::new();
    for (name, precision) in [
        ("FP32", Precision::Fp32),
        ("FP16", Precision::Fp16),
        ("INT8", Precision::Int8),
    ] {
        let cfg = PlannerConfig {
            precision,
            ..PlannerConfig::default()
        };
        let planner = Planner::with_config(&soc, cfg).expect("planner");
        let mut latency = Vec::new();
        let mut slowdown = Vec::new();
        for set in &sets {
            let graphs: Vec<ModelGraph> = set.iter().map(|m| m.graph()).collect();
            let r = planner
                .plan(&graphs)
                .expect("plan")
                .execute(&soc)
                .expect("exec");
            latency.push(r.makespan_ms);
            slowdown.push(r.mean_slowdown);
        }
        rows.push(vec![
            name.to_owned(),
            format!("{:.0}", mean(&latency)),
            format!("{:.1}%", mean(&slowdown) * 100.0),
        ]);
    }
    print_table(
        "Extension — precision sweep, Hetero2Pipe on Kirin 990 (25 combos)",
        &["Precision", "mean latency (ms)", "mean co-exec slowdown"],
        &rows,
    );
    println!(
        "\nLower precision cuts latency through faster MACs AND lighter bus\ntraffic — the interference the planner mitigates is itself datatype-\ndependent."
    );
}
