//! Extension experiment (beyond the paper's figures): energy per
//! inference by scheduling scheme.
//!
//! The paper motivates its design with mobile energy constraints but only
//! evaluates latency/throughput. With the simulator's power model we can
//! ask the natural follow-up: does pipelining cost energy? Serial big-CPU
//! execution burns the hungriest cluster for the longest time; Band's
//! NPU-heavy placement is frugal; the pipeline keeps more silicon powered
//! but finishes much sooner.

use h2p_baselines::Scheme;
use h2p_bench::{mean, print_table};
use h2p_models::graph::ModelGraph;
use h2p_simulator::power::{energy, PowerModel};
use h2p_simulator::SocSpec;
use hetero2pipe::workload::random_combinations;

fn main() {
    let soc = SocSpec::kirin_990();
    let model = PowerModel::mobile_default();
    let sets = random_combinations(20_250_705, 30, 6, 10);

    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let mut joules_per_inf = Vec::new();
        let mut latency = Vec::new();
        for set in &sets {
            let graphs: Vec<ModelGraph> = set.iter().map(|m| m.graph()).collect();
            let report = scheme.run(&soc, &graphs).expect("runs");
            let e = energy(&report.trace, &soc, &model);
            joules_per_inf.push(e.joules_per_inference(graphs.len()));
            latency.push(report.makespan_ms);
        }
        rows.push(vec![
            scheme.name().to_owned(),
            format!("{:.2}", mean(&joules_per_inf)),
            format!("{:.0}", mean(&latency)),
        ]);
    }
    print_table(
        "Extension — energy per inference, Kirin 990 (30 random combos)",
        &["Scheme", "J / inference", "mean latency (ms)"],
        &rows,
    );
    println!(
        "\nSerial CPU execution pays both the hungriest cluster and the longest\nruntime; heterogeneous schemes cut energy alongside latency, with the\nNPU's FLOPs/W advantage dominating."
    );
}
