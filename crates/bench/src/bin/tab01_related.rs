//! Table I — qualitative comparison of on-device inference systems.
//!
//! A static reproduction of the paper's related-work matrix; there is
//! nothing to measure, but the harness regenerates every table for
//! completeness.

use h2p_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = [
        ["Pipe-it", "CPU", "yes", "no", "yes", "no", "Local Search"],
        ["MASA", "CPU", "yes", "yes", "no", "no", "BinPacking"],
        ["EdgePipe", "CPU", "yes", "no", "yes", "no", "DP"],
        ["Gillis", "CPU", "yes", "no", "yes", "no", "DP"],
        ["uLayer", "CPU, GPU", "no", "no", "no", "no", "DP"],
        ["PICO", "CPU", "yes", "no", "yes", "no", "DP"],
        ["DART", "CPU, GPU", "yes", "no", "no", "no", "DP"],
        ["BlasNet", "CPU, GPU", "yes", "no", "no", "no", "DARTS"],
        ["Band", "CPU, GPU, NPU", "yes", "yes", "no", "no", "Greedy"],
        [
            "Hetero2Pipe (ours)",
            "CPU, GPU, NPU",
            "yes",
            "yes",
            "yes",
            "yes",
            "DP+Work Stealing",
        ],
    ]
    .iter()
    .map(|r| r.iter().map(|s| s.to_string()).collect())
    .collect();
    print_table(
        "Table I — state-of-the-art methods for on-device inference",
        &[
            "Related Work",
            "Processors",
            "multi-DNN",
            "DNN Hetero.",
            "Pipeline",
            "Contention",
            "Algorithm",
        ],
        &rows,
    );
}
