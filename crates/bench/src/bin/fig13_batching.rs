//! Fig. 13 — batch size vs inference latency for lightweight models
//! (Appendix D).
//!
//! Expected shape: on mobile processors with limited on-chip memory,
//! latency grows almost linearly (affinely) in batch size; the per-item
//! amortized cost drops steeply over the first few batch increments as
//! kernel-dispatch and weight-load overheads amortize. A desktop-class
//! CUDA GPU reference (large on-chip memory, modeled with a deep-batch
//! discount) flattens much more slowly.

use h2p_bench::{linear_fit, print_table};
use h2p_models::batch::{latency_growth_rate, BatchModel};
use h2p_models::cost::CostModel;
use h2p_models::zoo::ModelId;
use h2p_simulator::processor::{ProcessorKind, ProcessorSpec};
use h2p_simulator::SocSpec;

fn main() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let batches: Vec<u32> = vec![1, 2, 4, 8, 16, 32];

    for id in [ModelId::MobileNetV2, ModelId::SqueezeNet] {
        let g = id.graph();
        let mut rows = Vec::new();
        for pname in ["NPU", "CPU_B", "GPU", "CPU_S"] {
            let pid = soc.processor_by_name(pname).expect("kirin processor");
            let Some(m) = BatchModel::fit(&cost, &g, pid) else {
                continue;
            };
            let mut row = vec![pname.to_owned()];
            for &b in &batches {
                row.push(format!("{:.1}", m.latency_ms(b)));
            }
            row.push(format!("{:.3}", latency_growth_rate(&m, 8)));
            rows.push(row);

            // Verify affinity: fit latency(b) over the sweep.
            let xs: Vec<f64> = batches.iter().map(|&b| b as f64).collect();
            let ys: Vec<f64> = batches.iter().map(|&b| m.latency_ms(b)).collect();
            let (_, _, r2) = linear_fit(&xs, &ys);
            assert!(r2 > 0.999, "{pname}: affine model violated (r2={r2})");
        }
        // CUDA GPU reference: plenty of on-chip memory means sub-linear
        // batching; modeled as a mobile-GPU-like unit with 10x throughput
        // whose marginal cost shrinks with depth.
        let cuda = ProcessorSpec {
            name: "CUDA".to_owned(),
            kind: ProcessorKind::Gpu,
            cores: 128,
            clock_ghz: 1.8,
            peak_gflops: 9000.0,
            mem_bandwidth_gbps: 600.0,
            l2_kib: 40960,
            kernel_overhead_ms: 0.05,
            cluster: None,
        };
        let mut cuda_soc = soc.clone();
        cuda_soc.processors.push(cuda);
        let cuda_cost = CostModel::new(&cuda_soc);
        let cuda_id = cuda_soc.processor_by_name("CUDA").expect("added above");
        if let Some(m) = BatchModel::fit(&cuda_cost, &g, cuda_id) {
            let mut row = vec!["CUDA ref".to_owned()];
            for &b in &batches {
                row.push(format!("{:.2}", m.latency_ms(b)));
            }
            row.push(format!("{:.4}", latency_growth_rate(&m, 8)));
            rows.push(row);
        }
        print_table(
            &format!("Fig. 13 — {} batched latency (ms) by batch size", id.name()),
            &[
                "Processor",
                "b=1",
                "b=2",
                "b=4",
                "b=8",
                "b=16",
                "b=32",
                "growth@8",
            ],
            &rows,
        );
    }
    println!(
        "\nShape check: mobile rows are affine in b (r^2 > 0.999) with visible intercepts;\nthe CUDA reference has a near-zero growth rate (ample on-chip memory)."
    );
}
