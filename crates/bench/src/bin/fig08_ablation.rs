//! Fig. 8 — ablation of the vertical optimization.
//!
//! (a) Hetero²Pipe vs exhaustive search, simulated annealing and the
//!     No-C/T variant over random model combinations (combination sizes
//!     kept small enough for the factorial exhaustive search).
//! (b) Progressive component removal: full planner, no contention
//!     mitigation, no tail optimization, neither.
//!
//! Expected shape: Hetero²Pipe lands within a few percent of the
//! exhaustive optimum (paper: ~4%), beats simulated annealing, and each
//! removed component costs latency.
//!
//! Arguments: `--combos N` (default 100), `--seed S`.

use h2p_baselines::{annealing, exhaustive, Scheme};
use h2p_bench::{arg_usize, mean, print_table};
use h2p_models::graph::ModelGraph;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::{Planner, PlannerConfig};
use hetero2pipe::workload::random_combinations;

fn main() {
    let combos = arg_usize("--combos", 100);
    let seed = arg_usize("--seed", 20_250_705) as u64;
    let soc = SocSpec::kirin_990();
    let sets = random_combinations(seed, combos, 4, 6);

    // ---- (a) search-strategy comparison ----
    let mut h2p = Vec::new();
    let mut noct = Vec::new();
    let mut exact = Vec::new();
    let mut sa = Vec::new();
    for set in &sets {
        let graphs: Vec<ModelGraph> = set.iter().map(|m| m.graph()).collect();
        h2p.push(
            Scheme::Hetero2Pipe
                .run(&soc, &graphs)
                .expect("h2p")
                .makespan_ms,
        );
        noct.push(Scheme::NoCt.run(&soc, &graphs).expect("noct").makespan_ms);
        // The exhaustive search scores candidates with the same
        // contention-aware cost model the planner uses (measuring every
        // permutation on-device would be infeasible for the paper too),
        // then the winner's latency is measured.
        exact.push(
            exhaustive::run_with(&soc, &graphs, 5_000, exhaustive::Evaluation::Estimate)
                .expect("exhaustive")
                .report
                .makespan_ms,
        );
        sa.push(
            annealing::run(
                &soc,
                &graphs,
                seed ^ 0xA5A5,
                annealing::AnnealingParams::default(),
            )
            .expect("sa")
            .report
            .makespan_ms,
        );
    }
    // Sorted ascending by H2P latency, as in the paper's x-axis.
    let mut idx: Vec<usize> = (0..sets.len()).collect();
    idx.sort_by(|&a, &b| h2p[a].total_cmp(&h2p[b]));
    let rows: Vec<Vec<String>> = idx
        .iter()
        .step_by((sets.len() / 20).max(1)) // print ~20 representative rows
        .map(|&i| {
            vec![
                format!("{i}"),
                format!("{:.0}", exact[i]),
                format!("{:.0}", h2p[i]),
                format!("{:.0}", sa[i]),
                format!("{:.0}", noct[i]),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 8(a) — vertical optimization, Kirin 990 ({combos} combos, sorted)"),
        &["Combo", "Exhaustive", "Hetero2Pipe", "SimAnneal", "No C/T"],
        &rows,
    );
    let gap = (mean(&h2p) / mean(&exact) - 1.0) * 100.0;
    println!(
        "\nMeans (ms): exhaustive {:.0}, H2P {:.0} ({gap:+.1}% from optimum; paper ~4%), SA {:.0}, No C/T {:.0}.",
        mean(&exact),
        mean(&h2p),
        mean(&sa),
        mean(&noct),
    );

    // ---- (b) component removal ----
    let variants: [(&str, PlannerConfig); 4] = [
        ("Full Hetero2Pipe", PlannerConfig::default()),
        (
            "- contention mitigation",
            PlannerConfig {
                contention_mitigation: false,
                ..PlannerConfig::default()
            },
        ),
        (
            "- tail optimization",
            PlannerConfig {
                tail_optimization: false,
                ..PlannerConfig::default()
            },
        ),
        ("- both (No C/T)", PlannerConfig::no_ct()),
    ];
    // Component removal is measured on full-size combinations (the
    // exhaustive-feasible sets above are too short for the mitigation
    // window to matter).
    let sets_b = random_combinations(seed ^ 0x8B, combos, 6, 12);
    let mut rows_b = Vec::new();
    for (name, cfg) in variants {
        let planner = Planner::with_config(&soc, cfg).expect("planner");
        let lats: Vec<f64> = sets_b
            .iter()
            .map(|set| {
                let graphs: Vec<ModelGraph> = set.iter().map(|m| m.graph()).collect();
                planner
                    .plan(&graphs)
                    .expect("plan")
                    .execute(&soc)
                    .expect("exec")
                    .makespan_ms
            })
            .collect();
        rows_b.push(vec![name.to_owned(), format!("{:.0}", mean(&lats))]);
    }
    print_table(
        "Fig. 8(b) — average latency by component removal",
        &["Variant", "Mean latency (ms)"],
        &rows_b,
    );
}
