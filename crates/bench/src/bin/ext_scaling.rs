//! Extension experiment (beyond the paper's figures): how the horizontal
//! partition adapts as one model's workload scales.
//!
//! Sweeps BERT's sequence length and ViT's input resolution on the
//! Kirin 990, printing how the planner redistributes layers across
//! processors and what the resulting single-request traversal time is.
//! The attention score matrix grows quadratically with the sequence
//! length, shifting stages toward bandwidth-rich processors.

use h2p_bench::print_table;
use h2p_models::zoo::{bert_with_seq, vit_at};
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;

fn main() {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");

    let mut rows = Vec::new();
    for seq in [64u64, 128, 256, 512] {
        let g = bert_with_seq(seq);
        rows.push(describe(&planner, &soc, format!("BERT seq={seq}"), &g));
    }
    for res in [224u64, 320, 448] {
        let g = vit_at(res);
        rows.push(describe(&planner, &soc, format!("ViT {res}px"), &g));
    }
    print_table(
        "Extension — partition adaptation under workload scaling (Kirin 990)",
        &[
            "Workload",
            "GFLOPs",
            "stage layout (layers@proc)",
            "makespan 3 reqs (ms)",
        ],
        &rows,
    );
    println!(
        "\nThe planner keeps the pipeline balanced as one model's compute grows:\nstage boundaries shift rather than any single processor absorbing the\nquadratic attention blow-up."
    );
}

fn describe(
    planner: &Planner,
    soc: &SocSpec,
    label: String,
    graph: &h2p_models::graph::ModelGraph,
) -> Vec<String> {
    // A stream of three instances: with one request the optimizer rightly
    // collapses onto the NPU; pipelining only pays once requests queue.
    let stream = vec![graph.clone(), graph.clone(), graph.clone()];
    let planned = planner.plan(&stream).expect("plan");
    // Mid-stream request: representative steady-state layout.
    let req = &planned.plan.requests[1];
    let layout: Vec<String> = req
        .stages
        .iter()
        .enumerate()
        .filter_map(|(slot, s)| {
            s.as_ref().map(|s| {
                format!(
                    "{}@{}",
                    s.range.len(),
                    soc.processor(planned.plan.procs[slot]).name
                )
            })
        })
        .collect();
    let report = planned.execute(soc).expect("exec");
    vec![
        label,
        format!("{:.1}", graph.total_flops() / 1e9),
        layout.join(" "),
        format!("{:.0}", report.makespan_ms),
    ]
}
