//! Appendix A — search-space accounting (Eq. 12–14).
//!
//! Prints the number of feasible pipelines per stage count for the
//! paper's example device (8-core CPU + GPU + NPU), the total (paper
//! quotes 449; our clean enumeration of the same space yields 319 — the
//! published Eq. 12 contains typos), and the split-point counts for
//! MobileNetV2 under both accountings. The paper's "over 3.6 B" figure
//! is reproduced exactly by the total×total reading of Eq. 14.

use h2p_bench::print_table;
use h2p_models::zoo::ModelId;
use hetero2pipe::searchspace::{
    count_pipelines, count_split_points, count_split_points_paper_style, joint_search_space,
    pipelines_with_stages, Inventory,
};

fn main() {
    let inv = Inventory::paper_example();
    let rows: Vec<Vec<String>> = (2u64..=10)
        .map(|p| {
            vec![
                format!("{p}"),
                format!("{:.0}", pipelines_with_stages(inv, p)),
            ]
        })
        .collect();
    print_table(
        "Appendix A — feasible pipelines by stage count (4+4 CPU cores, GPU, NPU)",
        &["Stages P", "Pipelines S_P"],
        &rows,
    );
    let total = count_pipelines(inv, 2, 10);
    println!("\nTotal feasible pipelines: {total:.0} (paper quotes 449 from Eq. 12, which contains typos).");

    let n = 28; // the paper's MobileNetV2 accounting uses 28 conv layers
    println!(
        "MobileNetV2 ({n} layers) split points:\n  paper-style (total x total): {:.3e}  (paper: over 3.6e9)\n  per-stage-consistent:        {:.3e}",
        count_split_points_paper_style(inv, n, 2, 10),
        count_split_points(inv, n, 2, 10)
    );

    let layer_counts: Vec<u64> = [ModelId::MobileNetV2, ModelId::Vgg16, ModelId::Bert]
        .iter()
        .map(|m| m.graph().len() as u64)
        .collect();
    println!(
        "Joint space for {{MobileNetV2, VGG16, BERT}} (our zoo layer counts {:?}): {:.3e} —\nthe exponential blow-up motivating the two-step decomposition.",
        layer_counts,
        joint_search_space(inv, &layer_counts, 2, 10)
    );
}
