//! Extension experiment: slicing granularity (the Definition-1 choice).
//!
//! The paper slices models coarsely because "it is computationally
//! intensive to provide a layer-wise granularity for slicing large
//! models". This experiment isolates exactly that choice: the *same*
//! layer-wise ResNet50 graph is partitioned by the same DP, once with
//! split points allowed at every layer boundary and once restricted to
//! residual-block boundaries (every 4th layer) — so the cost basis is
//! identical and only the split-point resolution differs.

use std::time::Instant;

use h2p_bench::print_table;
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::resnet50_unfused;
use h2p_simulator::SocSpec;
use hetero2pipe::executor;
use hetero2pipe::partition::min_max_partition;
use hetero2pipe::plan::{PipelinePlan, RequestPlan};
use hetero2pipe::planner::Planner;

/// Partitions `graph` over all four Kirin slots with split points
/// restricted by `allowed(boundary_index)`, builds a `copies`-deep
/// pipeline plan, and executes it.
fn study(
    planner: &Planner,
    soc: &SocSpec,
    graph: &ModelGraph,
    copies: usize,
    label: &str,
    allowed: &dyn Fn(usize) -> bool,
) -> Vec<String> {
    let procs = soc.processors_by_power();
    let est = planner.estimator();
    let ctx = est.context(graph, &procs, vec![0, 1, 2, 3]);
    let cost = est.cost();
    let n = graph.len();
    // Restrict split points: a slice [i, j] is only usable if it starts
    // and ends at allowed boundaries (model edges always allowed).
    let oracle = |a: usize, i: usize, j: usize| -> Option<f64> {
        let start_ok = i == 0 || allowed(i);
        let end_ok = j + 1 == n || allowed(j + 1);
        if start_ok && end_ok {
            ctx.stage_cost(cost, a, i, j)
        } else {
            None
        }
    };
    let t0 = Instant::now();
    let p = min_max_partition(n, 4, oracle).expect("feasible partition");
    let plan_us = t0.elapsed().as_micros();
    let stages = ctx
        .build_stages(cost, &p.splits, procs.len())
        .expect("buildable");
    let requests: Vec<RequestPlan> = (0..copies)
        .map(|r| RequestPlan {
            request: r,
            model: graph.name().to_owned(),
            stages: stages.clone(),
            intensity: est.predict_intensity(graph),
            class: est.classify(graph),
        })
        .collect();
    let plan = PipelinePlan { procs, requests };
    let report = executor::execute(&plan, soc).expect("exec");
    let max_stage = p.stage_ms.iter().copied().fold(0.0, f64::max);
    let mean_stage = p.stage_ms.iter().sum::<f64>() / p.stage_ms.len() as f64;
    vec![
        label.to_owned(),
        format!("{:?}", p.splits),
        format!("{plan_us}"),
        format!("{:.2}", max_stage / mean_stage),
        format!("{:.0}", report.makespan_ms),
    ]
}

fn main() {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let graph = resnet50_unfused();
    let copies = 6;
    let rows = vec![
        study(&planner, &soc, &graph, copies, "layer-wise splits", &|_| {
            true
        }),
        study(
            &planner,
            &soc,
            &graph,
            copies,
            "block-boundary splits",
            &|b| b % 4 == 2, // residual-block edges in the unfused layout
        ),
    ];
    print_table(
        &format!(
            "Extension — slicing granularity, {copies}x ResNet50 ({} layers) on Kirin 990",
            graph.len()
        ),
        &[
            "Split-point resolution",
            "chosen splits",
            "DP time (µs)",
            "stage imbalance (max/mean)",
            "makespan (ms)",
        ],
        &rows,
    );
    println!(
        "\nSame layers, same cost model — only the allowed split points differ.\nFiner split points buy tighter min-max stage balance at higher DP cost,\nbut balance is a proxy: under heterogeneous processors the measured\npipeline throughput tracks the bottleneck processor's share, and a\ncoarser split that loads the NPU more can win — evidence for the paper's\nposition that coarse Definition-1 slicing loses little."
    );
}
