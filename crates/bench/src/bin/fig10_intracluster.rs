//! Fig. 10 — intra-cluster contention between CPU cores.
//!
//! Co-executes YOLOv4 and VGG16 on two sub-partitions of the same CPU
//! cluster ("BB-BB" = two Big cores each, "SS-SS" = two Small cores each,
//! "BBB-B", "SSS-S") and measures the slowdown versus solo execution on
//! the same partition.
//!
//! Expected shape: conflicting L2 misses inside a shared cluster cause up
//! to ~70% slowdown — the reason Hetero²Pipe treats each cluster as an
//! indivisible pipeline stage.

use h2p_bench::print_table;
use h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS;
use h2p_models::cost::CostModel;
use h2p_models::graph::LayerRange;
use h2p_models::zoo::ModelId;
use h2p_simulator::engine::{Simulation, TaskSpec};
use h2p_simulator::thermal::ThermalMode;
use h2p_simulator::SocSpec;

/// Runs YOLOv4 on partition `p0` and VGG16 on partition `p1`, returning
/// each side's slowdown vs solo on that same partition.
fn co_run(soc: &SocSpec, p0: &str, p1: &str) -> (f64, f64) {
    let cost = CostModel::new(soc);
    let a = soc.processor_by_name(p0).expect("partition 0");
    let b = soc.processor_by_name(p1).expect("partition 1");
    let spec = |id: ModelId, p| {
        let g = id.graph();
        let whole = LayerRange::new(0, g.len() - 1);
        let ms = cost.slice_latency_ms(&g, whole, p).expect("CPU runs all");
        let bw = cost.slice_bandwidth_gbps(&g, whole, p).unwrap_or(0.0);
        let intensity = bw / REFERENCE_BANDWIDTH_GBPS;
        (
            TaskSpec::new(id.name(), p, ms)
                .intensity(intensity)
                .sensitivity(0.5 + 0.5 * intensity.clamp(0.0, 2.0))
                .bandwidth(bw),
            ms,
        )
    };
    let (ta, solo_a) = spec(ModelId::YoloV4, a);
    let (tb, solo_b) = spec(ModelId::Vgg16, b);
    let mut sim = Simulation::new(soc.clone());
    sim.add_task(ta);
    sim.add_task(tb);
    let trace = sim.run().expect("co-run");
    (
        trace.span(0).expect("yolo ran").duration_ms() / solo_a - 1.0,
        trace.span(1).expect("vgg ran").duration_ms() / solo_b - 1.0,
    )
}

/// (label, big-cluster split, small-cluster split, partition 0, partition 1).
type SplitCase = (
    &'static str,
    (u32, u32),
    (u32, u32),
    &'static str,
    &'static str,
);

fn main() {
    let cases: [SplitCase; 4] = [
        ("BB-BB", (2, 2), (2, 2), "CPU_B0", "CPU_B1"),
        ("SS-SS", (2, 2), (2, 2), "CPU_S0", "CPU_S1"),
        ("BBB-B", (3, 1), (2, 2), "CPU_B0", "CPU_B1"),
        ("SSS-S", (2, 2), (3, 1), "CPU_S0", "CPU_S1"),
    ];
    let mut rows = Vec::new();
    for (label, big_split, small_split, p0, p1) in cases {
        let mut soc = SocSpec::kirin_990_split_clusters(big_split, small_split);
        soc.thermal_mode = ThermalMode::Disabled;
        let (s0, s1) = co_run(&soc, p0, p1);
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}%", s0 * 100.0),
            format!("{:.1}%", s1 * 100.0),
        ]);
    }
    // Cross-cluster reference: same pair on Big vs Small clusters.
    let mut soc = SocSpec::kirin_990();
    soc.thermal_mode = ThermalMode::Disabled;
    let (s0, s1) = co_run(&soc, "CPU_B", "CPU_S");
    rows.push(vec![
        "B-S (cross-cluster)".to_owned(),
        format!("{:.1}%", s0 * 100.0),
        format!("{:.1}%", s1 * 100.0),
    ]);
    print_table(
        "Fig. 10 — intra-cluster slowdown, YOLOv4 + VGG16 co-execution (Kirin 990)",
        &["Partitioning", "YOLOv4 slowdown", "VGG16 slowdown"],
        &rows,
    );
    println!(
        "\nShape check: same-cluster splits suffer up to ~70% slowdown; cross-cluster is mild —\nhence Hetero2Pipe schedules whole clusters, never core splits."
    );
}
