//! Fig. 2(b) — per-model resource demands (simulated perf events) ranked
//! by contention intensity (Eq. 1).
//!
//! Expected shape: SqueezeNet and GoogLeNet rank near the top despite
//! tiny FLOPs (Observation 3); big-MatMul models (VGG/AlexNet FC tails,
//! BERT attention) also rank high (Observation 2); the regression's
//! predicted intensity tracks the ground-truth ranking.

use h2p_bench::print_table;
use h2p_contention::counters::{ground_truth_intensity, measure};
use h2p_contention::IntensityModel;
use h2p_models::cost::CostModel;
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;

fn main() {
    let soc = SocSpec::kirin_990();
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").expect("kirin CPU_B");
    let zoo: Vec<ModelGraph> = ModelId::ALL.iter().map(|m| m.graph()).collect();
    let model = IntensityModel::train_default(&cost, &zoo, big).expect("regression trains");
    let loo = IntensityModel::cross_validate(&cost, &zoo, big, IntensityModel::DEFAULT_ALPHA)
        .expect("cross-validation runs");

    let mut rows: Vec<(f64, Vec<String>)> = ModelId::ALL
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let g = id.graph();
            let pmu = measure(&cost, &g, big);
            let truth = ground_truth_intensity(&cost, &g, big);
            let pred = model.predict(&cost, &g, big);
            let class = if model.classify_intensity(pred).is_high() {
                "H"
            } else {
                "L"
            };
            (
                truth,
                vec![
                    id.name().to_owned(),
                    format!("{:.2}", pmu.ipc),
                    format!("{:.3}", pmu.cache_miss_rate),
                    format!("{:.3}", pmu.backend_stall),
                    format!("{truth:.3}"),
                    format!("{pred:.3}"),
                    format!("{:.3}", loo[i].1),
                    class.to_owned(),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    let table: Vec<Vec<String>> = rows.into_iter().map(|(_, r)| r).collect();
    print_table(
        "Fig. 2(b) — perf events ranked by contention intensity (CPU_B, Kirin 990)",
        &[
            "Model",
            "IPC",
            "CacheMiss",
            "BackendStall",
            "Intensity (truth)",
            "Intensity (Eq.1)",
            "LOO held-out",
            "Class",
        ],
        &table,
    );
    println!(
        "\nRidge weights W = {:?} (features: IPC, miss rate, backend stall, bias); threshold {:.3}.",
        model
            .regression()
            .weights()
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        model.threshold()
    );
}
