//! Validates `BENCH_planner.json` (written by the `planner_scaling`
//! bench) and gates the perf trajectory: the schema must match, the
//! required cases must be present with positive medians, and the parallel
//! planner must not be slower than the sequential baseline on the
//! 8-request workload.
//!
//! ```text
//! bench_check [path] [--min-speedup X]
//! ```
//!
//! Exits non-zero with a diagnostic on any violation. The parser is a
//! deliberately small field extractor over the file this workspace itself
//! writes — not a general JSON reader.

/// Extracts the string value of `"key": "value"`.
fn string_field(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts the numeric value of `"key": 123.4` (also accepts `null`,
/// returning `None`).
fn number_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The median of a named case, if the case is present.
fn case_median_ns(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let start = json.find(&needle)?;
    number_field(&json[start..], "median_ns")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = "BENCH_planner.json".to_owned();
    let mut min_speedup = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--min-speedup" => {
                min_speedup = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--min-speedup needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                path = other.to_owned();
                i += 1;
            }
        }
    }

    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut failures: Vec<String> = Vec::new();

    match string_field(&json, "schema") {
        Some(s) if s == "h2p-bench-planner/v1" => {}
        Some(s) => failures.push(format!("unexpected schema {s:?}")),
        None => failures.push("missing \"schema\" field".to_owned()),
    }

    let required_cases = [
        "partition_dp/VGG16",
        "lap_solve/32",
        "plan/reference/8",
        "plan/t1/8",
        "plan/t4/8",
        "online/replan_w4/16",
        "recovery/replan_drop1/8",
    ];
    for name in required_cases {
        match case_median_ns(&json, name) {
            Some(ns) if ns > 0.0 => {}
            Some(ns) => failures.push(format!("case {name}: non-positive median {ns}")),
            None => failures.push(format!("missing case {name}")),
        }
    }

    match number_field(&json, "t4_vs_reference") {
        Some(speedup) if speedup >= min_speedup => {
            println!(
                "bench_check: parallel planner speedup {speedup:.3}x vs sequential reference \
                 (gate: >= {min_speedup:.3}x) -- ok"
            );
        }
        Some(speedup) => failures.push(format!(
            "parallel planner is too slow: {speedup:.3}x vs sequential reference \
             (gate: >= {min_speedup:.3}x)"
        )),
        None => failures.push("missing speedup block (t4_vs_reference)".to_owned()),
    }

    if failures.is_empty() {
        println!("bench_check: {path} valid");
    } else {
        for f in &failures {
            eprintln!("bench_check: {f}");
        }
        std::process::exit(1);
    }
}
