//! Validates `BENCH_planner.json` (written by the `planner_scaling`
//! bench) and gates the perf trajectory: the schema must match, the
//! required cases must be present with positive medians, the parallel
//! planner must not be slower than the sequential baseline on the
//! 8-request workload, and the incremental online replan must beat the
//! from-scratch window replan.
//!
//! ```text
//! bench_check [path] [--min-speedup X] [--min-replan-speedup X]
//!             [--require-parallel]
//! bench_check --diff OLD.json NEW.json [--threshold F]
//! ```
//!
//! `--diff` is the perf-regression sentinel: it compares two snapshots
//! case by case and exits nonzero if any case's median regressed by
//! more than the threshold (default 0.10 = 10%), or if a case present
//! in OLD is missing from NEW. Improvements and new cases are reported
//! but never fail. If either snapshot is stamped advisory, cross-host
//! medians are not comparable — the diff is printed for information
//! and the gate is skipped (exit 0), mirroring how the validation mode
//! treats advisory stamps.
//!
//! A speedup block measured on a host with `available_parallelism <
//! threads` is **refused**: its thread-vs-thread ratios measure scoped
//! threads time-slicing one core, not parallelism, so the block is
//! reported as advisory and the parallel gates are skipped (the
//! committed snapshot records which host class produced it). Passing
//! `--require-parallel` (what `scripts/ci.sh` does on hosts with enough
//! cores) turns that refusal into a failure and additionally asserts
//! `t4_vs_t1 >= 1.0` — t4 must strictly not lose to t1 where the
//! hardware can actually run 4 workers. The replan gate is algorithmic
//! (cache hit vs re-solve) and therefore valid on any host.
//!
//! Snapshots carry a top-level `"advisory"` flag stamped by
//! `scripts/bench.sh`; an advisory snapshot is printed loudly (and
//! refused under `--require-parallel`) instead of silently accepted.
//! `partition_dp/BERT` is additionally gated at >= 2x the committed
//! pre-kernel median — enforced under `--require-parallel`, advisory
//! elsewhere since the baseline is host-class specific.
//!
//! Exits non-zero with a diagnostic on any violation. The parser is a
//! deliberately small field extractor over the file this workspace itself
//! writes — not a general JSON reader.

/// Extracts the string value of `"key": "value"`.
fn string_field(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// Extracts the boolean value of `"key": true|false`.
fn bool_field(json: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts the numeric value of `"key": 123.4` (also accepts `null`,
/// returning `None`).
fn number_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The median of a named case, if the case is present.
fn case_median_ns(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let start = json.find(&needle)?;
    number_field(&json[start..], "median_ns")
}

/// Every case name in the snapshot, in file order.
fn case_names(json: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\": \"") {
        rest = &rest[pos + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        names.push(rest[..end].to_owned());
        rest = &rest[end..];
    }
    names
}

/// Reads a snapshot file or exits with a diagnostic.
fn read_snapshot(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `bench_check --diff OLD NEW`: the perf-regression sentinel. Flags a
/// per-case median regression beyond `threshold` (fractional, e.g. 0.10
/// = 10%) and any case that disappeared; exits nonzero on either unless
/// a snapshot is stamped advisory (cross-host medians are not
/// comparable, so the diff is reported without gating).
fn run_diff(old_path: &str, new_path: &str, threshold: f64) -> ! {
    let old = read_snapshot(old_path);
    let new = read_snapshot(new_path);

    let advisory = |json: &str, path: &str| -> bool {
        if bool_field(json, "advisory") == Some(true) {
            let reason = string_field(json, "advisory_reason")
                .unwrap_or_else(|| "no reason recorded".to_owned());
            println!("bench_check: {path} is stamped ADVISORY -- {reason}");
            true
        } else {
            false
        }
    };
    let any_advisory = advisory(&old, old_path) | advisory(&new, new_path);

    let mut regressions: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for name in case_names(&old) {
        let Some(old_ns) = case_median_ns(&old, &name).filter(|&ns| ns > 0.0) else {
            continue;
        };
        checked += 1;
        match case_median_ns(&new, &name) {
            None => regressions.push(format!(
                "case {name}: present in {old_path}, missing from {new_path}"
            )),
            Some(new_ns) => {
                let ratio = new_ns / old_ns;
                if ratio > 1.0 + threshold {
                    regressions.push(format!(
                        "case {name}: median regressed {old_ns:.1} -> {new_ns:.1} ns \
                         ({:+.1}%, gate: <= +{:.1}%)",
                        (ratio - 1.0) * 100.0,
                        threshold * 100.0
                    ));
                } else if ratio < 1.0 - threshold {
                    println!(
                        "bench_check: case {name}: improved {old_ns:.1} -> {new_ns:.1} ns \
                         ({:+.1}%)",
                        (ratio - 1.0) * 100.0
                    );
                }
            }
        }
    }
    for name in case_names(&new) {
        if case_median_ns(&old, &name).is_none() {
            println!("bench_check: case {name}: new in {new_path}");
        }
    }
    if checked == 0 {
        eprintln!("bench_check: {old_path} has no benchmark cases to compare");
        std::process::exit(1);
    }

    if regressions.is_empty() {
        println!(
            "bench_check: diff {old_path} -> {new_path}: {checked} case(s) within \
             +{:.1}% -- ok",
            threshold * 100.0
        );
        std::process::exit(0);
    }
    for r in &regressions {
        if any_advisory {
            println!("bench_check: (advisory) {r}");
        } else {
            eprintln!("bench_check: {r}");
        }
    }
    if any_advisory {
        println!(
            "bench_check: {} regression(s) reported, not gated (advisory snapshot)",
            regressions.len()
        );
        std::process::exit(0);
    }
    eprintln!(
        "bench_check: {} regression(s) beyond +{:.1}%",
        regressions.len(),
        threshold * 100.0
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = "BENCH_planner.json".to_owned();
    let mut min_speedup = 1.0f64;
    let mut min_replan_speedup = 3.0f64;
    let mut require_parallel = false;
    let mut diff: Option<(String, String)> = None;
    let mut threshold = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--diff" => {
                let (old, new) = match (args.get(i + 1), args.get(i + 2)) {
                    (Some(o), Some(n)) if !o.starts_with("--") && !n.starts_with("--") => {
                        (o.clone(), n.clone())
                    }
                    _ => {
                        eprintln!("--diff needs OLD.json and NEW.json");
                        std::process::exit(2);
                    }
                };
                diff = Some((old, new));
                i += 3;
            }
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--threshold needs a positive fraction (e.g. 0.10)");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--min-speedup" => {
                min_speedup = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--min-speedup needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--min-replan-speedup" => {
                min_replan_speedup =
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--min-replan-speedup needs a number");
                            std::process::exit(2);
                        });
                i += 2;
            }
            "--require-parallel" => {
                require_parallel = true;
                i += 1;
            }
            other => {
                path = other.to_owned();
                i += 1;
            }
        }
    }

    if let Some((old, new)) = diff {
        run_diff(&old, &new, threshold);
    }

    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut failures: Vec<String> = Vec::new();

    match string_field(&json, "schema") {
        Some(s) if s == "h2p-bench-planner/v1" => {}
        Some(s) => failures.push(format!("unexpected schema {s:?}")),
        None => failures.push("missing \"schema\" field".to_owned()),
    }

    // A snapshot stamped advisory (by `scripts/bench.sh`, from the host
    // class that produced it) is surfaced loudly instead of silently
    // accepted — and refused outright where CI demands a parallel host.
    match bool_field(&json, "advisory") {
        Some(true) => {
            let reason = string_field(&json, "advisory_reason")
                .unwrap_or_else(|| "no reason recorded".to_owned());
            if require_parallel {
                failures.push(format!(
                    "--require-parallel: snapshot is stamped advisory ({reason})"
                ));
            } else {
                println!("bench_check: ADVISORY snapshot -- {reason}");
            }
        }
        Some(false) => {}
        None => {
            failures.push("missing \"advisory\" field (stamped by scripts/bench.sh)".to_owned())
        }
    }

    let required_cases = [
        "partition_dp/VGG16",
        "partition_dp/BERT",
        "plan_single/BERT",
        "lap_solve/32",
        "plan/reference/8",
        "plan/t1/8",
        "plan/t4/8",
        "online/replan_w4/16",
        "online/replan_incremental/16",
        "recovery/replan_drop1/8",
    ];
    for name in required_cases {
        match case_median_ns(&json, name) {
            Some(ns) if ns > 0.0 => {}
            Some(ns) => failures.push(format!("case {name}: non-positive median {ns}")),
            None => failures.push(format!("missing case {name}")),
        }
    }

    // The speedup block is only meaningful where the host could actually
    // run the benched thread count concurrently: with
    // available_parallelism < threads, "t4" measures scoped threads
    // time-slicing one another, so the block is refused and reported as
    // advisory instead of validated.
    let parallelism = number_field(&json, "available_parallelism");
    let bench_threads = number_field(&json, "threads");
    let parallel_host = match (parallelism, bench_threads) {
        (Some(p), Some(t)) => p >= t,
        _ => false,
    };
    if !parallel_host {
        let (p, t) = (parallelism.unwrap_or(0.0), bench_threads.unwrap_or(0.0));
        if require_parallel {
            failures.push(format!(
                "--require-parallel: speedup block measured with \
                 available_parallelism {p:.0} < threads {t:.0} is invalid"
            ));
        } else {
            println!(
                "bench_check: ADVISORY speedup block -- available_parallelism {p:.0} < \
                 threads {t:.0}, thread-vs-thread ratios measure time-slicing, not \
                 parallelism; parallel gates skipped"
            );
        }
    } else {
        match number_field(&json, "t4_vs_reference") {
            Some(speedup) if speedup >= min_speedup => {
                println!(
                    "bench_check: parallel planner speedup {speedup:.3}x vs sequential reference \
                     (gate: >= {min_speedup:.3}x) -- ok"
                );
            }
            Some(speedup) => failures.push(format!(
                "parallel planner is too slow: {speedup:.3}x vs sequential reference \
                 (gate: >= {min_speedup:.3}x)"
            )),
            None => failures.push("missing speedup block (t4_vs_reference)".to_owned()),
        }
        if require_parallel {
            match number_field(&json, "t4_vs_t1") {
                Some(ratio) if ratio >= 1.0 => {
                    println!("bench_check: t4 vs t1 {ratio:.3}x (gate: >= 1.000x) -- ok");
                }
                Some(ratio) => failures.push(format!(
                    "t4 loses to t1 on a parallel host: {ratio:.3}x (gate: >= 1.000x)"
                )),
                None => failures.push("missing speedup block (t4_vs_t1)".to_owned()),
            }
        }
    }

    // The flat prefix-sum kernel must hold its win over the pre-kernel
    // closure-based DP. The denominator is the `partition_dp/BERT`
    // median committed immediately before the kernel landed, measured on
    // the 1-core CI host class; cross-host ratios are only advisory, so
    // the gate is enforced where `--require-parallel` asserts the host
    // class and printed otherwise.
    const PRE_KERNEL_PARTITION_BERT_NS: f64 = 45835.5;
    const MIN_KERNEL_SPEEDUP: f64 = 2.0;
    match case_median_ns(&json, "partition_dp/BERT") {
        Some(ns) if ns > 0.0 => {
            let ratio = PRE_KERNEL_PARTITION_BERT_NS / ns;
            if ratio >= MIN_KERNEL_SPEEDUP {
                println!(
                    "bench_check: partition_dp/BERT {ratio:.3}x vs pre-kernel baseline \
                     (gate: >= {MIN_KERNEL_SPEEDUP:.3}x) -- ok"
                );
            } else if require_parallel {
                failures.push(format!(
                    "partition_dp/BERT regressed: {ratio:.3}x vs pre-kernel baseline \
                     (gate: >= {MIN_KERNEL_SPEEDUP:.3}x)"
                ));
            } else {
                println!(
                    "bench_check: ADVISORY partition_dp/BERT {ratio:.3}x vs pre-kernel \
                     baseline (gate: >= {MIN_KERNEL_SPEEDUP:.3}x on the CI host class; \
                     this host may differ)"
                );
            }
        }
        _ => {} // missing/non-positive already reported by the case loop
    }

    // The incremental-replan gate compares a cache hit against a
    // from-scratch window re-solve — purely algorithmic, valid on any
    // host class.
    match number_field(&json, "incremental_vs_scratch") {
        Some(ratio) if ratio >= min_replan_speedup => {
            println!(
                "bench_check: incremental replan {ratio:.3}x faster than from-scratch \
                 (gate: >= {min_replan_speedup:.3}x) -- ok"
            );
        }
        Some(ratio) => failures.push(format!(
            "incremental replan too slow: {ratio:.3}x vs from-scratch windows \
             (gate: >= {min_replan_speedup:.3}x)"
        )),
        None => failures.push("missing replan block (incremental_vs_scratch)".to_owned()),
    }

    if failures.is_empty() {
        println!("bench_check: {path} valid");
    } else {
        for f in &failures {
            eprintln!("bench_check: {f}");
        }
        std::process::exit(1);
    }
}
