//! Table II — co-execution slowdown of SqueezeNet/BERT and ViT/BERT on
//! CPU Big + GPU (Kirin 990).
//!
//! Expected shape: every pairing slows both sides by a two-digit-percent
//! amount on CPU–GPU; SqueezeNet — 70× smaller than ViT — imposes *more*
//! slowdown on its co-runner than ViT does (Observation 3).

use h2p_bench::print_table;
use h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS;
use h2p_models::cost::CostModel;
use h2p_models::graph::LayerRange;
use h2p_models::zoo::ModelId;
use h2p_simulator::engine::{Simulation, TaskSpec};
use h2p_simulator::processor::ProcessorId;
use h2p_simulator::thermal::ThermalMode;
use h2p_simulator::SocSpec;

/// Runs `a` on `pa` concurrently with `b` on `pb` under *sustained*
/// co-execution, as the paper does: the shorter model is looped
/// back-to-back until it covers the longer model's runtime. Returns each
/// side's mean per-inference duration.
fn co_exec(
    soc: &SocSpec,
    cost: &CostModel,
    a: ModelId,
    pa: ProcessorId,
    b: ModelId,
    pb: ProcessorId,
) -> (f64, f64) {
    let task = |id: ModelId, p: ProcessorId| {
        let g = id.graph();
        let whole = LayerRange::new(0, g.len() - 1);
        let ms = cost
            .slice_latency_ms(&g, whole, p)
            .expect("CPU/GPU support everything");
        let bw = cost.slice_bandwidth_gbps(&g, whole, p).unwrap_or(0.0);
        let intensity = bw / REFERENCE_BANDWIDTH_GBPS;
        (
            TaskSpec::new(id.name(), p, ms)
                .intensity(intensity)
                .sensitivity(0.5 + 0.5 * intensity.clamp(0.0, 2.0))
                .bandwidth(bw),
            ms,
        )
    };
    let (spec_a, solo_a) = task(a, pa);
    let (spec_b, solo_b) = task(b, pb);
    let reps_a = (solo_b / solo_a).ceil().max(1.0) as usize;
    let reps_b = (solo_a / solo_b).ceil().max(1.0) as usize;
    let mut sim = Simulation::new(soc.clone());
    let first_a = sim.task_count();
    for _ in 0..reps_a {
        sim.add_task(spec_a.clone());
    }
    let first_b = sim.task_count();
    for _ in 0..reps_b {
        sim.add_task(spec_b.clone());
    }
    let trace = sim.run().expect("co-exec runs");
    let mean = |first: usize, reps: usize| {
        (first..first + reps)
            .map(|t| trace.span(t).expect("ran").duration_ms())
            .sum::<f64>()
            / reps as f64
    };
    (mean(first_a, reps_a), mean(first_b, reps_b))
}

fn main() {
    let mut soc = SocSpec::kirin_990();
    soc.thermal_mode = ThermalMode::Disabled; // isolate pure interference
    let cost = CostModel::new(&soc);
    let big = soc.processor_by_name("CPU_B").expect("CPU_B");
    let gpu = soc.processor_by_name("GPU").expect("GPU");
    let solo = |id: ModelId, p: ProcessorId| {
        cost.model_latency_ms(&id.graph(), p)
            .expect("CPU/GPU support everything")
    };

    let pairs = [
        (ModelId::SqueezeNet, ModelId::Bert),
        (ModelId::Vit, ModelId::Bert),
    ];
    let mut rows = Vec::new();
    for (a, b) in pairs {
        for (ma, pa, mb, pb, pa_name, pb_name) in [
            (a, big, b, gpu, "CPU_B", "GPU"),
            (a, gpu, b, big, "GPU", "CPU_B"),
        ] {
            let (ca, cb) = co_exec(&soc, &cost, ma, pa, mb, pb);
            let (sa, sb) = (solo(ma, pa), solo(mb, pb));
            rows.push(vec![
                ma.name().to_owned(),
                pa_name.to_owned(),
                format!("{sa:.2}"),
                format!("{ca:.2}"),
                format!("{:.2}%", (ca / sa - 1.0) * 100.0),
            ]);
            rows.push(vec![
                mb.name().to_owned(),
                pb_name.to_owned(),
                format!("{sb:.2}"),
                format!("{cb:.2}"),
                format!("{:.2}%", (cb / sb - 1.0) * 100.0),
            ]);
        }
        rows.push(vec![
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    print_table(
        "Table II — solo vs co-execution time (ms) and slowdown, Kirin 990",
        &["Model", "Processor", "Solo-Exec", "Co-Exec", "Slowdown"],
        &rows,
    );
    println!(
        "\nShape check: SqueezeNet (4.8 MB) inflicts comparable or larger slowdown than ViT (~70x bigger)."
    );
}
