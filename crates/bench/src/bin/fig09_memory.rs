//! Fig. 9 — memory frequency and footprint under pipeline execution.
//!
//! Builds pipelines from the paper's model tiers (large > 300 MB, medium
//! 100–300 MB, light < 100 MB), executes them on the Kirin 990 and traces
//! the governor frequency and available memory.
//!
//! Expected shape: single-stage NPU execution does not saturate the
//! memory controller; once CPU/GPU stages join, the governor runs at its
//! maximum state; a three-stage large-model pipeline pulls available
//! memory from ~2.5 GB down towards ~0.5 GB.

use h2p_bench::print_table;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::{Planner, PlannerConfig};

fn run_tier(name: &str, soc: &SocSpec, models: &[ModelId], depth: usize) {
    let cfg = PlannerConfig {
        max_depth: depth,
        ..PlannerConfig::default()
    };
    let planner = Planner::with_config(soc, cfg).expect("planner");
    let planned = planner.plan_models(models).expect("plan");
    let report = planned.execute(soc).expect("exec");
    let trace = &report.trace;
    let cap = soc.memory.capacity_bytes as f64 / (1024.0 * 1024.0);

    // Downsample the memory trace to ~12 rows.
    let samples = &trace.memory;
    let step = (samples.len() / 12).max(1);
    let rows: Vec<Vec<String>> = samples
        .iter()
        .step_by(step)
        .map(|s| {
            vec![
                format!("{:.1}", s.time_ms),
                format!("{}", s.freq_mhz),
                format!("{:.0}", s.available_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.0}", s.allocated_bytes as f64 / (1024.0 * 1024.0)),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 9 — {name} ({depth}-stage pipeline)"),
        &[
            "t (ms)",
            "mem freq (MHz)",
            "available (MB)",
            "allocated (MB)",
        ],
        &rows,
    );
    let min_avail =
        samples.iter().map(|s| s.available_bytes).min().unwrap_or(0) as f64 / (1024.0 * 1024.0);
    let max_freq = samples.iter().map(|s| s.freq_mhz).max().unwrap_or(0);
    println!(
        "  capacity {cap:.0} MB, minimum available {min_avail:.0} MB, peak governor {max_freq} MHz, makespan {:.0} ms",
        report.makespan_ms
    );
}

fn main() {
    let soc = SocSpec::kirin_990();
    run_tier(
        "large models (BERT, ViT, YOLOv4)",
        &soc,
        &[ModelId::Bert, ModelId::Vit, ModelId::YoloV4],
        3,
    );
    run_tier(
        "medium models (InceptionV4, ResNet50, AlexNet)",
        &soc,
        &[ModelId::InceptionV4, ModelId::ResNet50, ModelId::AlexNet],
        3,
    );
    run_tier(
        "light models (SqueezeNet, MobileNetV2, GoogLeNet)",
        &soc,
        &[
            ModelId::SqueezeNet,
            ModelId::MobileNetV2,
            ModelId::GoogLeNet,
        ],
        3,
    );
    // Single-stage NPU-only reference: the governor should stay low.
    run_tier(
        "NPU-only reference (ResNet50)",
        &soc,
        &[ModelId::ResNet50],
        1,
    );
}
