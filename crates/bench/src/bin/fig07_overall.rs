//! Fig. 7 — overall latency and throughput of all schemes over random
//! model combinations on the three evaluation SoCs, plus the Band vs
//! Hetero²Pipe solution scatter.
//!
//! Expected shape (paper): Hetero²Pipe is ~4.2× faster than vanilla MNN
//! on average (up to ~8.8× on Kirin 990 thanks to the NPU), ~2× faster
//! than Pipe-it, ~1.3× faster than its own No-C/T ablation, and ~5%
//! ahead of Band with lower variance.
//!
//! Arguments: `--combos N` (default 100), `--seed S` (default 20250705).

use h2p_baselines::Scheme;
use h2p_bench::{arg_usize, mean, median, print_table, stddev};
use h2p_models::graph::ModelGraph;
use h2p_simulator::SocSpec;
use hetero2pipe::workload::random_combinations;

fn main() {
    let combos = arg_usize("--combos", 100);
    let seed = arg_usize("--seed", 20_250_705) as u64;
    let sets = random_combinations(seed, combos, 6, 12);

    for soc in SocSpec::evaluation_platforms() {
        let mut latency: Vec<Vec<f64>> = vec![Vec::new(); Scheme::ALL.len()];
        let mut throughput: Vec<Vec<f64>> = vec![Vec::new(); Scheme::ALL.len()];
        for set in &sets {
            let graphs: Vec<ModelGraph> = set.iter().map(|m| m.graph()).collect();
            for (si, scheme) in Scheme::ALL.iter().enumerate() {
                let r = scheme
                    .run(&soc, &graphs)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", scheme.name(), soc.name));
                latency[si].push(r.makespan_ms);
                throughput[si].push(r.throughput_per_sec);
            }
        }
        let mnn_mean = mean(&latency[0]);
        let rows: Vec<Vec<String>> = Scheme::ALL
            .iter()
            .enumerate()
            .map(|(si, scheme)| {
                vec![
                    scheme.name().to_owned(),
                    format!("{:.0}", mean(&latency[si])),
                    format!("{:.0}", median(&latency[si])),
                    format!("{:.2}", mean(&throughput[si])),
                    format!("{:.2}x", mnn_mean / mean(&latency[si])),
                    format!("{:.0}", stddev(&latency[si])),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 7 — {} ({} random combinations, seed {seed})",
                soc.name, combos
            ),
            &[
                "Scheme",
                "Lat mean (ms)",
                "Lat median",
                "Thput (/s)",
                "Speedup vs MNN",
                "Lat stddev",
            ],
            &rows,
        );

        // Band vs Hetero2Pipe scatter on a 30% subset.
        let band_idx = Scheme::ALL
            .iter()
            .position(|s| *s == Scheme::Band)
            .expect("Band in scheme list");
        let h2p_idx = Scheme::ALL
            .iter()
            .position(|s| *s == Scheme::Hetero2Pipe)
            .expect("H2P in scheme list");
        let subset = (combos / 10 * 3).max(1);
        let mut scatter = Vec::new();
        let pairs = latency[band_idx].iter().zip(latency[h2p_idx].iter());
        for (i, (&band_ms, &h2p_ms)) in pairs.take(subset.min(combos)).enumerate() {
            scatter.push(vec![
                format!("{i}"),
                format!("{band_ms:.0}"),
                format!("{h2p_ms:.0}"),
                format!("{:+.1}%", (band_ms / h2p_ms - 1.0) * 100.0),
            ]);
        }
        print_table(
            &format!(
                "Fig. 7 scatter — Band vs Hetero2Pipe, {} (30% subset)",
                soc.name
            ),
            &["Combo", "Band (ms)", "H2P (ms)", "Band/H2P-1"],
            &scatter,
        );
        let band_mean = mean(&latency[band_idx]);
        let h2p_mean = mean(&latency[h2p_idx]);
        println!(
            "\n{}: H2P vs Band mean gain {:+.1}%; stddev Band {:.0} vs H2P {:.0}.",
            soc.name,
            (band_mean / h2p_mean - 1.0) * 100.0,
            stddev(&latency[band_idx]),
            stddev(&latency[h2p_idx]),
        );
    }
}
