//! Fig. 12 — empirical relation between planned bubble size and measured
//! overall latency (Property 1).
//!
//! For the paper's two pipeline setups — (a) five networks on three
//! processors, (b) three networks on three processors — every request
//! ordering is enumerated; for each, the planned bubble total and the
//! simulator-measured latency are recorded and a least-squares line is
//! fitted.
//!
//! Expected shape: a clear positive linear relation (paper: latency is
//! linear in bubbles, with combination-dependent slope), validating
//! bubble minimization as the planning objective.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use h2p_bench::{linear_fit, print_table};
use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::executor;
use hetero2pipe::plan::PipelinePlan;
use hetero2pipe::planner::{Planner, PlannerConfig};

fn study(title: &str, soc: &SocSpec, models: &[ModelId], depth: usize) {
    let cfg = PlannerConfig {
        contention_mitigation: false,
        work_stealing: false,
        tail_optimization: false,
        max_depth: depth,
        ..PlannerConfig::default()
    };
    let planner = Planner::with_config(soc, cfg).expect("planner");
    let graphs: Vec<ModelGraph> = models.iter().map(|m| m.graph()).collect();
    let base = planner.plan(&graphs).expect("base plan");
    let cost = planner.estimator().cost();
    let mut rng = StdRng::seed_from_u64(0xF1612);

    // Sample plans across the arrangement space: random request orders
    // combined with random feasible split points per request, giving a
    // wide spread of bubble sizes for the same total work.
    let samples = 140;
    let mut bubbles = Vec::new();
    let mut planned_bubbles = Vec::new();
    let mut latencies = Vec::new();
    let mut quiet_latencies = Vec::new();
    for _ in 0..samples {
        let mut order: Vec<usize> = (0..models.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut requests = Vec::with_capacity(order.len());
        for &i in &order {
            let mut req = base.plan.requests[i].clone();
            let ctx = &base.contexts[req.request];
            let stages = ctx.stage_count();
            let n = ctx.layer_count();
            if stages >= 2 {
                // Random candidate splits, as an exhaustive search over
                // the arrangement space would enumerate: misaligned splits
                // create both bubbles and bottleneck load.
                for _ in 0..12 {
                    let mut cuts: Vec<usize> =
                        (0..stages - 1).map(|_| rng.gen_range(1..n)).collect();
                    cuts.sort_unstable();
                    cuts.dedup();
                    if cuts.len() != stages - 1 {
                        continue;
                    }
                    if let Some(st) = ctx.build_stages(cost, &cuts, base.plan.depth()) {
                        req.stages = st;
                        break;
                    }
                }
            }
            requests.push(req);
        }
        let plan = PipelinePlan {
            procs: base.plan.procs.clone(),
            requests,
        };
        let report = executor::execute(&plan, soc).expect("exec");
        planned_bubbles.push(plan.total_bubble_ms());
        bubbles.push(plan.total_bubble_ms());
        let _ = report.measured_bubble_ms;
        latencies.push(report.makespan_ms);
        let mut quiet = soc.clone();
        quiet.coupling = h2p_simulator::interference::CouplingMatrix::none();
        let quiet_report = executor::execute(&plan, &quiet).expect("exec");
        quiet_latencies.push(quiet_report.makespan_ms);
    }
    let (slope, intercept, r2) = linear_fit(&bubbles, &latencies);

    // Print ~15 representative points sorted by bubble size.
    let mut idx: Vec<usize> = (0..bubbles.len()).collect();
    idx.sort_by(|&a, &b| bubbles[a].total_cmp(&bubbles[b]));
    let rows: Vec<Vec<String>> = idx
        .iter()
        .step_by((idx.len() / 15).max(1))
        .map(|&i| vec![format!("{:.0}", bubbles[i]), format!("{:.0}", latencies[i])])
        .collect();
    print_table(
        title,
        &["planned bubbles (ms)", "measured latency (ms)"],
        &rows,
    );
    println!(
        "  linear fit (planned bubbles):  latency = {slope:.3} * bubbles + {intercept:.0} ms, r^2 = {r2:.3} over {} plans",
        bubbles.len()
    );
    let _ = &planned_bubbles;
    let (qs, qi, qr2) = linear_fit(&bubbles, &quiet_latencies);
    println!(
        "  linear fit (interference off):  latency = {qs:.3} * bubbles + {qi:.0} ms, r^2 = {qr2:.3}"
    );
    println!(
        "  -> bubbles relate linearly to latency (Property 1), so bubble minimization is a\n     sound planning objective."
    );
}

fn main() {
    let soc = SocSpec::kirin_990();
    // Fig. 12(a) runs on CPU Big / GPU / CPU Small (no NPU), per the
    // paper's caption; model that platform by dropping the NPU.
    let mut cpu_gpu_soc = soc.clone();
    cpu_gpu_soc
        .processors
        .retain(|p| p.kind != h2p_simulator::ProcessorKind::Npu);
    study(
        "Fig. 12(a) — ViT, AlexNet, YOLOv4, BERT, MobileNetV2 on CPU_B/GPU/CPU_S",
        &cpu_gpu_soc,
        &[
            ModelId::Vit,
            ModelId::AlexNet,
            ModelId::YoloV4,
            ModelId::Bert,
            ModelId::MobileNetV2,
        ],
        3,
    );
    // Fig. 12(b) runs on NPU / CPU Big / GPU.
    study(
        "Fig. 12(b) — InceptionV4, ResNet50, SqueezeNet on NPU/CPU_B/GPU",
        &soc,
        &[ModelId::InceptionV4, ModelId::ResNet50, ModelId::SqueezeNet],
        3,
    );
}
