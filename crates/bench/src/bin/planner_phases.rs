//! Planner-phase timing profile: where does planning time go?
//!
//! Plans a random multi-DNN workload repeatedly with the telemetry
//! subsystem attached and reports the accumulated phase timings
//! (prepare = per-request DP partitioning, assemble = candidate-order
//! evaluation with work stealing and tail search), the DP pruning hit
//! rate, the LAP work counters, and the cross-invocation estimate-table
//! cache hit/miss counters — the observability counterpart of the
//! `planner_scaling` wall-clock suite. The raw metrics snapshot is
//! written as JSON for trend tracking across commits.
//!
//! Arguments: `--requests N` (default 8), `--seed S` (default 7),
//! `--iters I` (default 5), `--out PATH` (default
//! `BENCH_planner_phases.json`).

use h2p_bench::{arg_str, arg_usize, print_table};
use h2p_models::graph::ModelGraph;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;
use hetero2pipe::workload::random_models;

fn main() {
    let n = arg_usize("--requests", 8);
    let seed = arg_usize("--seed", 7) as u64;
    let iters = arg_usize("--iters", 5).max(1);
    let out = arg_str("--out", "BENCH_planner_phases.json");

    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let requests: Vec<ModelGraph> = random_models(seed, n).iter().map(|m| m.graph()).collect();

    for _ in 0..iters {
        planner.plan(&requests).expect("plan");
    }
    let snap = planner.telemetry().metrics.snapshot();

    let per_iter = |gauge: &str| snap.gauge(gauge).unwrap_or(0.0) / iters as f64;
    let count = |counter: &str| snap.counter(counter).unwrap_or(0);
    let evaluated = count("planner.dp.masks_evaluated");
    let pruned = count("planner.dp.masks_pruned");
    let prune_rate = if evaluated + pruned > 0 {
        100.0 * pruned as f64 / (evaluated + pruned) as f64
    } else {
        0.0
    };
    let rows = vec![
        vec![
            "prepare (DP partitioning)".to_owned(),
            format!("{:.3}", per_iter("planner.phase.prepare_ms")),
        ],
        vec![
            "assemble (orders + stealing)".to_owned(),
            format!("{:.3}", per_iter("planner.phase.assemble_ms")),
        ],
        vec![
            "total".to_owned(),
            format!("{:.3}", per_iter("planner.phase.total_ms")),
        ],
    ];
    print_table(
        &format!("Planner phase timings, Kirin 990 ({n} random requests, mean of {iters} plans)"),
        &["phase", "ms/plan"],
        &rows,
    );
    println!(
        "\nDP: {evaluated} subset DPs run, {pruned} pruned by the exact lower bound \
         ({prune_rate:.1}% hit rate), {} stage-cost cells evaluated",
        count("planner.dp.cells"),
    );
    println!(
        "LAP: {} solves, {} augmenting steps; mitigation: {} passes, {} moves",
        count("lap.solves"),
        count("lap.augment_steps"),
        count("mitigation.passes"),
        count("mitigation.moves"),
    );
    // The cross-invocation estimate-table cache: the first plan misses
    // once per distinct (model, pipeline) pair, every later plan hits.
    let hits = count("planner.tables.cache_hits");
    let misses = count("planner.tables.cache_misses");
    let hit_rate = if hits + misses > 0 {
        100.0 * hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    println!(
        "tables cache: {hits} hits, {misses} misses across {iters} plans ({hit_rate:.1}% hit rate)"
    );

    std::fs::write(&out, snap.to_json()).expect("write metrics snapshot");
    println!("\nmetrics snapshot written to {out}");
}
