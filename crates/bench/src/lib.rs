//! # h2p-bench
//!
//! The experiment harness regenerating every table and figure of the
//! Hetero²Pipe paper. Each `fig*`/`tab*`/`app_*` binary prints the rows
//! or series of one paper artifact; run them with
//!
//! ```text
//! cargo run --release -p h2p-bench --bin fig07_overall
//! ```
//!
//! See `EXPERIMENTS.md` at the workspace root for the full index and the
//! paper-vs-measured comparison. This library holds the shared plumbing:
//! aligned-table printing, simple statistics and linear regression used by
//! several experiments.

/// Prints an aligned plain-text table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Mean of a sample (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median of a sample (0 for empty input).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Population standard deviation (0 for fewer than two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Least-squares linear fit `y = slope·x + intercept`, plus Pearson r².
/// Returns `(slope, intercept, r2)`; degenerate inputs yield zeros.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return (0.0, 0.0, 0.0);
    }
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx <= 0.0 || syy <= 0.0 {
        return (0.0, my, 0.0);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = (sxy * sxy) / (sxx * syy);
    (slope, intercept, r2)
}

/// Parses `--key value` style arguments with a default.
pub fn arg_usize(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--key value` string argument with a default.
pub fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let (s, i, r2) = linear_fit(&xs, &ys);
        assert!((s - 3.0).abs() < 1e-9);
        assert!((i - 1.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_handles_degenerate_input() {
        assert_eq!(linear_fit(&[1.0], &[2.0]), (0.0, 0.0, 0.0));
        let (s, _, r2) = linear_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(s, 0.0);
        assert_eq!(r2, 0.0);
    }
}
