//! Criterion micro-benchmarks of the planner's components: the
//! horizontal DP (reference vs the monotonic O(nK) variant), the
//! Kuhn–Munkres LAP solver, the contention-mitigation pass, end-to-end
//! planning and simulated execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use h2p_contention::ContentionClass;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::planner::Planner;
use hetero2pipe::workload::random_models;
use hetero2pipe::{lap, mitigation, partition};

fn bench_horizontal_dp(c: &mut Criterion) {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let procs = soc.processors_by_power();
    let mut group = c.benchmark_group("horizontal_dp");
    for id in [ModelId::Vgg16, ModelId::Bert, ModelId::YoloV4] {
        let graph = id.graph();
        let ctx = planner.estimator().context(&graph, &procs, vec![1, 2, 3]); // CPU_B, GPU, CPU_S
        let cost = planner.estimator().cost();
        let n = graph.len();
        group.bench_with_input(BenchmarkId::new("reference", id.name()), &n, |b, &n| {
            b.iter(|| {
                partition::min_max_partition(n, 3, |a, i, j| ctx.stage_cost(cost, a, i, j))
                    .expect("feasible")
            })
        });
        group.bench_with_input(BenchmarkId::new("fast", id.name()), &n, |b, &n| {
            b.iter(|| {
                partition::min_max_partition_fast(n, 3, |a, i, j| ctx.stage_cost(cost, a, i, j))
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("kuhn_munkres");
    for n in [8usize, 32, 64] {
        // Deterministic pseudo-random cost matrix.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64
        };
        let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| lap::solve(cost).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_mitigation(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_mitigation");
    for m in [16usize, 64, 128] {
        let classes: Vec<ContentionClass> = (0..m)
            .map(|i| {
                if i % 3 == 0 {
                    ContentionClass::High
                } else {
                    ContentionClass::Low
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &classes, |b, cls| {
            b.iter(|| mitigation::mitigate(cls, 4))
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let models = random_models(7, 8);
    let graphs: Vec<_> = models.iter().map(|m| m.graph()).collect();
    c.bench_function("plan_8_requests", |b| {
        b.iter(|| planner.plan(&graphs).expect("plan"))
    });
    let planned = planner.plan(&graphs).expect("plan");
    c.bench_function("simulate_8_requests", |b| {
        b.iter(|| planned.execute(&soc).expect("exec"))
    });
}

criterion_group!(
    benches,
    bench_horizontal_dp,
    bench_hungarian,
    bench_mitigation,
    bench_end_to_end
);
criterion_main!(benches);
