//! The planner's perf-trajectory suite: partition DP, LAP solve,
//! end-to-end planning at 2/4/8/16 requests (frozen sequential reference
//! vs the cached runtime at 1 and 4 threads), an online window replan,
//! and the recovery re-plan after a processor dropout. After running,
//! writes the measurements to `BENCH_planner.json`
//! (path overridable via `H2P_BENCH_OUT`) so `scripts/ci.sh` and future
//! PRs have a machine-readable trajectory to regress against.
//!
//! `H2P_BENCH_QUICK=1` shrinks sampling so the suite finishes in seconds;
//! `scripts/bench.sh` wraps both modes.

use std::sync::Arc;

use criterion::{BenchResult, BenchmarkId, Criterion};

use h2p_models::graph::ModelGraph;
use h2p_models::zoo::ModelId;
use h2p_simulator::SocSpec;
use hetero2pipe::online::OnlinePlanner;
use hetero2pipe::planner::Planner;
use hetero2pipe::workload::random_models;
use hetero2pipe::{lap, par, partition};

/// The thread count of the parallel end-to-end cases (and the speedup
/// gate in `bench_check`).
const PAR_THREADS: usize = 4;

/// Request count of the workload the speedup gate reads.
const GATE_REQUESTS: usize = 8;

fn workload(m: usize) -> Vec<ModelGraph> {
    // Seed fixed per size so every run (and both planner paths) measures
    // the identical workload.
    random_models(7, m).iter().map(|id| id.graph()).collect()
}

fn bench_partition_dp(c: &mut Criterion) {
    // The steady-state DP path a warm planner runs per (request, subset):
    // flat prefix-sum kernel over arena-backed scratch, no allocation.
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let procs = soc.processors_by_power();
    let mut group = c.benchmark_group("partition_dp");
    let mut scratch = partition::DpScratch::new();
    for id in [ModelId::Vgg16, ModelId::Bert] {
        let graph = id.graph();
        let tables = planner.estimator().tables(Arc::new(graph.clone()), &procs);
        let n = graph.len();
        group.bench_with_input(BenchmarkId::from_parameter(id.name()), &n, |b, _| {
            b.iter(|| {
                tables
                    .partition_into(&[1, 2, 3], 1, &mut scratch)
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

fn bench_plan_single(c: &mut Criterion) {
    // One BERT request planned end-to-end: the single-request path hands
    // the full thread budget to the intra-request subset fan-out, so this
    // case tracks the tentpole kernel plus the mask-parallel evaluate-all
    // path (sequential on 1-core hosts — `available_parallelism` in the
    // JSON says which regime a snapshot measured).
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let graphs = [ModelId::Bert.graph()];
    c.bench_function("plan_single/BERT", |b| {
        b.iter(|| {
            planner
                .plan_with_threads(&graphs, PAR_THREADS)
                .expect("plan")
        })
    });
}

fn bench_lap(c: &mut Criterion) {
    let n = 32usize;
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 1000) as f64
    };
    let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
    c.bench_function("lap_solve/32", |b| {
        b.iter(|| lap::solve(&cost).expect("feasible"))
    });
}

fn bench_plan_scaling(c: &mut Criterion) {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    for m in [2usize, 4, 8, 16] {
        let graphs = workload(m);
        c.bench_function(&format!("plan/reference/{m}"), |b| {
            b.iter(|| planner.plan_reference(&graphs).expect("plan"))
        });
        c.bench_function(&format!("plan/t1/{m}"), |b| {
            b.iter(|| planner.plan_with_threads(&graphs, 1).expect("plan"))
        });
        c.bench_function(&format!("plan/t{PAR_THREADS}/{m}"), |b| {
            b.iter(|| {
                planner
                    .plan_with_threads(&graphs, PAR_THREADS)
                    .expect("plan")
            })
        });
    }
}

fn bench_online_replan(c: &mut Criterion) {
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let online = OnlinePlanner::new(planner, 4);
    let graphs = workload(16);
    c.bench_function("online/replan_w4/16", |b| {
        b.iter(|| online.plan(&graphs).expect("plan"))
    });
    // The incremental path on unchanged windows: the first call below
    // warms the window cache, so the measured steady state is the online
    // deployment's common case — every window's key (models, contention
    // classes, processor availability) unchanged since the last
    // invocation, every plan served from the memo. Release builds skip
    // the debug-only hit-equivalence replan, so this measures the cache.
    online
        .plan_incremental(&graphs)
        .expect("warm the window cache");
    c.bench_function("online/replan_incremental/16", |b| {
        b.iter(|| online.plan_incremental(&graphs).expect("plan"))
    });
}

fn bench_recovery_replan(c: &mut Criterion) {
    // The fault-recovery path: after the most powerful pipeline slot
    // drops out, every request is re-partitioned over the ordered
    // subsets of the surviving slots and re-aligned by work stealing.
    // This is the latency a live deployment pays between a dropout
    // notification and the resumed pipeline.
    let soc = SocSpec::kirin_990();
    let planner = Planner::new(&soc).expect("planner");
    let graphs: Vec<Arc<ModelGraph>> = workload(8).into_iter().map(Arc::new).collect();
    let pending: Vec<usize> = (0..graphs.len()).collect();
    let mut down = vec![false; soc.processors.len()];
    down[planner.pipeline_procs()[0].index()] = true;
    c.bench_function("recovery/replan_drop1/8", |b| {
        b.iter(|| {
            hetero2pipe::recovery::replan_on_survivors(&planner, &graphs, &pending, &down)
                .expect("replan")
        })
    });
}

fn bench_serve_sweep(c: &mut Criterion) {
    // The serving front-end at overload: 16 requests offered well past
    // kirin-990 saturation (~1.5 served/s), driven through admission,
    // deadline shedding, batching, incremental window planning and
    // execution. `Server::new` runs the measured calibration pass (a
    // solo execution per zoo model) once, outside the measurement, so
    // the case tracks the steady-state cost of absorbing one overloaded
    // arrival burst end to end.
    let soc = SocSpec::kirin_990();
    let server = h2p_serve::Server::new(&soc, 4).expect("server");
    let cfg = h2p_serve::ServeConfig {
        qps: 8.0,
        requests: 16,
        seed: 7,
        ..h2p_serve::ServeConfig::default()
    };
    c.bench_function("serve/sweep_qps/16", |b| {
        b.iter(|| server.run(&cfg).expect("serve"))
    });
}

fn median_of(results: &[BenchResult], name: &str) -> Option<f64> {
    results.iter().find(|r| r.name == name).map(|r| r.median_ns)
}

fn write_json(results: &[BenchResult]) {
    let out = std::env::var("H2P_BENCH_OUT").unwrap_or_else(|_| "BENCH_planner.json".to_owned());
    let cases: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}}}",
                r.name, r.median_ns, r.mean_ns, r.min_ns, r.iters_per_sample, r.samples
            )
        })
        .collect();
    let reference = median_of(results, &format!("plan/reference/{GATE_REQUESTS}"));
    let t1 = median_of(results, &format!("plan/t1/{GATE_REQUESTS}"));
    let t4 = median_of(results, &format!("plan/t{PAR_THREADS}/{GATE_REQUESTS}"));
    let speedup = match (reference, t1, t4) {
        (Some(reference), Some(t1), Some(t4)) if t4 > 0.0 && t1 > 0.0 => format!(
            concat!(
                "  \"speedup\": {{\n",
                "    \"workload_requests\": {req},\n",
                "    \"threads\": {thr},\n",
                "    \"reference_median_ns\": {reference:.1},\n",
                "    \"t1_median_ns\": {t1:.1},\n",
                "    \"t{thr}_median_ns\": {t4:.1},\n",
                "    \"t{thr}_vs_reference\": {vs_ref:.3},\n",
                "    \"t{thr}_vs_t1\": {vs_t1:.3}\n",
                "  }}"
            ),
            req = GATE_REQUESTS,
            thr = PAR_THREADS,
            reference = reference,
            t1 = t1,
            t4 = t4,
            vs_ref = reference / t4,
            vs_t1 = t1 / t4,
        ),
        _ => "  \"speedup\": null".to_owned(),
    };
    let scratch = median_of(results, "online/replan_w4/16");
    let incremental = median_of(results, "online/replan_incremental/16");
    let replan = match (scratch, incremental) {
        (Some(scratch), Some(incremental)) if incremental > 0.0 => format!(
            concat!(
                "  \"replan\": {{\n",
                "    \"scratch_median_ns\": {scratch:.1},\n",
                "    \"incremental_median_ns\": {incremental:.1},\n",
                "    \"incremental_vs_scratch\": {ratio:.3}\n",
                "  }}"
            ),
            scratch = scratch,
            incremental = incremental,
            ratio = scratch / incremental,
        ),
        _ => "  \"replan\": null".to_owned(),
    };
    let json = format!(
        "{{\n  \"schema\": \"h2p-bench-planner/v1\",\n  \"quick\": {},\n  \"available_parallelism\": {},\n  \"cases\": [\n{}\n  ],\n{},\n{}\n}}\n",
        criterion::quick_mode(),
        par::available_parallelism(),
        cases.join(",\n"),
        speedup,
        replan,
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_partition_dp(&mut criterion);
    bench_plan_single(&mut criterion);
    bench_lap(&mut criterion);
    bench_plan_scaling(&mut criterion);
    bench_online_replan(&mut criterion);
    bench_recovery_replan(&mut criterion);
    bench_serve_sweep(&mut criterion);
    write_json(&criterion::take_results());
}
