// Integration tests may unwrap/expect freely: a panic here is a test
// failure, not a library defect.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property 2 (the monotonicity condition Algorithm 1's optimized search
//! depends on): slice costs `T_k(i, j)` strictly shrink when the front
//! layer is dropped and strictly grow when a layer is appended, for every
//! zoo model on every supporting processor.

use proptest::prelude::*;

use h2p_models::cost::CostModel;
use h2p_models::graph::LayerRange;
use h2p_models::zoo::ModelId;
use h2p_simulator::{ProcessorId, SocSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slice_costs_are_monotone(
        model in 0usize..10,
        proc in 0usize..4,
        seed in any::<u64>(),
    ) {
        let soc = SocSpec::kirin_990();
        let cost = CostModel::new(&soc);
        let g = ModelId::ALL[model].graph();
        let n = g.len();
        let p = ProcessorId(proc);
        let i = (seed as usize) % (n - 1);
        let j = i + (seed as usize / 7) % (n - 1 - i);
        let slice = |a: usize, b: usize| cost.slice_latency_ms(&g, LayerRange::new(a, b), p);
        if let Some(t) = slice(i, j) {
            prop_assert!(t > 0.0, "slice cost must be positive");
            // Dropping the front layer strictly shrinks the cost.
            if i < j {
                if let Some(shrunk) = slice(i + 1, j) {
                    prop_assert!(shrunk < t, "T({},{})={shrunk} !< T({i},{j})={t}", i + 1, j);
                }
            }
            // Appending a layer strictly grows the cost (when supported).
            if j + 1 < n {
                if let Some(grown) = slice(i, j + 1) {
                    prop_assert!(grown > t, "T({i},{})={grown} !> T({i},{j})={t}", j + 1);
                }
            }
        }
    }

    #[test]
    fn cost_tables_agree_with_direct_queries(
        model in 0usize..10,
        seed in any::<u64>(),
    ) {
        let soc = SocSpec::kirin_990();
        let cost = CostModel::new(&soc);
        let g = ModelId::ALL[model].graph();
        let procs = soc.processors_by_power();
        let table = cost.table(&g, &procs);
        let n = g.len();
        let i = (seed as usize) % n;
        let j = i + (seed as usize / 11) % (n - i);
        for (slot, &p) in procs.iter().enumerate() {
            let direct = cost.slice_latency_ms(&g, LayerRange::new(i, j), p);
            let tabled = table.slice_ms(slot, i, j);
            match (direct, tabled) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "mismatch at slot {slot}: {other:?}"),
            }
        }
    }

    #[test]
    fn copy_costs_are_metric_like(
        bytes in 0u64..100_000_000,
        a in 0usize..4,
        b in 0usize..4,
    ) {
        let soc = SocSpec::kirin_990();
        let cost = CostModel::new(&soc);
        let (pa, pb) = (ProcessorId(a), ProcessorId(b));
        let ab = cost.copy_ms(bytes, pa, pb);
        let ba = cost.copy_ms(bytes, pb, pa);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-12, "copies are symmetric");
        if a == b {
            prop_assert_eq!(ab, 0.0);
        } else {
            prop_assert!(ab > 0.0);
            // More bytes never cost less.
            prop_assert!(cost.copy_ms(bytes + 1024, pa, pb) >= ab);
        }
    }
}
