//! Classic over-parameterized CNNs: AlexNet, VGG16, SqueezeNet,
//! GoogLeNet and InceptionV4.

use super::builders::*;
use crate::graph::ModelGraph;
use crate::layer::f32_bytes;

/// AlexNet (Krizhevsky 2012): 5 conv + 3 FC, 227×227 input, ~61 M params.
/// Its giant FC layers make it an Observation-2 contention source.
pub fn alexnet() -> ModelGraph {
    // Spatial dims follow the canonical valid-padding pipeline
    // (227→55→27→13→6); conv2/4/5 use the original's two-group
    // convolutions, modeled by halving the effective input channels.
    let layers = vec![
        conv("conv1", 220, 220, 3, 96, 11, 4),
        pool("pool1", 54, 54, 96, 3, 2),
        conv("conv2", 27, 27, 48, 256, 5, 1),
        pool("pool2", 26, 26, 256, 3, 2),
        conv("conv3", 13, 13, 256, 384, 3, 1),
        conv("conv4", 13, 13, 192, 384, 3, 1),
        conv("conv5", 13, 13, 192, 256, 3, 1),
        pool("pool5", 12, 12, 256, 3, 2),
        fc("fc6", 6 * 6 * 256, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
        softmax("prob", 1000),
    ];
    ModelGraph::new("AlexNet", f32_bytes(227 * 227 * 3), layers)
}

/// VGG16 (Simonyan 2014): 13 conv + 3 FC, ~138 M params, ~15.5 GFLOPs.
pub fn vgg16() -> ModelGraph {
    let layers = vec![
        conv("conv1_1", 224, 224, 3, 64, 3, 1),
        conv("conv1_2", 224, 224, 64, 64, 3, 1),
        pool("pool1", 224, 224, 64, 2, 2),
        conv("conv2_1", 112, 112, 64, 128, 3, 1),
        conv("conv2_2", 112, 112, 128, 128, 3, 1),
        pool("pool2", 112, 112, 128, 2, 2),
        conv("conv3_1", 56, 56, 128, 256, 3, 1),
        conv("conv3_2", 56, 56, 256, 256, 3, 1),
        conv("conv3_3", 56, 56, 256, 256, 3, 1),
        pool("pool3", 56, 56, 256, 2, 2),
        conv("conv4_1", 28, 28, 256, 512, 3, 1),
        conv("conv4_2", 28, 28, 512, 512, 3, 1),
        conv("conv4_3", 28, 28, 512, 512, 3, 1),
        pool("pool4", 28, 28, 512, 2, 2),
        conv("conv5_1", 14, 14, 512, 512, 3, 1),
        conv("conv5_2", 14, 14, 512, 512, 3, 1),
        conv("conv5_3", 14, 14, 512, 512, 3, 1),
        pool("pool5", 14, 14, 512, 2, 2),
        fc("fc6", 7 * 7 * 512, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
        softmax("prob", 1000),
    ];
    ModelGraph::new("VGG16", f32_bytes(224 * 224 * 3), layers)
}

/// SqueezeNet 1.0 (Iandola 2016): conv + 8 fire modules, only ~1.2 M
/// params (4.8 MB) — yet a high-contention outlier (Observation 3)
/// because its fire modules have terrible locality.
pub fn squeezenet() -> ModelGraph {
    let layers = vec![
        conv("conv1", 224, 224, 3, 96, 7, 2),
        pool("pool1", 112, 112, 96, 3, 2),
        fire("fire2", 56, 56, 96, 16, 64),
        fire("fire3", 56, 56, 128, 16, 64),
        fire("fire4", 56, 56, 128, 32, 128),
        pool("pool4", 56, 56, 256, 3, 2),
        fire("fire5", 28, 28, 256, 32, 128),
        fire("fire6", 28, 28, 256, 48, 192),
        fire("fire7", 28, 28, 384, 48, 192),
        fire("fire8", 28, 28, 384, 64, 256),
        pool("pool8", 28, 28, 512, 3, 2),
        fire("fire9", 14, 14, 512, 64, 256),
        conv("conv10", 14, 14, 512, 1000, 1, 1),
        global_pool("pool10", 14, 14, 1000),
        softmax("prob", 1000),
    ];
    ModelGraph::new("SqueezeNet", f32_bytes(224 * 224 * 3), layers)
}

/// GoogLeNet / InceptionV1 (Szegedy 2014): stem + 9 inception modules,
/// ~7 M params (≈23 MB as shipped) — the other Observation-3 outlier.
pub fn googlenet() -> ModelGraph {
    let layers = vec![
        conv("conv1", 224, 224, 3, 64, 7, 2),
        pool("pool1", 112, 112, 64, 3, 2),
        conv("conv2", 56, 56, 64, 192, 3, 1),
        pool("pool2", 56, 56, 192, 3, 2),
        inception("inc3a", 28, 28, 192, 256),
        inception("inc3b", 28, 28, 256, 480),
        pool("pool3", 28, 28, 480, 3, 2),
        inception("inc4a", 14, 14, 480, 512),
        inception("inc4b", 14, 14, 512, 512),
        inception("inc4c", 14, 14, 512, 512),
        inception("inc4d", 14, 14, 512, 528),
        inception("inc4e", 14, 14, 528, 832),
        pool("pool4", 14, 14, 832, 3, 2),
        inception("inc5a", 7, 7, 832, 832),
        inception("inc5b", 7, 7, 832, 1024),
        global_pool("pool5", 7, 7, 1024),
        fc("fc", 1024, 1000),
        softmax("prob", 1000),
    ];
    ModelGraph::new("GoogLeNet", f32_bytes(224 * 224 * 3), layers)
}

/// InceptionV4 (Szegedy 2016): deeper stem + 14 inception blocks,
/// ~43 M params, ~12 GFLOPs at 299×299.
pub fn inceptionv4() -> ModelGraph {
    let mut layers = vec![
        conv("stem1", 299, 299, 3, 32, 3, 2),
        conv("stem2", 150, 150, 32, 64, 3, 1),
        pool("stem_pool", 150, 150, 64, 3, 2),
        conv("stem3", 75, 75, 64, 192, 3, 1),
        pool("stem_pool2", 75, 75, 192, 3, 2),
    ];
    for i in 0..4 {
        layers.push(inception(
            &format!("incA{i}"),
            38,
            38,
            if i == 0 { 192 } else { 384 },
            384,
        ));
    }
    layers.push(pool("redA", 38, 38, 384, 3, 2));
    for i in 0..7 {
        layers.push(inception(
            &format!("incB{i}"),
            19,
            19,
            if i == 0 { 384 } else { 1024 },
            1024,
        ));
    }
    layers.push(pool("redB", 19, 19, 1024, 3, 2));
    for i in 0..3 {
        layers.push(inception(
            &format!("incC{i}"),
            10,
            10,
            if i == 0 { 1024 } else { 1536 },
            1536,
        ));
    }
    layers.push(global_pool("pool", 10, 10, 1536));
    layers.push(fc("fc", 1536, 1000));
    layers.push(softmax("prob", 1000));
    ModelGraph::new("InceptionV4", f32_bytes(299 * 299 * 3), layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_has_61m_params() {
        let p = alexnet().weight_bytes() / 4;
        assert!((55_000_000..70_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn vgg16_has_138m_params_and_15gflops() {
        let g = vgg16();
        let p = g.weight_bytes() / 4;
        assert!((130_000_000..145_000_000).contains(&p), "got {p}");
        let gf = g.total_flops() / 1e9;
        assert!((28.0..34.0).contains(&gf), "got {gf} GFLOPs (MACs×2)");
    }

    #[test]
    fn squeezenet_is_under_6_megabytes() {
        let mb = squeezenet().weight_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 6.0, "SqueezeNet must stay tiny, got {mb} MB");
    }

    #[test]
    fn googlenet_is_an_order_larger_than_squeezenet() {
        let g = googlenet().weight_bytes();
        let s = squeezenet().weight_bytes();
        assert!(g > 3 * s);
        let mb = g as f64 / (1024.0 * 1024.0);
        assert!((15.0..40.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn inceptionv4_is_mid_sized() {
        let g = inceptionv4();
        let p = g.weight_bytes() / 4;
        assert!((20_000_000..80_000_000).contains(&p), "got {p}");
        assert!(g.len() > 15);
    }

    #[test]
    fn all_classic_models_are_fully_npu_supported() {
        for g in [alexnet(), vgg16(), squeezenet(), googlenet(), inceptionv4()] {
            assert!(g.fully_npu_supported(), "{} should run on NPU", g.name());
        }
    }
}
