//! Layer constructors shared by the zoo's network definitions.
//!
//! All constructors compute FLOPs and tensor bytes analytically from the
//! architectural dimensions, so each network's aggregate cost matches the
//! published parameter counts and GFLOPs to within the fidelity the
//! planner needs (relative shapes across models and processors).

use crate::layer::{f32_bytes, Layer, OpKind};

/// A dense convolution with "same" padding.
///
/// `h × w × cin` input, `k × k` kernel, `stride`, producing
/// `(h/stride) × (w/stride) × cout`.
pub(crate) fn conv(name: &str, h: u64, w: u64, cin: u64, cout: u64, k: u64, stride: u64) -> Layer {
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    let flops = 2.0 * (k * k * cin * cout * oh * ow) as f64;
    Layer::new(
        name,
        OpKind::Conv,
        flops,
        f32_bytes(h * w * cin),
        f32_bytes(oh * ow * cout),
        f32_bytes(k * k * cin * cout + cout),
    )
    .locality(0.9)
}

/// A fully connected layer `cin → cout`. Large FC layers stream their
/// entire weight matrix through the cache hierarchy, giving them the 2–4×
/// higher cache-miss rates of Observation 2 — captured by the reduced
/// locality and a working set equal to the weight matrix.
pub(crate) fn fc(name: &str, cin: u64, cout: u64) -> Layer {
    Layer::new(
        name,
        OpKind::Fc,
        2.0 * (cin * cout) as f64,
        f32_bytes(cin),
        f32_bytes(cout),
        f32_bytes(cin * cout + cout),
    )
    .locality(0.55)
    .working_set(f32_bytes(cin * cout))
}

/// A pooling layer over `h × w × c` with window `k` and `stride`.
pub(crate) fn pool(name: &str, h: u64, w: u64, c: u64, k: u64, stride: u64) -> Layer {
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    Layer::new(
        name,
        OpKind::Pool,
        (k * k * oh * ow * c) as f64,
        f32_bytes(h * w * c),
        f32_bytes(oh * ow * c),
        0,
    )
    .locality(0.85)
}

/// Global average pooling to a `c`-vector.
pub(crate) fn global_pool(name: &str, h: u64, w: u64, c: u64) -> Layer {
    Layer::new(
        name,
        OpKind::Pool,
        (h * w * c) as f64,
        f32_bytes(h * w * c),
        f32_bytes(c),
        0,
    )
    .locality(0.85)
}

/// A SqueezeNet fire module (squeeze 1×1 → expand 1×1 ‖ 3×3 → concat),
/// fused. Fire modules juggle many small tensors with a concat merge,
/// which destroys locality — these are exactly the Observation-3 outliers
/// (SqueezeNet is 4.8 MB yet contention-heavy).
pub(crate) fn fire(name: &str, h: u64, w: u64, cin: u64, squeeze: u64, expand: u64) -> Layer {
    let sq_flops = 2.0 * (cin * squeeze * h * w) as f64;
    let e1_flops = 2.0 * (squeeze * expand * h * w) as f64;
    let e3_flops = 2.0 * (9 * squeeze * expand * h * w) as f64;
    let cout = 2 * expand;
    let weights = cin * squeeze + squeeze * expand + 9 * squeeze * expand + squeeze + cout;
    // Intermediate squeeze/expand tensors inflate the working set well
    // beyond input+output.
    let ws = f32_bytes(h * w * (cin + squeeze + 2 * cout)) + f32_bytes(weights);
    Layer::new(
        name,
        OpKind::Concat,
        sq_flops + e1_flops + e3_flops,
        f32_bytes(h * w * cin),
        f32_bytes(h * w * cout),
        f32_bytes(weights),
    )
    .locality(0.30)
    .working_set(ws)
}

/// An inception module (1×1 ‖ 3×3 ‖ 5×5 ‖ pool-proj branches → concat),
/// fused, with branch channel counts chosen as fractions of `cout`.
pub(crate) fn inception(name: &str, h: u64, w: u64, cin: u64, cout: u64) -> Layer {
    // Branch split roughly follows GoogLeNet's published ratios.
    let c1 = cout / 4; // 1x1
    let c3 = cout / 2; // 3x3 (with cin/2 reduce)
    let c5 = cout / 8; // 5x5 (with cin/8 reduce)
    let cp = cout - c1 - c3 - c5; // pool projection
    let red3 = cin / 4;
    let red5 = cin / 16;
    let flops = 2.0
        * ((cin * c1 + cin * red3 + 9 * red3 * c3 + cin * red5 + 25 * red5 * c5 + cin * cp) * h * w)
            as f64;
    let weights =
        cin * c1 + cin * red3 + 9 * red3 * c3 + cin * red5 + 25 * red5 * c5 + cin * cp + cout;
    let ws = f32_bytes(h * w * (cin + cout + red3 + red5)) + f32_bytes(weights);
    Layer::new(
        name,
        OpKind::Concat,
        flops,
        f32_bytes(h * w * cin),
        f32_bytes(h * w * cout),
        f32_bytes(weights),
    )
    .locality(0.32)
    .working_set(ws)
}

/// A ResNet bottleneck block (1×1 reduce → 3×3 → 1×1 expand + residual),
/// fused.
pub(crate) fn bottleneck(
    name: &str,
    h: u64,
    w: u64,
    cin: u64,
    mid: u64,
    cout: u64,
    stride: u64,
) -> Layer {
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    let f1 = 2.0 * (cin * mid * oh * ow) as f64;
    let f3 = 2.0 * (9 * mid * mid * oh * ow) as f64;
    let f2 = 2.0 * (mid * cout * oh * ow) as f64;
    let proj = if cin != cout || stride != 1 {
        2.0 * (cin * cout * oh * ow) as f64
    } else {
        0.0
    };
    let weights = cin * mid + 9 * mid * mid + mid * cout + if cin != cout { cin * cout } else { 0 };
    Layer::new(
        name,
        OpKind::Eltwise,
        f1 + f3 + f2 + proj,
        f32_bytes(h * w * cin),
        f32_bytes(oh * ow * cout),
        f32_bytes(weights),
    )
    .locality(0.75)
}

/// A MobileNetV2 inverted-residual block (1×1 expand → depthwise 3×3 →
/// 1×1 project + residual), fused.
pub(crate) fn inverted_residual(
    name: &str,
    h: u64,
    w: u64,
    cin: u64,
    cout: u64,
    expand: u64,
    stride: u64,
) -> Layer {
    let mid = cin * expand;
    let oh = h.div_ceil(stride);
    let ow = w.div_ceil(stride);
    let f_expand = 2.0 * (cin * mid * h * w) as f64;
    let f_dw = 2.0 * (9 * mid * oh * ow) as f64;
    let f_proj = 2.0 * (mid * cout * oh * ow) as f64;
    let weights = cin * mid + 9 * mid + mid * cout;
    Layer::new(
        name,
        OpKind::DwConv,
        f_expand + f_dw + f_proj,
        f32_bytes(h * w * cin),
        f32_bytes(oh * ow * cout),
        f32_bytes(weights),
    )
    .locality(0.55)
    .working_set(f32_bytes(h * w * mid) + f32_bytes(weights))
}

/// A transformer multi-head self-attention sub-layer over `seq` tokens of
/// width `d` (QKV projections + scaled dot-product + output projection).
pub(crate) fn attention(name: &str, seq: u64, d: u64) -> Layer {
    let proj = 4.0 * 2.0 * (seq * d * d) as f64; // Q,K,V,out projections
    let scores = 2.0 * 2.0 * (seq * seq * d) as f64; // QKᵀ and AV
    let weights = 4 * d * d + 4 * d;
    // The paper singles out the 768×768 attention MatMuls as exceeding
    // mobile L2 caches; the score matrix adds seq² residency.
    let ws = f32_bytes(d * d) + f32_bytes(seq * seq) + f32_bytes(3 * seq * d);
    Layer::new(
        name,
        OpKind::Attention,
        proj + scores,
        f32_bytes(seq * d),
        f32_bytes(seq * d),
        f32_bytes(weights),
    )
    .locality(0.6)
    .working_set(ws)
}

/// A transformer feed-forward MatMul `seq × din → seq × dout`.
pub(crate) fn ffn_matmul(name: &str, seq: u64, din: u64, dout: u64) -> Layer {
    Layer::new(
        name,
        OpKind::MatMul,
        2.0 * (seq * din * dout) as f64,
        f32_bytes(seq * din),
        f32_bytes(seq * dout),
        f32_bytes(din * dout + dout),
    )
    .locality(0.65)
    .working_set(f32_bytes(din * dout))
}

/// A layer-norm over `seq` tokens of width `d`.
pub(crate) fn layer_norm(name: &str, seq: u64, d: u64) -> Layer {
    Layer::new(
        name,
        OpKind::LayerNorm,
        8.0 * (seq * d) as f64,
        f32_bytes(seq * d),
        f32_bytes(seq * d),
        f32_bytes(2 * d),
    )
    .locality(0.9)
}

/// A token + position embedding lookup (BERT input). A gather touches
/// only the looked-up rows (`2·seq·d` floats for token + position), not
/// the whole table, but the random access pattern has poor locality and
/// a working set far beyond any mobile L2. NPU-unsupported.
pub(crate) fn embedding(name: &str, vocab: u64, seq: u64, d: u64) -> Layer {
    Layer::new(
        name,
        OpKind::Embedding,
        (seq * d) as f64,
        f32_bytes(seq),
        f32_bytes(seq * d),
        f32_bytes(vocab * d),
    )
    .locality(0.3)
    .working_set(f32_bytes(vocab * d / 8))
    // The gather touches only the looked-up rows (token + position), not
    // the whole table.
    .touched_bytes(f32_bytes(2 * seq * d + seq * d) + f32_bytes(seq))
}

/// A Mish activation over `h × w × c` (YOLOv4 backbone), NPU-unsupported.
pub(crate) fn mish(name: &str, h: u64, w: u64, c: u64) -> Layer {
    Layer::new(
        name,
        OpKind::Mish,
        6.0 * (h * w * c) as f64,
        f32_bytes(h * w * c),
        f32_bytes(h * w * c),
        0,
    )
    .locality(0.95)
}

/// Nearest-neighbour 2× upsampling (YOLO neck), NPU-unsupported.
pub(crate) fn upsample(name: &str, h: u64, w: u64, c: u64) -> Layer {
    Layer::new(
        name,
        OpKind::Upsample,
        (4 * h * w * c) as f64,
        f32_bytes(h * w * c),
        f32_bytes(4 * h * w * c),
        0,
    )
    .locality(0.8)
}

/// A softmax over `n` logits.
pub(crate) fn softmax(name: &str, n: u64) -> Layer {
    Layer::new(
        name,
        OpKind::Softmax,
        5.0 * n as f64,
        f32_bytes(n),
        f32_bytes(n),
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_match_textbook_formula() {
        // 3x3 conv, 224x224x3 -> 224x224x64: 2*9*3*64*224*224.
        let l = conv("c", 224, 224, 3, 64, 3, 1);
        assert_eq!(l.flops, 2.0 * 9.0 * 3.0 * 64.0 * 224.0 * 224.0);
        assert_eq!(l.output_bytes, f32_bytes(224 * 224 * 64));
    }

    #[test]
    fn stride_shrinks_output() {
        let l = conv("c", 224, 224, 3, 64, 7, 2);
        assert_eq!(l.output_bytes, f32_bytes(112 * 112 * 64));
    }

    #[test]
    fn fire_module_has_poor_locality() {
        let f = fire("fire2", 56, 56, 96, 16, 64);
        assert!(f.locality < 0.5);
        assert!(f.working_set_bytes > f.input_bytes + f.output_bytes);
    }

    #[test]
    fn attention_flops_dominated_by_projections_at_short_seq() {
        let a = attention("attn", 128, 768);
        let proj = 8.0 * 128.0 * 768.0 * 768.0;
        assert!(a.flops > proj);
        assert!(a.flops < 1.5 * proj);
    }

    #[test]
    fn fc_working_set_is_weight_matrix() {
        let l = fc("fc6", 9216, 4096);
        assert_eq!(l.working_set_bytes, f32_bytes(9216 * 4096));
    }
}
