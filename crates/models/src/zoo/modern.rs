//! Modern CNNs: ResNet50, MobileNetV2 and the YOLOv4 detector.

use super::builders::*;
use crate::graph::ModelGraph;
use crate::layer::f32_bytes;

/// ResNet50 (He 2015): stem + 16 bottleneck blocks + FC, ~25.6 M params,
/// ~4.1 GFLOPs (MACs) at 224×224.
pub fn resnet50() -> ModelGraph {
    let mut layers = vec![
        conv("conv1", 224, 224, 3, 64, 7, 2),
        pool("pool1", 112, 112, 64, 3, 2),
    ];
    // (blocks, h, w, cin_first, mid, cout, stride_first)
    let stages: [(usize, u64, u64, u64, u64, u64); 4] = [
        (3, 56, 56, 64, 64, 256),
        (4, 56, 56, 256, 128, 512),
        (6, 28, 28, 512, 256, 1024),
        (3, 14, 14, 1024, 512, 2048),
    ];
    for (s, &(blocks, h, w, cin, mid, cout)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let stride = if b == 0 && s > 0 { 2 } else { 1 };
            let (bh, bw) = if b == 0 {
                (h, w)
            } else {
                (h / if s > 0 { 2 } else { 1 }, w / if s > 0 { 2 } else { 1 })
            };
            let bcin = if b == 0 { cin } else { cout };
            layers.push(bottleneck(
                &format!("res{}_{b}", s + 2),
                bh,
                bw,
                bcin,
                mid,
                cout,
                stride,
            ));
        }
    }
    layers.push(global_pool("pool5", 7, 7, 2048));
    layers.push(fc("fc", 2048, 1000));
    layers.push(softmax("prob", 1000));
    ModelGraph::new("ResNet50", f32_bytes(224 * 224 * 3), layers)
}

/// MobileNetV2 (Sandler 2018): stem + 17 inverted-residual blocks,
/// ~3.5 M params, ~0.3 GFLOPs (MACs) at 224×224. The canonical
/// lightweight model the paper batches (Appendix D).
pub fn mobilenetv2() -> ModelGraph {
    let mut layers = vec![conv("conv1", 224, 224, 3, 32, 3, 2)];
    // (repeat, cin, cout, expand, stride_first, h, w) per published config.
    let cfg: [(usize, u64, u64, u64, u64, u64, u64); 7] = [
        (1, 32, 16, 1, 1, 112, 112),
        (2, 16, 24, 6, 2, 112, 112),
        (3, 24, 32, 6, 2, 56, 56),
        (4, 32, 64, 6, 2, 28, 28),
        (3, 64, 96, 6, 1, 14, 14),
        (3, 96, 160, 6, 2, 14, 14),
        (1, 160, 320, 6, 1, 7, 7),
    ];
    let mut idx = 0;
    for &(repeat, cin, cout, expand, stride, h, w) in &cfg {
        for r in 0..repeat {
            let (bh, bw) = if r == 0 {
                (h, w)
            } else {
                (h / stride.max(1), w / stride.max(1))
            };
            let bcin = if r == 0 { cin } else { cout };
            let bstride = if r == 0 { stride } else { 1 };
            layers.push(inverted_residual(
                &format!("ir{idx}"),
                bh,
                bw,
                bcin,
                cout,
                expand,
                bstride,
            ));
            idx += 1;
        }
    }
    layers.push(conv("conv_last", 7, 7, 320, 1280, 1, 1));
    layers.push(global_pool("pool", 7, 7, 1280));
    layers.push(fc("fc", 1280, 1000));
    layers.push(softmax("prob", 1000));
    ModelGraph::new("MobileNetV2", f32_bytes(224 * 224 * 3), layers)
}

/// ResNet50 at *layer* granularity: every bottleneck block expanded into
/// its explicit 1×1 / 3×3 / 1×1 convolutions plus the residual add
/// (53 weighted layers + stem/pool/head ≈ 58 slices).
///
/// The paper's Definition 1 deliberately chooses coarse-grained slicing
/// ("it is computationally intensive to provide a layer-wise granularity
/// for slicing large models"); this variant exists to quantify that
/// trade-off — see the `ext_granularity` experiment.
pub fn resnet50_unfused() -> ModelGraph {
    let mut layers = vec![
        conv("conv1", 224, 224, 3, 64, 7, 2),
        pool("pool1", 112, 112, 64, 3, 2),
    ];
    let stages: [(usize, u64, u64, u64, u64); 4] = [
        (3, 56, 64, 64, 256),
        (4, 28, 256, 128, 512),
        (6, 14, 512, 256, 1024),
        (3, 7, 1024, 512, 2048),
    ];
    for (s, &(blocks, hw, cin_first, mid, cout)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let cin = if b == 0 { cin_first } else { cout };
            let prefix = format!("res{}_{b}", s + 2);
            // The stride-2 downsampling happens in the first block's 1x1
            // of stages 3..5 (stage 2 keeps the post-pool resolution).
            if b == 0 && s > 0 {
                layers.push(conv(&format!("{prefix}_a"), 2 * hw, 2 * hw, cin, mid, 1, 2));
            } else {
                layers.push(conv(&format!("{prefix}_a"), hw, hw, cin, mid, 1, 1));
            }
            layers.push(conv(&format!("{prefix}_b"), hw, hw, mid, mid, 3, 1));
            layers.push(conv(&format!("{prefix}_c"), hw, hw, mid, cout, 1, 1));
            layers.push(
                crate::layer::Layer::new(
                    format!("{prefix}_add"),
                    crate::layer::OpKind::Eltwise,
                    2.0 * (hw * hw * cout) as f64,
                    f32_bytes(hw * hw * cout),
                    f32_bytes(hw * hw * cout),
                    0,
                )
                .locality(0.9),
            );
        }
    }
    layers.push(global_pool("pool5", 7, 7, 2048));
    layers.push(fc("fc", 2048, 1000));
    layers.push(softmax("prob", 1000));
    ModelGraph::new("ResNet50-unfused", f32_bytes(224 * 224 * 3), layers)
}

/// YOLOv4 (Bochkovskiy 2020): CSPDarknet53 backbone with Mish
/// activations, SPP + PANet neck with upsampling, three detection heads.
/// ~64 M params, tens of GFLOPs at 416×416. The Mish and upsample
/// operators are NPU-unsupported, forcing operator fallback (Fig. 1).
pub fn yolov4() -> ModelGraph {
    let mut layers = vec![
        conv("conv0", 416, 416, 3, 32, 3, 1),
        mish("mish0", 416, 416, 32),
    ];
    // CSP stages: (blocks, h, w, cin, cout)
    let stages: [(usize, u64, u64, u64, u64); 5] = [
        (1, 416, 416, 32, 64),
        (2, 208, 208, 64, 128),
        (8, 104, 104, 128, 256),
        (8, 52, 52, 256, 512),
        (4, 26, 26, 512, 1024),
    ];
    for (s, &(blocks, h, w, cin, cout)) in stages.iter().enumerate() {
        layers.push(conv(&format!("down{s}"), h, w, cin, cout, 3, 2));
        layers.push(mish(&format!("mish_d{s}"), h / 2, w / 2, cout));
        for b in 0..blocks {
            // Darknet residual unit: 1x1 reduce to half + 3x3 back to full.
            let half = cout / 2;
            let f = 2.0 * ((cout * half + 9 * half * cout) * (h / 2) * (w / 2)) as f64;
            let weights = cout * half + 9 * half * cout;
            layers.push(
                crate::layer::Layer::new(
                    format!("csp{s}_{b}"),
                    crate::layer::OpKind::Eltwise,
                    f,
                    f32_bytes((h / 2) * (w / 2) * cout),
                    f32_bytes((h / 2) * (w / 2) * cout),
                    f32_bytes(weights),
                )
                .locality(0.7),
            );
        }
    }
    // SPP block over 13x13x1024.
    layers.push(pool("spp", 13, 13, 1024, 13, 1));
    // PANet neck with two upsampling paths (NPU-unsupported) and the
    // three detection heads interleaved in topological order: each head
    // consumes its own neck level's feature map.
    layers.push(conv("neck0", 13, 13, 1024, 512, 1, 1));
    layers.push(conv("head_l", 13, 13, 512, 255, 1, 1));
    layers.push(upsample("up1", 13, 13, 256));
    layers.push(conv("neck1", 26, 26, 768, 256, 3, 1));
    layers.push(conv("head_m", 26, 26, 256, 255, 1, 1));
    layers.push(upsample("up2", 26, 26, 128));
    layers.push(conv("neck2", 52, 52, 384, 128, 3, 1));
    layers.push(conv("head_s", 52, 52, 128, 255, 1, 1));
    ModelGraph::new("YOLOv4", f32_bytes(416 * 416 * 3), layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_matches_published_scale() {
        let g = resnet50();
        let p = g.weight_bytes() / 4;
        assert!((20_000_000..32_000_000).contains(&p), "got {p}");
        let gf = g.total_flops() / 1e9;
        assert!((6.0..11.0).contains(&gf), "got {gf} GFLOPs (MACs×2)");
    }

    #[test]
    fn mobilenetv2_is_light() {
        let g = mobilenetv2();
        let p = g.weight_bytes() / 4;
        assert!(p < 6_000_000, "got {p}");
        let gf = g.total_flops() / 1e9;
        assert!(gf < 1.5, "got {gf} GFLOPs");
    }

    #[test]
    fn yolov4_is_heavy_and_not_npu_supported() {
        let g = yolov4();
        assert!(!g.fully_npu_supported(), "Mish/upsample break NPU support");
        let gf = g.total_flops() / 1e9;
        assert!(gf > 20.0, "got {gf} GFLOPs");
        let p = g.weight_bytes() / 4;
        assert!((40_000_000..90_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn unfused_resnet_matches_fused_aggregates() {
        let fused = resnet50();
        let unfused = resnet50_unfused();
        assert!(unfused.len() > 2 * fused.len(), "finer granularity");
        // Same architecture: FLOPs and parameters agree within the
        // fused blocks' projection-conv approximation (~15%).
        let flops_ratio = unfused.total_flops() / fused.total_flops();
        assert!((0.8..1.2).contains(&flops_ratio), "got {flops_ratio}");
        let param_ratio = unfused.weight_bytes() as f64 / fused.weight_bytes() as f64;
        assert!((0.8..1.2).contains(&param_ratio), "got {param_ratio}");
        assert!(unfused.fully_npu_supported());
        assert!(
            unfused.validate(3.0).is_empty(),
            "{:?}",
            unfused.validate(3.0)
        );
    }

    #[test]
    fn resnet_and_mobilenet_are_npu_supported() {
        assert!(resnet50().fully_npu_supported());
        assert!(mobilenetv2().fully_npu_supported());
    }

    #[test]
    fn yolov4_has_supported_prefix_before_first_mish() {
        let g = yolov4();
        use crate::graph::LayerRange;
        assert!(g.npu_supported_range(LayerRange::new(0, 0)));
        assert!(!g.npu_supported_range(LayerRange::new(0, 1)));
    }
}
