//! The model zoo: the ten DNNs of the paper's evaluation
//! ("a combination of 10 representative DNNs: AlexNet, VGG16, GoogLeNet,
//! Inceptionv4, ResNet50, YOLOv4, MobileNetV2, SqueezeNet, BERT and ViT").

pub(crate) mod builders;
pub(crate) mod classic;
pub(crate) mod modern;
pub(crate) mod transformer;

use serde::{Deserialize, Serialize};

use crate::graph::ModelGraph;

pub use modern::resnet50_unfused;
pub use transformer::{bert_with_seq, vit_at, BERT_SEQ, VIT_TOKENS};

/// Identifier of one of the ten evaluation networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// AlexNet — classic 8-layer CNN with giant FC layers.
    AlexNet,
    /// VGG16 — 138 M-parameter CNN, heavy FC tail.
    Vgg16,
    /// GoogLeNet — inception modules, small but contention-heavy.
    GoogLeNet,
    /// InceptionV4 — deep inception network.
    InceptionV4,
    /// ResNet50 — residual bottleneck CNN.
    ResNet50,
    /// YOLOv4 — object detector with NPU-unsupported operators.
    YoloV4,
    /// MobileNetV2 — lightweight depthwise-separable CNN.
    MobileNetV2,
    /// SqueezeNet — 4.8 MB fire-module CNN, the Observation-3 outlier.
    SqueezeNet,
    /// BERT-base — 12-block transformer encoder, NPU-unsupported embedding.
    Bert,
    /// ViT-B/16 — vision transformer.
    Vit,
}

impl ModelId {
    /// All ten models, in the paper's listing order.
    pub const ALL: [ModelId; 10] = [
        ModelId::AlexNet,
        ModelId::Vgg16,
        ModelId::GoogLeNet,
        ModelId::InceptionV4,
        ModelId::ResNet50,
        ModelId::YoloV4,
        ModelId::MobileNetV2,
        ModelId::SqueezeNet,
        ModelId::Bert,
        ModelId::Vit,
    ];

    /// The model's display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::AlexNet => "AlexNet",
            ModelId::Vgg16 => "VGG16",
            ModelId::GoogLeNet => "GoogLeNet",
            ModelId::InceptionV4 => "InceptionV4",
            ModelId::ResNet50 => "ResNet50",
            ModelId::YoloV4 => "YOLOv4",
            ModelId::MobileNetV2 => "MobileNetV2",
            ModelId::SqueezeNet => "SqueezeNet",
            ModelId::Bert => "BERT",
            ModelId::Vit => "ViT",
        }
    }

    /// Builds the model's layer graph.
    pub fn graph(self) -> ModelGraph {
        match self {
            ModelId::AlexNet => classic::alexnet(),
            ModelId::Vgg16 => classic::vgg16(),
            ModelId::GoogLeNet => classic::googlenet(),
            ModelId::InceptionV4 => classic::inceptionv4(),
            ModelId::ResNet50 => modern::resnet50(),
            ModelId::YoloV4 => modern::yolov4(),
            ModelId::MobileNetV2 => modern::mobilenetv2(),
            ModelId::SqueezeNet => classic::squeezenet(),
            ModelId::Bert => transformer::bert(),
            ModelId::Vit => transformer::vit(),
        }
    }

    /// Whether the paper's evaluation classifies this model as
    /// *lightweight* (under 100 MB in Fig. 9's tiering; candidates for
    /// Appendix-D batching).
    pub fn is_lightweight(self) -> bool {
        matches!(
            self,
            ModelId::SqueezeNet | ModelId::MobileNetV2 | ModelId::GoogLeNet
        )
    }

    /// The paper's Fig. 9 memory tier: large (>300 MB), medium
    /// (100–300 MB) or light (<100 MB).
    pub fn memory_tier(self) -> MemoryTier {
        match self {
            ModelId::Bert | ModelId::Vit | ModelId::YoloV4 | ModelId::Vgg16 => MemoryTier::Large,
            ModelId::InceptionV4 | ModelId::ResNet50 | ModelId::AlexNet => MemoryTier::Medium,
            ModelId::SqueezeNet | ModelId::MobileNetV2 | ModelId::GoogLeNet => MemoryTier::Light,
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fig. 9 memory-footprint tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryTier {
    /// Models over ~300 MB runtime footprint (BERT, ViT, YOLOv4, VGG16).
    Large,
    /// Models between ~100 and ~300 MB (InceptionV4, ResNet50, AlexNet).
    Medium,
    /// Models under ~100 MB (SqueezeNet, MobileNetV2, GoogLeNet).
    Light,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_models_build_nonempty_graphs() {
        for id in ModelId::ALL {
            let g = id.graph();
            assert!(!g.is_empty(), "{id}");
            assert!(g.total_flops() > 0.0, "{id}");
            assert_eq!(g.name(), id.name());
        }
    }

    #[test]
    fn zoo_graphs_pass_structural_validation() {
        // Fused blocks and valid-vs-same padding allow small tensor-chain
        // discrepancies; anything beyond 3x indicates a construction bug.
        for id in ModelId::ALL {
            let problems = id.graph().validate(3.0);
            assert!(problems.is_empty(), "{id}: {problems:?}");
        }
    }

    #[test]
    fn graphs_are_deterministic() {
        for id in ModelId::ALL {
            assert_eq!(id.graph(), id.graph(), "{id}");
        }
    }

    #[test]
    fn memory_tiers_follow_model_size_ordering() {
        use MemoryTier::*;
        for id in ModelId::ALL {
            let mb = id.graph().footprint_bytes() as f64 / (1024.0 * 1024.0);
            match id.memory_tier() {
                Large => assert!(mb > 100.0, "{id}: {mb} MB should be large-ish"),
                Medium => assert!((20.0..400.0).contains(&mb), "{id}: {mb} MB"),
                Light => assert!(mb < 100.0, "{id}: {mb} MB should be light"),
            }
        }
    }

    #[test]
    fn lightweight_models_are_the_light_tier() {
        for id in ModelId::ALL {
            assert_eq!(
                id.is_lightweight(),
                id.memory_tier() == MemoryTier::Light,
                "{id}"
            );
        }
    }

    #[test]
    fn exactly_two_models_lack_npu_support() {
        let unsupported: Vec<ModelId> = ModelId::ALL
            .into_iter()
            .filter(|id| !id.graph().fully_npu_supported())
            .collect();
        assert_eq!(
            unsupported,
            vec![ModelId::YoloV4, ModelId::Bert],
            "Fig. 1 reports NPU errors exactly for YOLOv4 and BERT"
        );
    }
}
