//! Transformer architectures: BERT-base and ViT-B/16.

use super::builders::*;
use crate::graph::ModelGraph;
use crate::layer::f32_bytes;

/// Sequence length used for BERT inference, matching typical mobile NLP
/// workloads.
pub const BERT_SEQ: u64 = 128;

/// Token count for ViT-B/16 at 224×224 (14×14 patches + CLS).
pub const VIT_TOKENS: u64 = 197;

/// Appends one transformer encoder block (attention + LN + FFN + LN) for
/// `seq` tokens of width `d` with FFN width `d_ffn`.
fn encoder_block(layers: &mut Vec<crate::layer::Layer>, idx: usize, seq: u64, d: u64, d_ffn: u64) {
    layers.push(attention(&format!("enc{idx}_attn"), seq, d));
    layers.push(layer_norm(&format!("enc{idx}_ln1"), seq, d));
    layers.push(ffn_matmul(&format!("enc{idx}_ffn1"), seq, d, d_ffn));
    layers.push(ffn_matmul(&format!("enc{idx}_ffn2"), seq, d_ffn, d));
    layers.push(layer_norm(&format!("enc{idx}_ln2"), seq, d));
}

/// BERT-base (Devlin 2018): embedding + 12 encoder blocks (768-dim
/// attention, 3072-dim FFN) + pooler, ~110 M params. The embedding
/// gather is NPU-unsupported, which is why the paper's Fig. 1 reports an
/// NPU error for BERT.
pub fn bert() -> ModelGraph {
    bert_with_seq(BERT_SEQ)
}

/// BERT-base at an arbitrary sequence length (parameters unchanged;
/// activations and FLOPs scale, the attention score matrix quadratically).
///
/// # Panics
///
/// Panics if `seq == 0`.
pub fn bert_with_seq(seq: u64) -> ModelGraph {
    assert!(seq > 0, "sequence length must be positive");
    let (d, d_ffn) = (768u64, 3072u64);
    let mut layers = vec![embedding("embeddings", 30_522, seq, d)];
    for i in 0..12 {
        encoder_block(&mut layers, i, seq, d, d_ffn);
    }
    // The pooler receives the full hidden state, extracts the CLS token
    // and applies a d×d dense layer.
    layers.push(
        crate::layer::Layer::new(
            "pooler",
            crate::layer::OpKind::Fc,
            2.0 * (d * d) as f64,
            f32_bytes(seq * d),
            f32_bytes(d),
            f32_bytes(d * d + d),
        )
        .locality(0.55)
        .working_set(f32_bytes(d * d)),
    );
    let name = if seq == BERT_SEQ {
        "BERT".to_owned()
    } else {
        format!("BERT-seq{seq}")
    };
    ModelGraph::new(name, f32_bytes(seq), layers)
}

/// ViT-B/16 (Dosovitskiy 2020): conv patch embedding, 12 encoder blocks
/// and a classification head; ~86 M params, ~17.6 GFLOPs. Unlike BERT,
/// the patch embedding is an ordinary convolution, so ViT runs fully on
/// the NPU.
pub fn vit() -> ModelGraph {
    vit_at(224)
}

/// ViT-B/16 at an arbitrary square input resolution (must be a multiple
/// of the 16-pixel patch size); token count grows quadratically with the
/// side length.
///
/// # Panics
///
/// Panics if `resolution` is zero or not a multiple of 16.
pub fn vit_at(resolution: u64) -> ModelGraph {
    assert!(
        resolution > 0 && resolution.is_multiple_of(16),
        "resolution must be a positive multiple of the 16-px patch size"
    );
    let patches = resolution / 16;
    let seq = patches * patches + 1; // + CLS token
    let (d, d_ffn) = (768u64, 3072u64);
    let mut layers = vec![conv("patch_embed", resolution, resolution, 3, 768, 16, 16)];
    for i in 0..12 {
        encoder_block(&mut layers, i, seq, d, d_ffn);
    }
    layers.push(layer_norm("final_ln", seq, d));
    // The classification head reads the full token sequence and projects
    // the CLS token to the class logits.
    layers.push(
        crate::layer::Layer::new(
            "head",
            crate::layer::OpKind::Fc,
            2.0 * (d * 1000) as f64,
            f32_bytes(seq * d),
            f32_bytes(1000),
            f32_bytes(d * 1000 + 1000),
        )
        .locality(0.55)
        .working_set(f32_bytes(d * 1000)),
    );
    layers.push(softmax("prob", 1000));
    let name = if resolution == 224 {
        "ViT".to_owned()
    } else {
        format!("ViT-{resolution}")
    };
    ModelGraph::new(name, f32_bytes(resolution * resolution * 3), layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_has_110m_params() {
        let p = bert().weight_bytes() / 4;
        assert!((95_000_000..125_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn vit_has_86m_params() {
        let p = vit().weight_bytes() / 4;
        assert!((75_000_000..95_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn bert_is_not_npu_supported_but_vit_is() {
        assert!(!bert().fully_npu_supported(), "embedding breaks NPU");
        assert!(vit().fully_npu_supported());
    }

    #[test]
    fn bert_blocks_have_uniform_boundaries() {
        // "the uniform intermediate dimensions of Transformers make model
        // partition more straightforward" — all encoder-block outputs have
        // identical size.
        let g = bert();
        let boundary_sizes: Vec<u64> = (1..g.len() - 1)
            .filter(|&i| g.layers()[i].name.ends_with("ln2"))
            .map(|i| g.boundary_bytes(i))
            .collect();
        assert!(boundary_sizes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn vit_is_much_larger_than_squeezenet() {
        // Observation 3 quotes ViT as ~70× SqueezeNet's size.
        let ratio =
            vit().weight_bytes() as f64 / crate::zoo::classic::squeezenet().weight_bytes() as f64;
        assert!(ratio > 40.0, "got ratio {ratio}");
    }

    #[test]
    fn bert_seq_scaling_is_superlinear_in_attention() {
        let short = bert_with_seq(128);
        let long = bert_with_seq(512);
        assert_eq!(short.weight_bytes(), long.weight_bytes(), "params fixed");
        let ratio = long.total_flops() / short.total_flops();
        assert!(
            ratio > 4.0,
            "4x tokens with quadratic attention must exceed 4x FLOPs, got {ratio:.2}"
        );
        assert_eq!(long.name(), "BERT-seq512");
        assert_eq!(bert_with_seq(128).name(), "BERT");
    }

    #[test]
    fn vit_resolution_scaling_grows_tokens_quadratically() {
        let small = vit_at(224);
        let big = vit_at(448);
        assert_eq!(small.weight_bytes(), big.weight_bytes());
        assert!(big.total_flops() > 3.9 * small.total_flops());
        assert_eq!(big.name(), "ViT-448");
    }

    #[test]
    #[should_panic(expected = "patch size")]
    fn vit_rejects_unaligned_resolution() {
        vit_at(225);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bert_rejects_zero_seq() {
        bert_with_seq(0);
    }

    #[test]
    fn transformer_flops_are_in_published_range() {
        let vit_gf = vit().total_flops() / 1e9;
        assert!((12.0..40.0).contains(&vit_gf), "got {vit_gf}");
        let bert_gf = bert().total_flops() / 1e9;
        assert!((15.0..35.0).contains(&bert_gf), "got {bert_gf}");
    }
}
