//! Roofline cost model mapping layers onto heterogeneous processors.
//!
//! Per-layer latency on a processor is
//!
//! ```text
//! latency = max(flops / (peak · eff(op, kind)),  traffic / bandwidth) + overhead
//! traffic = bytes_touched · spill(working_set, L2) / locality
//! ```
//!
//! `eff` captures how well each operator class maps onto each processor
//! (depthwise convolutions run poorly on mobile GPUs, attention is
//! NEON-unfriendly on CPUs, the NPU excels at dense conv/MatMul).
//! `spill` multiplies DRAM traffic when a layer's working set exceeds the
//! processor's L2 — the mechanism behind Observation 2's memory-bound FC
//! and attention layers. NPU-unsupported operators yield `None`, which
//! forces the planner's operator fallback exactly like MNN falling back
//! to the CPU/GPU.
//!
//! [`CostTable`] precomputes prefix sums so the planner's dynamic program
//! can query any slice cost `T_k(i, j)` in O(1), as required for the
//! paper's O(nK) complexity claim.

use serde::{Deserialize, Serialize};

use h2p_simulator::processor::{ProcessorId, ProcessorKind, ProcessorSpec};
use h2p_simulator::soc::SocSpec;

use crate::graph::{LayerRange, ModelGraph};
use crate::layer::{Layer, OpKind};
use crate::profile::ProfileTable;

/// Operator efficiency on a processor kind, in `(0, 1]` of peak FLOPs;
/// `None` means the operator is unsupported there (NPU fallback cases).
fn efficiency(op: OpKind, kind: ProcessorKind) -> Option<f64> {
    use OpKind::*;
    use ProcessorKind::*;
    let eff = match (op, kind) {
        (Conv, Npu) => 0.90,
        (Conv, CpuBig) => 0.55,
        (Conv, Gpu) => 0.60,
        (Conv, CpuSmall) => 0.45,
        (DwConv, Npu) => 0.55,
        (DwConv, CpuBig) => 0.45,
        (DwConv, Gpu) => 0.25, // depthwise maps poorly onto OpenCL GPUs
        (DwConv, CpuSmall) => 0.40,
        (Fc | MatMul, Npu) => 0.85,
        (Fc | MatMul, CpuBig) => 0.50,
        (Fc | MatMul, Gpu) => 0.65,
        (Fc | MatMul, CpuSmall) => 0.40,
        (Attention, Npu) => 0.70,
        (Attention, CpuBig) => 0.35,
        (Attention, Gpu) => 0.50,
        (Attention, CpuSmall) => 0.30,
        (Embedding, Npu) => return None,
        (Mish, Npu) => return None,
        (Upsample, Npu) => return None,
        (Embedding, _) => 0.20,
        // Element-wise / shuffle operators are bandwidth-bound everywhere.
        (LayerNorm | Pool | Concat | Eltwise | Softmax | Mish | Upsample, _) => 0.30,
    };
    Some(eff)
}

/// DRAM traffic multiplier once a working set exceeds the L2: data is
/// re-streamed from memory, up to a saturation factor.
fn spill_factor(working_set_bytes: u64, l2_kib: u32) -> f64 {
    let l2 = (l2_kib as f64) * 1024.0;
    let ratio = working_set_bytes as f64 / l2;
    if ratio <= 1.0 {
        1.0
    } else {
        (1.0 + 0.8 * ratio.ln()).min(4.0)
    }
}

/// Cost of one layer on one processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Latency in milliseconds (including kernel dispatch overhead).
    pub latency_ms: f64,
    /// DRAM traffic in bytes after spill/locality adjustment.
    pub traffic_bytes: f64,
    /// Whether the layer is memory-bound on this processor.
    pub memory_bound: bool,
}

impl LayerCost {
    /// Average bandwidth demand of the layer in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.latency_ms <= 0.0 {
            0.0
        } else {
            // bytes/ms = KB/s·1e3; bytes / (ms·1e6) = GB/s.
            self.traffic_bytes / (self.latency_ms * 1e6)
        }
    }
}

/// Numerical precision of inference execution. Models ship as FP32; the
/// paper quotes FP16 CPU figures and the NPU's native low-precision
/// units, so the cost model can evaluate reduced-precision deployment:
/// tensor traffic shrinks with the element size and throughput grows on
/// processors with hardware support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point (the baseline the zoo is specified in).
    #[default]
    Fp32,
    /// 16-bit floating point (NEON FP16 / GPU half / NPU half).
    Fp16,
    /// 8-bit integer (NPU-native; CPUs via dot-product extensions).
    Int8,
}

impl Precision {
    /// Bytes per element relative to FP32 (1.0, 0.5, 0.25).
    pub fn element_scale(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 0.5,
            Precision::Int8 => 0.25,
        }
    }

    /// Compute-throughput multiplier on a processor kind: how much faster
    /// its MAC pipelines run at this precision.
    pub fn throughput_gain(self, kind: ProcessorKind) -> f64 {
        match (self, kind) {
            (Precision::Fp32, _) => 1.0,
            // NEON FP16 / dot-product extensions on recent big cores.
            (Precision::Fp16, ProcessorKind::CpuBig) => 1.8,
            (Precision::Int8, ProcessorKind::CpuBig) => 2.5,
            // Little cores gain less (narrower SIMD).
            (Precision::Fp16, ProcessorKind::CpuSmall) => 1.5,
            (Precision::Int8, ProcessorKind::CpuSmall) => 2.0,
            // Mobile GPUs double FP16 rate; INT8 paths are patchy.
            (Precision::Fp16, ProcessorKind::Gpu) => 2.0,
            (Precision::Int8, ProcessorKind::Gpu) => 2.0,
            // The NPU is built for low precision.
            (Precision::Fp16, ProcessorKind::Npu) => 2.0,
            (Precision::Int8, ProcessorKind::Npu) => 4.0,
        }
    }
}

/// Analytical cost model bound to one SoC.
#[derive(Debug, Clone)]
pub struct CostModel {
    soc: SocSpec,
    precision: Precision,
    profile: Option<ProfileTable>,
}

impl CostModel {
    /// Creates a cost model for the given SoC at FP32.
    pub fn new(soc: &SocSpec) -> Self {
        Self::with_precision(soc, Precision::Fp32)
    }

    /// Creates a cost model evaluating execution at the given precision.
    pub fn with_precision(soc: &SocSpec, precision: Precision) -> Self {
        CostModel {
            soc: soc.clone(),
            precision,
            profile: None,
        }
    }

    /// Attaches a table of measured per-layer latencies: wherever a
    /// measurement exists for `(model, layer, processor)` it replaces the
    /// analytical roofline estimate in every latency query. Traffic and
    /// PMU estimation remain analytical (a profiler measures time, not
    /// bus bytes).
    pub fn set_profile(&mut self, profile: ProfileTable) {
        self.profile = Some(profile);
    }

    /// The attached measurement table, if any.
    pub fn profile(&self) -> Option<&ProfileTable> {
        self.profile.as_ref()
    }

    /// Latency of layer `idx` of `graph` on `proc`: the measured profile
    /// entry when one exists, otherwise the analytical estimate. `None`
    /// if the operator is unsupported on `proc` and unmeasured.
    pub fn layer_latency_for(
        &self,
        graph: &ModelGraph,
        idx: usize,
        proc: ProcessorId,
    ) -> Option<f64> {
        let layer = &graph.layers()[idx];
        if let Some(p) = &self.profile {
            if let Some(ms) = p.lookup(graph.name(), &layer.name, proc) {
                return Some(ms);
            }
        }
        self.layer_latency_ms(layer, proc)
    }

    /// The SoC the model is bound to.
    pub fn soc(&self) -> &SocSpec {
        &self.soc
    }

    /// The precision this model evaluates at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Multiplier applied to FP32-specified tensor/weight sizes (memory
    /// footprints, copies) at this model's precision.
    pub fn footprint_scale(&self) -> f64 {
        self.precision.element_scale()
    }

    fn proc(&self, id: ProcessorId) -> &ProcessorSpec {
        self.soc.processor(id)
    }

    /// Cost of `layer` on processor `proc`, or `None` if the operator is
    /// unsupported there (NPU fallback case).
    pub fn layer_cost(&self, layer: &Layer, proc: ProcessorId) -> Option<LayerCost> {
        let spec = self.proc(proc);
        let eff = efficiency(layer.op, spec.kind)?;
        let gain = self.precision.throughput_gain(spec.kind);
        let compute_ms = layer.flops / (spec.peak_gflops * eff * gain * 1e6);
        let elem = self.precision.element_scale();
        // Smaller elements also shrink the working set, easing L2 spill.
        let ws = (layer.working_set_bytes as f64 * elem) as u64;
        let traffic =
            layer.bytes_touched() as f64 * elem * spill_factor(ws, spec.l2_kib) / layer.locality;
        let mem_ms = traffic / (spec.mem_bandwidth_gbps * 1e6);
        let memory_bound = mem_ms > compute_ms;
        Some(LayerCost {
            latency_ms: compute_ms.max(mem_ms) + spec.kernel_overhead_ms,
            traffic_bytes: traffic,
            memory_bound,
        })
    }

    /// Latency of `layer` on `proc` in ms, `None` if unsupported.
    pub fn layer_latency_ms(&self, layer: &Layer, proc: ProcessorId) -> Option<f64> {
        self.layer_cost(layer, proc).map(|c| c.latency_ms)
    }

    /// Solo execution latency of a contiguous slice on `proc`: the sum of
    /// its layers' latencies (the paper's `T_e`), `None` if any layer is
    /// unsupported on `proc`.
    pub fn slice_latency_ms(
        &self,
        graph: &ModelGraph,
        range: LayerRange,
        proc: ProcessorId,
    ) -> Option<f64> {
        let mut total = 0.0;
        for idx in range.first..=range.last {
            total += self.layer_latency_for(graph, idx, proc)?;
        }
        Some(total)
    }

    /// Whole-model solo latency on `proc`, `None` if any operator is
    /// unsupported (e.g. YOLOv4 or BERT on the NPU — the Fig. 1 errors).
    pub fn model_latency_ms(&self, graph: &ModelGraph, proc: ProcessorId) -> Option<f64> {
        self.slice_latency_ms(graph, LayerRange::new(0, graph.len() - 1), proc)
    }

    /// Aggregate DRAM traffic of a slice on `proc` in bytes.
    pub fn slice_traffic_bytes(
        &self,
        graph: &ModelGraph,
        range: LayerRange,
        proc: ProcessorId,
    ) -> Option<f64> {
        let mut total = 0.0;
        for layer in &graph.layers()[range.first..=range.last] {
            total += self.layer_cost(layer, proc)?.traffic_bytes;
        }
        Some(total)
    }

    /// Average bandwidth demand of a slice on `proc` in GB/s; used as the
    /// ground-truth contention signal and the governor input.
    pub fn slice_bandwidth_gbps(
        &self,
        graph: &ModelGraph,
        range: LayerRange,
        proc: ProcessorId,
    ) -> Option<f64> {
        let ms = self.slice_latency_ms(graph, range, proc)?;
        let bytes = self.slice_traffic_bytes(graph, range, proc)?;
        if ms <= 0.0 {
            return Some(0.0);
        }
        Some(bytes / (ms * 1e6))
    }

    /// Tensor copy time (`T_c`) for moving `bytes` of activation from one
    /// processor's address space to another's on the unified-memory SoC.
    /// Zero when `from == to`; otherwise a pair-dependent fixed latency
    /// plus a bandwidth term (the NPU's proprietary driver path is the
    /// most expensive).
    pub fn copy_ms(&self, bytes: u64, from: ProcessorId, to: ProcessorId) -> f64 {
        if from == to {
            return 0.0;
        }
        let fixed = |k: ProcessorKind| match k {
            ProcessorKind::CpuBig | ProcessorKind::CpuSmall => 0.05,
            ProcessorKind::Gpu => 0.25,
            ProcessorKind::Npu => 0.40,
        };
        let base = fixed(self.proc(from).kind) + fixed(self.proc(to).kind);
        // Effective copy bandwidth ~2 GB/s through map/unmap + memcpy;
        // reduced precision moves proportionally fewer bytes.
        base + bytes as f64 * self.precision.element_scale() / 2.0e6
    }

    /// Builds a prefix-sum [`CostTable`] for `graph` over the given
    /// ordered processor sequence, enabling O(1) slice-cost queries in the
    /// planner's DP.
    pub fn table(&self, graph: &ModelGraph, procs: &[ProcessorId]) -> CostTable {
        let n = graph.len();
        let mut prefix_ms = Vec::with_capacity(procs.len());
        let mut unsupported = Vec::with_capacity(procs.len());
        for &p in procs {
            let mut pm = Vec::with_capacity(n + 1);
            let mut un = Vec::with_capacity(n + 1);
            pm.push(0.0);
            un.push(0u32);
            let (mut pm_acc, mut un_acc) = (0.0f64, 0u32);
            for idx in 0..n {
                let (ms, bad) = match self.layer_latency_for(graph, idx, p) {
                    Some(ms) => (ms, 0),
                    None => (0.0, 1),
                };
                pm_acc += ms;
                un_acc += bad;
                pm.push(pm_acc);
                un.push(un_acc);
            }
            prefix_ms.push(pm);
            unsupported.push(un);
        }
        // Boundary copy bytes after each layer.
        let boundary_bytes: Vec<u64> = (0..n).map(|i| graph.boundary_bytes(i)).collect();
        CostTable {
            n,
            procs: procs.to_vec(),
            prefix_ms,
            unsupported,
            boundary_bytes,
        }
    }
}

/// Prefix-sum table of slice costs for one model over an ordered
/// processor sequence. `slot` indexes the processor sequence, not the
/// SoC's processor table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTable {
    n: usize,
    procs: Vec<ProcessorId>,
    /// `prefix_ms[slot][i]` = total latency of layers `0..i` on that slot.
    prefix_ms: Vec<Vec<f64>>,
    /// Running count of unsupported layers, same indexing.
    unsupported: Vec<Vec<u32>>,
    boundary_bytes: Vec<u64>,
}

impl CostTable {
    /// Number of layers of the underlying model.
    pub fn layer_count(&self) -> usize {
        self.n
    }

    /// The ordered processor sequence the table was built over.
    pub fn processors(&self) -> &[ProcessorId] {
        &self.procs
    }

    /// Solo latency `T_e(i, j)` of layers `[i, j]` on processor slot
    /// `slot`, in O(1). Returns `None` if the range contains an operator
    /// unsupported on that processor or the range is invalid.
    pub fn slice_ms(&self, slot: usize, i: usize, j: usize) -> Option<f64> {
        if i > j || j >= self.n || slot >= self.procs.len() {
            return None;
        }
        if self.unsupported[slot][j + 1] - self.unsupported[slot][i] > 0 {
            return None;
        }
        Some(self.prefix_ms[slot][j + 1] - self.prefix_ms[slot][i])
    }

    /// Activation bytes crossing the boundary after layer `i`.
    pub fn boundary_bytes(&self, i: usize) -> u64 {
        self.boundary_bytes[i]
    }

    /// The raw latency prefix sums of `slot` (`prefix_row(s)[i]` = total
    /// latency of layers `0..i`). Exposed so tight planning loops can
    /// evaluate slice costs without per-query bounds checks; the slice
    /// `[i, j]` costs `prefix_row(s)[j + 1] - prefix_row(s)[i]`, exactly
    /// as [`CostTable::slice_ms`] computes it.
    pub fn prefix_row(&self, slot: usize) -> &[f64] {
        &self.prefix_ms[slot]
    }

    /// The running unsupported-layer counts of `slot`, aligned with
    /// [`CostTable::prefix_row`]: slice `[i, j]` is feasible iff
    /// `unsupported_row(s)[j + 1] - unsupported_row(s)[i] == 0`.
    pub fn unsupported_row(&self, slot: usize) -> &[u32] {
        &self.unsupported[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelId;

    fn kirin() -> (SocSpec, CostModel) {
        let soc = SocSpec::kirin_990();
        let cm = CostModel::new(&soc);
        (soc, cm)
    }

    #[test]
    fn processor_power_ordering_holds_for_supported_models() {
        // Fig. 1 shape: NPU fastest, CPU_B on par with GPU, CPU_S slowest.
        let (soc, cm) = kirin();
        let npu = soc.processor_by_name("NPU").unwrap();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let small = soc.processor_by_name("CPU_S").unwrap();
        for id in [ModelId::ResNet50, ModelId::Vgg16, ModelId::InceptionV4] {
            let g = id.graph();
            let t_npu = cm.model_latency_ms(&g, npu).unwrap();
            let t_big = cm.model_latency_ms(&g, big).unwrap();
            let t_small = cm.model_latency_ms(&g, small).unwrap();
            assert!(t_npu < t_big / 3.0, "{id}: NPU must dominate");
            assert!(t_small > 2.0 * t_big, "{id}: small cores degrade heavily");
        }
    }

    #[test]
    fn npu_errors_for_yolov4_and_bert() {
        let (soc, cm) = kirin();
        let npu = soc.processor_by_name("NPU").unwrap();
        assert!(cm.model_latency_ms(&ModelId::YoloV4.graph(), npu).is_none());
        assert!(cm.model_latency_ms(&ModelId::Bert.graph(), npu).is_none());
        assert!(cm.model_latency_ms(&ModelId::Vit.graph(), npu).is_some());
    }

    #[test]
    fn fc_layers_are_memory_bound_on_cpu() {
        // Observation 2: large-MatMul layers are memory-bound.
        let (soc, cm) = kirin();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let g = ModelId::Vgg16.graph();
        let fc6 = g.layers().iter().find(|l| l.name == "fc6").unwrap();
        let cost = cm.layer_cost(fc6, big).unwrap();
        assert!(cost.memory_bound, "VGG fc6 must be memory-bound on CPU");
        let conv = g.layers().iter().find(|l| l.name == "conv3_2").unwrap();
        let conv_cost = cm.layer_cost(conv, big).unwrap();
        assert!(!conv_cost.memory_bound, "mid conv is compute-bound");
    }

    #[test]
    fn squeezenet_demands_disproportionate_bandwidth() {
        // Observation 3: SqueezeNet's bandwidth demand rivals much larger
        // models despite tiny FLOPs.
        let (soc, cm) = kirin();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let sq = ModelId::SqueezeNet.graph();
        let rn = ModelId::ResNet50.graph();
        let whole = |g: &ModelGraph| LayerRange::new(0, g.len() - 1);
        let bw_sq = cm.slice_bandwidth_gbps(&sq, whole(&sq), big).unwrap();
        let bw_rn = cm.slice_bandwidth_gbps(&rn, whole(&rn), big).unwrap();
        assert!(
            bw_sq > bw_rn,
            "SqueezeNet bandwidth {bw_sq} must exceed ResNet50 {bw_rn}"
        );
    }

    #[test]
    fn copy_cost_is_zero_on_same_processor_and_grows_with_bytes() {
        let (soc, cm) = kirin();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let gpu = soc.processor_by_name("GPU").unwrap();
        let npu = soc.processor_by_name("NPU").unwrap();
        assert_eq!(cm.copy_ms(1 << 20, big, big), 0.0);
        let small = cm.copy_ms(1 << 10, big, gpu);
        let large = cm.copy_ms(8 << 20, big, gpu);
        assert!(large > small);
        assert!(cm.copy_ms(1 << 20, big, npu) > cm.copy_ms(1 << 20, big, gpu));
    }

    #[test]
    fn cost_table_matches_direct_slice_computation() {
        let (soc, cm) = kirin();
        let g = ModelId::GoogLeNet.graph();
        let procs: Vec<ProcessorId> = soc.processors_by_power();
        let table = cm.table(&g, &procs);
        for (slot, &proc) in procs.iter().enumerate() {
            for i in 0..g.len() {
                for j in i..g.len() {
                    let direct = cm.slice_latency_ms(&g, LayerRange::new(i, j), proc);
                    let tabled = table.slice_ms(slot, i, j);
                    match (direct, tabled) {
                        (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                        (None, None) => {}
                        _ => panic!("support mismatch at slot={slot} i={i} j={j}"),
                    }
                }
            }
        }
    }

    #[test]
    fn cost_table_rejects_unsupported_npu_ranges() {
        let (soc, cm) = kirin();
        let g = ModelId::YoloV4.graph();
        let npu = soc.processor_by_name("NPU").unwrap();
        let table = cm.table(&g, &[npu]);
        // Layer 1 is the first Mish.
        assert!(table.slice_ms(0, 0, 0).is_some());
        assert!(table.slice_ms(0, 0, 1).is_none());
    }

    #[test]
    fn invalid_ranges_return_none() {
        let (soc, cm) = kirin();
        let g = ModelId::AlexNet.graph();
        let table = cm.table(&g, &soc.processors_by_power());
        assert!(table.slice_ms(0, 3, 2).is_none());
        assert!(table.slice_ms(0, 0, 999).is_none());
        assert!(table.slice_ms(99, 0, 1).is_none());
    }

    #[test]
    fn reduced_precision_speeds_up_and_shrinks_copies() {
        let soc = SocSpec::kirin_990();
        let fp32 = CostModel::new(&soc);
        let fp16 = CostModel::with_precision(&soc, Precision::Fp16);
        let int8 = CostModel::with_precision(&soc, Precision::Int8);
        let npu = soc.processor_by_name("NPU").unwrap();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let g = ModelId::ResNet50.graph();
        let t32 = fp32.model_latency_ms(&g, npu).unwrap();
        let t16 = fp16.model_latency_ms(&g, npu).unwrap();
        let t8 = int8.model_latency_ms(&g, npu).unwrap();
        assert!(t16 < t32, "FP16 must be faster: {t16} vs {t32}");
        assert!(t8 < t16, "INT8 must be fastest on the NPU: {t8} vs {t16}");
        // Copies move fewer bytes.
        let c32 = fp32.copy_ms(8 << 20, big, npu);
        let c16 = fp16.copy_ms(8 << 20, big, npu);
        assert!(c16 < c32);
        assert_eq!(fp16.footprint_scale(), 0.5);
        assert_eq!(int8.precision(), Precision::Int8);
    }

    #[test]
    fn precision_gains_never_exceed_hardware_ratios() {
        // Sanity: per-kind throughput gains are within [1, 4].
        for p in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            for k in ProcessorKind::ALL {
                let g = p.throughput_gain(k);
                assert!((1.0..=4.0).contains(&g), "{p:?} on {k:?}: {g}");
            }
        }
    }

    #[test]
    fn measured_profiles_override_analytical_estimates() {
        let soc = SocSpec::kirin_990();
        let mut cm = CostModel::new(&soc);
        let big = soc.processor_by_name("CPU_B").unwrap();
        let g = ModelId::SqueezeNet.graph();
        let analytical = cm.model_latency_ms(&g, big).unwrap();
        // "Measure" the first conv as 10x the analytical value.
        let first = cm.layer_latency_for(&g, 0, big).unwrap();
        let mut profile = crate::profile::ProfileTable::new();
        profile.record(g.name(), &g.layers()[0].name, big, first * 10.0);
        cm.set_profile(profile);
        let overridden = cm.model_latency_ms(&g, big).unwrap();
        assert!(
            (overridden - (analytical + 9.0 * first)).abs() < 1e-9,
            "only the measured layer changes: {overridden} vs {analytical}"
        );
        // The prefix-sum table sees the measurement too.
        let table = cm.table(&g, &[big]);
        assert!((table.slice_ms(0, 0, 0).unwrap() - first * 10.0).abs() < 1e-9);
        // Other models and processors are untouched.
        let gpu = soc.processor_by_name("GPU").unwrap();
        assert_eq!(
            cm.layer_latency_for(&g, 0, gpu),
            CostModel::new(&soc).layer_latency_for(&g, 0, gpu)
        );
    }

    #[test]
    fn profile_can_make_npu_unsupported_layers_runnable() {
        // A vendor kernel measurement can declare an otherwise
        // unsupported operator runnable on the NPU.
        let soc = SocSpec::kirin_990();
        let mut cm = CostModel::new(&soc);
        let npu = soc.processor_by_name("NPU").unwrap();
        let g = ModelId::Bert.graph();
        assert!(cm.layer_latency_for(&g, 0, npu).is_none(), "embedding");
        let mut profile = crate::profile::ProfileTable::new();
        profile.record(g.name(), &g.layers()[0].name, npu, 0.8);
        cm.set_profile(profile);
        assert_eq!(cm.layer_latency_for(&g, 0, npu), Some(0.8));
    }

    #[test]
    fn spill_factor_saturates() {
        assert_eq!(spill_factor(1024, 512), 1.0);
        let big = spill_factor(1 << 30, 256);
        assert!(big <= 4.0 && big > 3.0);
    }

    #[test]
    fn gpu_kernel_overhead_penalizes_many_layer_models() {
        // SqueezeNet (many tiny layers) suffers relatively more on the GPU
        // than a few-large-layer model — the Fig. 1 "GPU on par with CPU_B
        // overall, worse for small models" shape.
        let (soc, cm) = kirin();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let gpu = soc.processor_by_name("GPU").unwrap();
        let sq = ModelId::SqueezeNet.graph();
        let ratio_sq =
            cm.model_latency_ms(&sq, gpu).unwrap() / cm.model_latency_ms(&sq, big).unwrap();
        let vg = ModelId::Vgg16.graph();
        let ratio_vg =
            cm.model_latency_ms(&vg, gpu).unwrap() / cm.model_latency_ms(&vg, big).unwrap();
        assert!(ratio_sq > ratio_vg, "small models pay the OpenCL overhead");
    }
}
