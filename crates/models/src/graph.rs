//! Linearized model graphs and contiguous layer slices.
//!
//! The paper's Definition 1 slices each model into `K` contiguous layer
//! ranges distributed across the heterogeneous processors. A
//! [`ModelGraph`] is the linearized layer chain such slicing operates on;
//! a [`LayerRange`] is one candidate slice.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// An inclusive contiguous range of layer indices `[first, last]` within a
/// model, i.e. one pipeline-stage slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerRange {
    /// Index of the first layer in the slice.
    pub first: usize,
    /// Index of the last layer in the slice (inclusive).
    pub last: usize,
}

impl LayerRange {
    /// Creates the range `[first, last]`.
    ///
    /// # Panics
    ///
    /// Panics if `first > last`.
    pub fn new(first: usize, last: usize) -> Self {
        assert!(first <= last, "empty or inverted layer range");
        LayerRange { first, last }
    }

    /// Number of layers covered.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Always false: ranges are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl std::fmt::Display for LayerRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}..={}]", self.first, self.last)
    }
}

/// A model's linearized execution chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    name: String,
    layers: Vec<Layer>,
    input_bytes: u64,
}

impl ModelGraph {
    /// Builds a graph from its layer chain.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, input_bytes: u64, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a model must have at least one layer");
        ModelGraph {
            name: name.into(),
            layers,
            input_bytes,
        }
    }

    /// The model's name, e.g. `"VGG16"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph has no layers (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Size in bytes of the network input tensor.
    pub fn input_bytes(&self) -> u64 {
        self.input_bytes
    }

    /// Total FLOPs of one inference.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Total parameter bytes (the model's on-disk/in-memory size).
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Peak activation + weight residency of running the whole model,
    /// approximated as weights plus the largest inter-layer activation.
    pub fn footprint_bytes(&self) -> u64 {
        let max_act = self
            .layers
            .iter()
            .map(|l| l.input_bytes + l.output_bytes)
            .max()
            .unwrap_or(0);
        self.weight_bytes() + max_act
    }

    /// Aggregate weight bytes within a slice.
    pub fn slice_weight_bytes(&self, range: LayerRange) -> u64 {
        self.layers[range.first..=range.last]
            .iter()
            .map(|l| l.weight_bytes)
            .sum()
    }

    /// Aggregate FLOPs within a slice.
    pub fn slice_flops(&self, range: LayerRange) -> f64 {
        self.layers[range.first..=range.last]
            .iter()
            .map(|l| l.flops)
            .sum()
    }

    /// The activation bytes crossing the boundary *after* layer `i`
    /// (i.e. what must be copied if the model is split between `i` and
    /// `i+1`). For the final layer this is the network output size.
    pub fn boundary_bytes(&self, i: usize) -> u64 {
        self.layers[i].output_bytes
    }

    /// Bytes entering the slice: the network input for a slice starting at
    /// layer 0, otherwise the preceding boundary activation.
    pub fn slice_input_bytes(&self, range: LayerRange) -> u64 {
        if range.first == 0 {
            self.input_bytes
        } else {
            self.boundary_bytes(range.first - 1)
        }
    }

    /// Whether every layer in `range` is NPU-supported; a slice containing
    /// an unsupported operator cannot be placed on the NPU and must fall
    /// back to the CPU/GPU (Sec. IV system model).
    pub fn npu_supported_range(&self, range: LayerRange) -> bool {
        self.layers[range.first..=range.last]
            .iter()
            .all(|l| l.op.npu_supported())
    }

    /// Whether the model contains any NPU-unsupported operator.
    pub fn fully_npu_supported(&self) -> bool {
        self.layers.iter().all(|l| l.op.npu_supported())
    }

    /// Checks structural consistency of the layer chain and returns the
    /// list of problems found (empty = consistent):
    ///
    /// * non-finite or negative FLOPs, or zero-FLOP compute layers;
    /// * tensor-chain mismatches: a layer's input size differing from the
    ///   previous layer's output by more than `tolerance`× in either
    ///   direction (fused blocks and valid-vs-same padding justify small
    ///   discrepancies; large ones indicate a construction bug);
    /// * a working set smaller than the largest single tensor it must
    ///   hold.
    pub fn validate(&self, tolerance: f64) -> Vec<String> {
        assert!(tolerance >= 1.0, "tolerance is a ratio >= 1");
        let mut problems = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            if !l.flops.is_finite() || l.flops < 0.0 {
                problems.push(format!(
                    "{}[{i}] {}: invalid flops {}",
                    self.name, l.name, l.flops
                ));
            }
            let max_tensor = l.input_bytes.max(l.output_bytes);
            if l.working_set_bytes < max_tensor / 2 {
                problems.push(format!(
                    "{}[{i}] {}: working set {} below largest tensor {}",
                    self.name, l.name, l.working_set_bytes, max_tensor
                ));
            }
            if i > 0 {
                let prev_out = self.layers[i - 1].output_bytes.max(1) as f64;
                let this_in = l.input_bytes.max(1) as f64;
                let ratio = (prev_out / this_in).max(this_in / prev_out);
                if ratio > tolerance {
                    problems.push(format!(
                        "{}[{i}] {}: input {} vs previous output {} ({}x off)",
                        self.name,
                        l.name,
                        l.input_bytes,
                        self.layers[i - 1].output_bytes,
                        ratio.round()
                    ));
                }
            }
        }
        problems
    }

    /// Splits `[0, len)` into the contiguous ranges induced by the given
    /// ascending split points (each split point `p` starts a new slice at
    /// layer `p`). Mirrors Definition 1's `K`-way partition.
    ///
    /// # Panics
    ///
    /// Panics if split points are not strictly ascending within
    /// `(0, len)`.
    pub fn ranges_from_splits(&self, splits: &[usize]) -> Vec<LayerRange> {
        let n = self.len();
        let mut prev = 0usize;
        let mut out = Vec::with_capacity(splits.len() + 1);
        for &s in splits {
            assert!(
                s > prev && s < n,
                "split points must be ascending in (0, n)"
            );
            out.push(LayerRange::new(prev, s - 1));
            prev = s;
        }
        out.push(LayerRange::new(prev, n - 1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::OpKind;

    fn toy() -> ModelGraph {
        let layers = vec![
            Layer::new("a", OpKind::Conv, 100.0, 10, 20, 5),
            Layer::new("b", OpKind::Mish, 10.0, 20, 20, 0),
            Layer::new("c", OpKind::Fc, 200.0, 20, 4, 50),
        ];
        ModelGraph::new("toy", 10, layers)
    }

    #[test]
    fn aggregates_sum_layers() {
        let g = toy();
        assert_eq!(g.total_flops(), 310.0);
        assert_eq!(g.weight_bytes(), 55);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn boundary_and_slice_input_bytes() {
        let g = toy();
        assert_eq!(g.boundary_bytes(0), 20);
        assert_eq!(g.slice_input_bytes(LayerRange::new(0, 1)), 10);
        assert_eq!(g.slice_input_bytes(LayerRange::new(1, 2)), 20);
    }

    #[test]
    fn npu_support_is_per_range() {
        let g = toy();
        assert!(g.npu_supported_range(LayerRange::new(0, 0)));
        assert!(
            !g.npu_supported_range(LayerRange::new(0, 1)),
            "contains mish"
        );
        assert!(g.npu_supported_range(LayerRange::new(2, 2)));
        assert!(!g.fully_npu_supported());
    }

    #[test]
    fn ranges_from_splits_partition_the_chain() {
        let g = toy();
        let ranges = g.ranges_from_splits(&[1, 2]);
        assert_eq!(
            ranges,
            vec![
                LayerRange::new(0, 0),
                LayerRange::new(1, 1),
                LayerRange::new(2, 2)
            ]
        );
        let whole = g.ranges_from_splits(&[]);
        assert_eq!(whole, vec![LayerRange::new(0, 2)]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn bad_split_points_panic() {
        toy().ranges_from_splits(&[2, 1]);
    }

    #[test]
    fn footprint_includes_weights_and_peak_activation() {
        let g = toy();
        assert_eq!(g.footprint_bytes(), 55 + 40);
    }

    #[test]
    fn validate_flags_chain_breaks_and_bad_values() {
        let layers = vec![
            Layer::new("a", OpKind::Conv, 100.0, 1000, 1000, 5),
            // Input 10x smaller than previous output: chain break.
            Layer::new("b", OpKind::Conv, f64::NAN, 100, 100, 5),
        ];
        let g = ModelGraph::new("broken", 1000, layers);
        let problems = g.validate(3.0);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("invalid flops")));
        assert!(problems.iter().any(|p| p.contains("previous output")));
    }

    #[test]
    fn validate_accepts_consistent_chains() {
        assert!(toy().validate(3.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn validate_rejects_sub_unit_tolerance() {
        toy().validate(0.5);
    }
}
