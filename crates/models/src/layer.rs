//! Layer descriptions: operator kinds, tensor sizes, FLOPs and locality.

use serde::{Deserialize, Serialize};

/// The operator class of a layer.
///
/// Operator kind determines per-processor efficiency in the cost model and
/// NPU supportability: the paper's Fig. 1 reports inference *errors* on
/// the NPU for YOLOv4 and BERT because they contain operators outside the
/// NPU's limited set, forcing operator fallback to the CPU/GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpKind {
    /// Dense convolution.
    Conv,
    /// Depthwise-separable convolution (MobileNet-style).
    DwConv,
    /// Fully connected layer (the high-cache-miss layers of Observation 2).
    Fc,
    /// General matrix multiplication (transformer projections / FFN).
    MatMul,
    /// Multi-head self-attention (QKᵀV core).
    Attention,
    /// Layer normalization.
    LayerNorm,
    /// Pooling (max/avg/global).
    Pool,
    /// Channel concatenation (inception/fire merge points).
    Concat,
    /// Elementwise add (residual connections).
    Eltwise,
    /// Softmax.
    Softmax,
    /// Token/positional embedding lookup (BERT); not NPU-supported.
    Embedding,
    /// Mish activation (YOLOv4); not NPU-supported.
    Mish,
    /// Nearest-neighbour upsampling (YOLO neck); not NPU-supported.
    Upsample,
}

impl OpKind {
    /// Whether the NPU supports this operator. Modeled after the paper's
    /// setup: the DaVinci NPU covers the common CNN/transformer compute
    /// operators but not embedding lookups, Mish activations or the
    /// YOLO-style upsampling route layers.
    pub fn npu_supported(self) -> bool {
        !matches!(self, OpKind::Embedding | OpKind::Mish | OpKind::Upsample)
    }

    /// Short label used in layer names and debug output.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Conv => "conv",
            OpKind::DwConv => "dwconv",
            OpKind::Fc => "fc",
            OpKind::MatMul => "matmul",
            OpKind::Attention => "attn",
            OpKind::LayerNorm => "ln",
            OpKind::Pool => "pool",
            OpKind::Concat => "concat",
            OpKind::Eltwise => "eltwise",
            OpKind::Softmax => "softmax",
            OpKind::Embedding => "embed",
            OpKind::Mish => "mish",
            OpKind::Upsample => "upsample",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One layer (or fused block) of a model's linearized execution chain.
///
/// Branchy structures (inception modules, fire modules, residual blocks,
/// transformer encoder sub-layers) are represented as fused composite
/// layers carrying their aggregate FLOPs and tensor traffic — matching the
/// paper's coarse-grained slicing, which never splits inside such blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Unique-within-model layer name, e.g. `"conv3_2"`.
    pub name: String,
    /// Dominant operator kind of the layer.
    pub op: OpKind,
    /// Floating-point operations for one inference at batch 1.
    pub flops: f64,
    /// Input activation size in bytes.
    pub input_bytes: u64,
    /// Output activation size in bytes (what a pipeline split at this
    /// boundary must copy to the next processor).
    pub output_bytes: u64,
    /// Parameter bytes resident for this layer.
    pub weight_bytes: u64,
    /// Peak simultaneous tensor residency in bytes; compared against a
    /// processor's L2 to decide whether traffic spills to DRAM.
    pub working_set_bytes: u64,
    /// Access locality in `(0, 1]`: 1.0 = perfectly streamed, lower values
    /// multiply DRAM traffic. Branch-heavy modules with many small
    /// tensors (fire/inception) have poor locality — the root cause of
    /// Observation 3's "lightweight yet contention-heavy" models.
    pub locality: f64,
    /// Optional override for the bytes one execution actually touches,
    /// when it differs from `input + output + weights` (e.g. an embedding
    /// gather reads a few table rows, not the whole table).
    pub touched_bytes_override: Option<u64>,
}

impl Layer {
    /// Creates a layer with the given identity and cost numbers, default
    /// locality 1.0 and a working set equal to the tensors touched.
    pub fn new(
        name: impl Into<String>,
        op: OpKind,
        flops: f64,
        input_bytes: u64,
        output_bytes: u64,
        weight_bytes: u64,
    ) -> Self {
        Layer {
            name: name.into(),
            op,
            flops,
            input_bytes,
            output_bytes,
            weight_bytes,
            working_set_bytes: input_bytes + output_bytes + weight_bytes,
            locality: 1.0,
            touched_bytes_override: None,
        }
    }

    /// Sets the locality factor (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `locality` is not in `(0, 1]`.
    pub fn locality(mut self, locality: f64) -> Self {
        assert!(
            locality > 0.0 && locality <= 1.0,
            "locality must be in (0, 1]"
        );
        self.locality = locality;
        self
    }

    /// Overrides the working-set size (builder style).
    pub fn working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Overrides the bytes touched per execution (builder style).
    pub fn touched_bytes(mut self, bytes: u64) -> Self {
        self.touched_bytes_override = Some(bytes);
        self
    }

    /// Total bytes touched by one execution: input + output + weights,
    /// unless overridden via [`Layer::touched_bytes`].
    pub fn bytes_touched(&self) -> u64 {
        self.touched_bytes_override
            .unwrap_or(self.input_bytes + self.output_bytes + self.weight_bytes)
    }

    /// Arithmetic intensity in FLOPs per byte touched. Low values mark
    /// memory-bound layers.
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.bytes_touched();
        if b == 0 {
            f64::INFINITY
        } else {
            self.flops / b as f64
        }
    }
}

/// Bytes of an FP32 tensor with the given element count.
pub fn f32_bytes(elements: u64) -> u64 {
    elements * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn npu_support_matches_paper_fallback_story() {
        // Plain CNN/transformer compute ops are supported...
        for op in [
            OpKind::Conv,
            OpKind::DwConv,
            OpKind::Fc,
            OpKind::MatMul,
            OpKind::Attention,
            OpKind::LayerNorm,
        ] {
            assert!(op.npu_supported(), "{op} should be NPU-supported");
        }
        // ...the YOLOv4/BERT-specific ops are not.
        for op in [OpKind::Embedding, OpKind::Mish, OpKind::Upsample] {
            assert!(!op.npu_supported(), "{op} should not be NPU-supported");
        }
    }

    #[test]
    fn arithmetic_intensity_flags_memory_bound_layers() {
        let conv = Layer::new("c", OpKind::Conv, 1e9, 1 << 20, 1 << 20, 1 << 18);
        let fc = Layer::new("f", OpKind::Fc, 2e8, 4096, 16_384, 400 << 20);
        assert!(conv.arithmetic_intensity() > fc.arithmetic_intensity());
    }

    #[test]
    fn zero_byte_layer_has_infinite_intensity() {
        let l = Layer::new("z", OpKind::Softmax, 1.0, 0, 0, 0);
        assert!(l.arithmetic_intensity().is_infinite());
    }

    #[test]
    #[should_panic(expected = "locality")]
    fn locality_out_of_range_is_rejected() {
        let _ = Layer::new("c", OpKind::Conv, 1.0, 1, 1, 1).locality(1.5);
    }

    #[test]
    fn f32_bytes_counts_four_per_element() {
        assert_eq!(f32_bytes(256), 1024);
    }
}
