//! Measured-profile overrides for the cost model.
//!
//! On real hardware the paper's planner consumes *profiled* per-layer
//! execution times (`T_e` tables measured once per model/processor), not
//! an analytical model. [`ProfileTable`] is that interface: measure your
//! layers however you like (on-device timers, vendor profilers), record
//! them here, and attach the table to a [`CostModel`] — every overridden
//! layer then uses the measurement while unmeasured layers keep the
//! analytical roofline estimate. Serializable, so profiles can be
//! collected once per device and shipped with an application.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use h2p_simulator::processor::ProcessorId;

/// A set of measured per-layer latencies keyed by
/// `(model name, layer name, processor)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    entries: HashMap<(String, String, usize), f64>,
}

impl ProfileTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ProfileTable::default()
    }

    /// Records a measured latency for one layer on one processor,
    /// returning the previous measurement if any.
    ///
    /// # Panics
    ///
    /// Panics if `latency_ms` is not finite and positive.
    pub fn record(
        &mut self,
        model: impl Into<String>,
        layer: impl Into<String>,
        proc: ProcessorId,
        latency_ms: f64,
    ) -> Option<f64> {
        assert!(
            latency_ms.is_finite() && latency_ms > 0.0,
            "measured latency must be finite and positive"
        );
        self.entries
            .insert((model.into(), layer.into(), proc.index()), latency_ms)
    }

    /// Looks up a measurement.
    pub fn lookup(&self, model: &str, layer: &str, proc: ProcessorId) -> Option<f64> {
        self.entries
            .get(&(model.to_owned(), layer.to_owned(), proc.index()))
            .copied()
    }

    /// Number of recorded measurements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no measurements.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another table into this one; the other table's entries win
    /// on conflicts (newer measurements override older ones).
    pub fn merge(&mut self, other: &ProfileTable) {
        for (k, &v) in &other.entries {
            self.entries.insert(k.clone(), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup_round_trip() {
        let mut t = ProfileTable::new();
        assert!(t.is_empty());
        let p = ProcessorId(1);
        assert_eq!(t.record("BERT", "enc0_attn", p, 12.5), None);
        assert_eq!(t.lookup("BERT", "enc0_attn", p), Some(12.5));
        assert_eq!(t.lookup("BERT", "enc0_attn", ProcessorId(2)), None);
        assert_eq!(t.record("BERT", "enc0_attn", p, 11.0), Some(12.5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn merge_prefers_newer_measurements() {
        let p = ProcessorId(0);
        let mut a = ProfileTable::new();
        a.record("M", "l1", p, 10.0);
        a.record("M", "l2", p, 20.0);
        let mut b = ProfileTable::new();
        b.record("M", "l1", p, 8.0);
        a.merge(&b);
        assert_eq!(a.lookup("M", "l1", p), Some(8.0));
        assert_eq!(a.lookup("M", "l2", p), Some(20.0));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_latency() {
        ProfileTable::new().record("M", "l", ProcessorId(0), 0.0);
    }
}
