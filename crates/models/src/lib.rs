//! # h2p-models
//!
//! Layer-graph representations of the ten DNNs used in the Hetero²Pipe
//! evaluation, plus the analytical cost model that maps layers onto the
//! heterogeneous processors of [`h2p_simulator`].
//!
//! The paper runs pre-trained ONNX models through the MNN framework on
//! real silicon. This crate substitutes that stack with:
//!
//! * [`layer`] / [`graph`] — linearized layer chains carrying per-layer
//!   FLOPs, tensor sizes, operator kinds and locality, derived from the
//!   published architectures (VGG16's 13 conv + 3 FC layers, BERT-base's
//!   12 encoder blocks with 768×768 attention and 768×3072 FFN MatMuls,
//!   SqueezeNet's fire modules, …).
//! * [`zoo`] — constructors for AlexNet, VGG16, GoogLeNet, InceptionV4,
//!   ResNet50, YOLOv4, MobileNetV2, SqueezeNet, BERT and ViT.
//! * [`cost`] — a roofline cost model: per-layer latency on a processor is
//!   `max(compute_ms, memory_ms) + kernel_overhead`, with per-operator
//!   efficiency factors, an L2-spill traffic multiplier, NPU operator
//!   support (YOLOv4 and BERT contain NPU-unsupported operators, as in
//!   Fig. 1), and inter-processor tensor-copy costs.
//! * [`batch`] — the affine batch-latency model of Appendix D.
//!
//! ## Example
//!
//! ```
//! use h2p_models::zoo::ModelId;
//! use h2p_models::cost::CostModel;
//! use h2p_simulator::SocSpec;
//!
//! let soc = SocSpec::kirin_990();
//! let cost = CostModel::new(&soc);
//! let bert = ModelId::Bert.graph();
//! let npu = soc.processor_by_name("NPU").expect("kirin has an NPU");
//! // BERT contains NPU-unsupported operators (embedding lookup), so the
//! // whole-model NPU latency is unavailable without fallback:
//! assert!(cost.model_latency_ms(&bert, npu).is_none());
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod cost;
pub mod graph;
pub mod layer;
pub mod profile;
pub mod zoo;

pub use cost::CostModel;
pub use graph::ModelGraph;
pub use layer::{Layer, OpKind};
pub use profile::ProfileTable;
pub use zoo::ModelId;
