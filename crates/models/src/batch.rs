//! Affine batch-latency model (Appendix D).
//!
//! Lightweight models like MobileNetV2/SqueezeNet finish 20–40× faster
//! than heavyweight co-residents like BERT, so pipelining a *single*
//! lightweight inference against a heavy stage is wasteful: the kernel
//! launch and weight-loading overhead dominates. The paper's workaround
//! is batching — due to limited on-chip memory, mobile execution time
//! grows almost linearly in batch size, so latency is well modeled as an
//! affine function `latency(b) = slope · b + intercept`.

use serde::{Deserialize, Serialize};

use h2p_simulator::processor::ProcessorId;

use crate::cost::CostModel;
use crate::graph::{LayerRange, ModelGraph};

/// Affine batch-latency model for one (model, processor) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchModel {
    /// Marginal per-item latency in ms (compute + traffic per inference).
    pub slope_ms: f64,
    /// Fixed cost in ms: kernel dispatch across layers plus the one-time
    /// weight load / on-chip buffer fill.
    pub intercept_ms: f64,
}

impl BatchModel {
    /// Fits the affine model for `graph` on `proc`: the slope is the
    /// marginal solo latency minus dispatch overheads, the intercept the
    /// per-run fixed costs. Returns `None` if the model cannot run on
    /// `proc` (unsupported operators).
    pub fn fit(cost: &CostModel, graph: &ModelGraph, proc: ProcessorId) -> Option<BatchModel> {
        let whole = LayerRange::new(0, graph.len() - 1);
        let total = cost.slice_latency_ms(graph, whole, proc)?;
        let spec = cost.soc().processor(proc);
        let dispatch = spec.kernel_overhead_ms * graph.len() as f64;
        // Weight-load cost: streaming the parameters once through the copy
        // path (~2 GB/s effective, see `CostModel::copy_ms`).
        let weight_load = graph.weight_bytes() as f64 / 2.0e6;
        let slope = (total - dispatch).max(0.0);
        Some(BatchModel {
            slope_ms: slope,
            intercept_ms: dispatch + weight_load,
        })
    }

    /// Predicted latency of a batch of `b` inferences.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn latency_ms(&self, b: u32) -> f64 {
        assert!(b > 0, "batch size must be positive");
        self.slope_ms * b as f64 + self.intercept_ms
    }

    /// Per-item amortized latency at batch size `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn amortized_ms(&self, b: u32) -> f64 {
        self.latency_ms(b) / b as f64
    }

    /// The smallest batch size whose total latency reaches `target_ms`,
    /// capped at `max_batch`. Used to align a lightweight model's stage
    /// time with a heavyweight co-resident's stage time.
    pub fn batch_to_match(&self, target_ms: f64, max_batch: u32) -> u32 {
        if self.slope_ms <= 0.0 {
            return max_batch.max(1);
        }
        let b = ((target_ms - self.intercept_ms) / self.slope_ms).ceil();
        (b.max(1.0) as u32).min(max_batch.max(1))
    }
}

/// Rate of change of latency with batch size, normalized by the
/// single-inference latency — the quantity plotted on Fig. 13's y-axis.
/// Values near `slope/(slope+intercept)` indicate full utilization.
pub fn latency_growth_rate(model: &BatchModel, b: u32) -> f64 {
    if b == 0 {
        return 0.0;
    }
    let l1 = model.latency_ms(1);
    if l1 <= 0.0 {
        return 0.0;
    }
    (model.latency_ms(b + 1) - model.latency_ms(b)) / l1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelId;
    use h2p_simulator::SocSpec;

    fn setup() -> (SocSpec, CostModel) {
        let soc = SocSpec::kirin_990();
        let cm = CostModel::new(&soc);
        (soc, cm)
    }

    #[test]
    fn batching_amortizes_fixed_costs() {
        let (soc, cm) = setup();
        let gpu = soc.processor_by_name("GPU").unwrap();
        let m = BatchModel::fit(&cm, &ModelId::MobileNetV2.graph(), gpu).unwrap();
        assert!(m.amortized_ms(8) < m.amortized_ms(1));
        assert!(m.latency_ms(8) > m.latency_ms(1));
    }

    #[test]
    fn latency_is_affine_in_batch_size() {
        let (soc, cm) = setup();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let m = BatchModel::fit(&cm, &ModelId::SqueezeNet.graph(), big).unwrap();
        let d1 = m.latency_ms(2) - m.latency_ms(1);
        let d2 = m.latency_ms(9) - m.latency_ms(8);
        assert!((d1 - d2).abs() < 1e-9, "constant marginal cost");
    }

    #[test]
    fn batch_to_match_closes_the_light_heavy_gap() {
        let (soc, cm) = setup();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let light = BatchModel::fit(&cm, &ModelId::MobileNetV2.graph(), big).unwrap();
        let heavy_ms = cm
            .model_latency_ms(&ModelId::Bert.graph(), big)
            .expect("BERT runs on CPU");
        let b = light.batch_to_match(heavy_ms, 64);
        assert!(b > 1, "one light inference cannot fill a BERT stage");
        assert!(light.latency_ms(b) >= heavy_ms * 0.9 || b == 64);
    }

    #[test]
    fn unsupported_model_yields_none() {
        let (soc, cm) = setup();
        let npu = soc.processor_by_name("NPU").unwrap();
        assert!(BatchModel::fit(&cm, &ModelId::Bert.graph(), npu).is_none());
    }

    #[test]
    fn growth_rate_is_positive_and_stable() {
        let (soc, cm) = setup();
        let gpu = soc.processor_by_name("GPU").unwrap();
        let m = BatchModel::fit(&cm, &ModelId::SqueezeNet.graph(), gpu).unwrap();
        let r4 = latency_growth_rate(&m, 4);
        let r16 = latency_growth_rate(&m, 16);
        assert!(r4 > 0.0);
        assert!((r4 - r16).abs() < 1e-9, "affine model has constant rate");
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let (soc, cm) = setup();
        let big = soc.processor_by_name("CPU_B").unwrap();
        let m = BatchModel::fit(&cm, &ModelId::SqueezeNet.graph(), big).unwrap();
        let _ = m.latency_ms(0);
    }
}
