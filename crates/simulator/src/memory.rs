//! Memory subsystem: capacity ledger, page-fault penalty and the
//! demand-driven memory-frequency governor.
//!
//! The paper's Constraint (6) bounds the concurrent footprint of pipeline
//! stages by the physical memory capacity, and Fig. 9 traces the memory
//! frequency (driven to its maximum whenever CPU/GPU co-execute) and the
//! available memory (≈2.5 GB initially, dropping to ≈500 MB under a
//! three-stage pipeline of large models).

use serde::{Deserialize, Serialize};

/// Static description of the DRAM subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Memory available to the inference workload, in bytes (the paper
    /// observes ~2.5 GB available on the Kirin 990 test device).
    pub capacity_bytes: u64,
    /// Discrete memory controller frequency levels in MHz, ascending.
    pub freq_levels_mhz: Vec<u32>,
    /// Aggregate bandwidth demand (GB/s) above which the governor steps the
    /// frequency up one level.
    pub step_up_gbps: f64,
    /// Multiplicative progress-rate penalty applied to every running task
    /// while the footprint exceeds capacity (page faults / swapping).
    pub page_fault_penalty: f64,
}

impl MemorySpec {
    /// A spec resembling the paper's Kirin 990 test device.
    pub fn mobile_default() -> Self {
        MemorySpec {
            capacity_bytes: 2_500 * 1024 * 1024,
            freq_levels_mhz: vec![547, 1094, 1866],
            step_up_gbps: 4.0,
            page_fault_penalty: 0.35,
        }
    }

    /// The highest governor frequency level in MHz.
    pub fn max_freq_mhz(&self) -> u32 {
        // Documented invariant: every constructor provides at least one
        // frequency level; an empty table is a spec-construction bug.
        #[allow(clippy::expect_used)]
        *self
            .freq_levels_mhz
            .last()
            .expect("memory spec must define at least one frequency level")
    }
}

impl Default for MemorySpec {
    fn default() -> Self {
        MemorySpec::mobile_default()
    }
}

/// One sample of the memory trace (Fig. 9): time, governor frequency and
/// available memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySample {
    /// Simulation time of the sample in milliseconds.
    pub time_ms: f64,
    /// Governor frequency at the sample in MHz.
    pub freq_mhz: u32,
    /// Available (unallocated) memory in bytes; zero while over-committed.
    pub available_bytes: u64,
    /// Total allocated footprint in bytes.
    pub allocated_bytes: u64,
}

/// Runtime state of the memory subsystem during a simulation.
///
/// The engine allocates each task's footprint when the task starts and
/// releases it on completion, recording a trace sample at every change.
#[derive(Debug, Clone)]
pub struct MemoryState {
    spec: MemorySpec,
    allocated: u64,
    demand_gbps: f64,
    trace: Vec<MemorySample>,
}

impl MemoryState {
    /// Creates a fresh state with nothing allocated.
    pub fn new(spec: MemorySpec) -> Self {
        MemoryState {
            spec,
            allocated: 0,
            demand_gbps: 0.0,
            trace: Vec::new(),
        }
    }

    /// The spec this state was created from.
    pub fn spec(&self) -> &MemorySpec {
        &self.spec
    }

    /// Currently allocated footprint in bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Available memory in bytes (saturating at zero when over-committed).
    pub fn available_bytes(&self) -> u64 {
        self.spec.capacity_bytes.saturating_sub(self.allocated)
    }

    /// Whether the current footprint exceeds physical capacity, i.e. the
    /// device is paging and every running task suffers
    /// [`MemorySpec::page_fault_penalty`].
    pub fn over_capacity(&self) -> bool {
        self.allocated > self.spec.capacity_bytes
    }

    /// The multiplicative rate factor imposed by the memory subsystem on
    /// all running tasks: `1.0` normally, `page_fault_penalty` when
    /// over-committed.
    pub fn rate_factor(&self) -> f64 {
        if self.over_capacity() {
            self.spec.page_fault_penalty
        } else {
            1.0
        }
    }

    /// Governor frequency for the current aggregate bandwidth demand.
    ///
    /// Single-accelerator execution stays on a low level; once demand
    /// crosses multiples of `step_up_gbps` the governor climbs, saturating
    /// at the top level — matching Fig. 9 where involving the CPU/GPU
    /// drives the controller to its maximum state.
    pub fn governor_freq_mhz(&self) -> u32 {
        let levels = &self.spec.freq_levels_mhz;
        let step = (self.demand_gbps / self.spec.step_up_gbps).floor() as usize;
        let idx = step.min(levels.len() - 1);
        levels[idx]
    }

    /// Registers `bytes` of footprint and `bandwidth_gbps` of demand for a
    /// task starting at `time_ms`, recording a trace sample.
    pub fn allocate(&mut self, time_ms: f64, bytes: u64, bandwidth_gbps: f64) {
        self.allocated += bytes;
        self.demand_gbps += bandwidth_gbps;
        self.sample(time_ms);
    }

    /// Releases a task's footprint and bandwidth demand at `time_ms`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more is released than was allocated
    /// (ledger conservation violation).
    pub fn release(&mut self, time_ms: f64, bytes: u64, bandwidth_gbps: f64) {
        debug_assert!(self.allocated >= bytes, "memory ledger underflow");
        self.allocated = self.allocated.saturating_sub(bytes);
        self.demand_gbps = (self.demand_gbps - bandwidth_gbps).max(0.0);
        self.sample(time_ms);
    }

    /// Records the current state as a trace sample at `time_ms`.
    pub fn sample(&mut self, time_ms: f64) {
        self.trace.push(MemorySample {
            time_ms,
            freq_mhz: self.governor_freq_mhz(),
            available_bytes: self.available_bytes(),
            allocated_bytes: self.allocated,
        });
    }

    /// The recorded trace, one sample per allocation change.
    pub fn trace(&self) -> &[MemorySample] {
        &self.trace
    }

    /// Consumes the state and returns the trace.
    pub fn into_trace(self) -> Vec<MemorySample> {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> MemoryState {
        MemoryState::new(MemorySpec::mobile_default())
    }

    #[test]
    fn ledger_conserves_allocations() {
        let mut m = state();
        m.allocate(0.0, 100 << 20, 2.0);
        m.allocate(1.0, 300 << 20, 3.0);
        assert_eq!(m.allocated_bytes(), 400 << 20);
        m.release(2.0, 100 << 20, 2.0);
        m.release(3.0, 300 << 20, 3.0);
        assert_eq!(m.allocated_bytes(), 0);
        assert_eq!(m.available_bytes(), m.spec().capacity_bytes);
    }

    #[test]
    fn governor_climbs_with_demand() {
        let mut m = state();
        let idle = m.governor_freq_mhz();
        assert_eq!(idle, 547);
        m.allocate(0.0, 0, 4.5);
        assert_eq!(m.governor_freq_mhz(), 1094);
        m.allocate(0.0, 0, 8.0);
        assert_eq!(m.governor_freq_mhz(), 1866, "saturates at max level");
    }

    #[test]
    fn page_fault_penalty_kicks_in_over_capacity() {
        let mut m = state();
        assert_eq!(m.rate_factor(), 1.0);
        m.allocate(0.0, 3_000 << 20, 1.0);
        assert!(m.over_capacity());
        assert_eq!(m.rate_factor(), m.spec().page_fault_penalty);
        assert_eq!(m.available_bytes(), 0);
    }

    #[test]
    fn trace_records_every_change() {
        let mut m = state();
        m.allocate(0.0, 10, 1.0);
        m.release(5.0, 10, 1.0);
        let t = m.trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].time_ms, 0.0);
        assert_eq!(t[1].time_ms, 5.0);
        assert_eq!(t[1].allocated_bytes, 0);
    }
}
