//! Rate-based discrete-event execution engine.
//!
//! Tasks are units of work pinned to one processor, with DAG dependencies.
//! Each processor executes one task at a time, FIFO among ready tasks in
//! submission order. A running task progresses at
//!
//! ```text
//! rate = thermal_factor(p) · memory_factor / (1 + slowdown)
//! ```
//!
//! where `slowdown` is recomputed from the current co-runner set at every
//! start/finish event ([`crate::interference`]). This yields the
//! time-varying, combination-dependent co-execution slowdown that the
//! paper measures on real SoCs (Table II) while remaining fully
//! deterministic: event order is resolved by `f64` time with stable
//! task-id tie-breaking, and no randomness is involved.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::faults::{FailedTask, FaultInjector, FaultKind, FaultOutcome};
use crate::interference::slowdown_for;
use crate::memory::MemoryState;
use crate::processor::ProcessorId;
use crate::soc::SocSpec;
use crate::thermal::{ThermalSpec, ThermalState};
use crate::timeline::{Span, Trace};

/// Opaque handle to a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// The task's submission index (also its index in [`Trace::spans`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Description of one unit of work submitted to the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Human-readable label carried into the trace.
    pub label: String,
    /// Processor the task must run on.
    pub processor: ProcessorId,
    /// Execution time in milliseconds under solo, unthrottled execution.
    pub solo_ms: f64,
    /// Contention intensity this task emits onto the shared bus while
    /// running (the paper's regression target; ~1.0 for a memory-bound
    /// model, ~0 for a compute-bound one).
    pub intensity: f64,
    /// Susceptibility of this task to co-runners' contention.
    pub sensitivity: f64,
    /// Memory bandwidth demand in GB/s (drives the frequency governor).
    pub bandwidth_gbps: f64,
    /// Resident memory footprint in bytes while the task runs.
    pub footprint_bytes: u64,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
    /// Earliest wall-clock start in ms (request arrival time); the task
    /// stays invisible to its processor's queue until then.
    pub release_ms: f64,
}

impl TaskSpec {
    /// Creates a task with neutral contention behaviour: zero emitted
    /// intensity, unit sensitivity, no footprint and no dependencies.
    pub fn new(label: impl Into<String>, processor: ProcessorId, solo_ms: f64) -> Self {
        TaskSpec {
            label: label.into(),
            processor,
            solo_ms,
            intensity: 0.0,
            sensitivity: 1.0,
            bandwidth_gbps: 0.0,
            footprint_bytes: 0,
            deps: Vec::new(),
            release_ms: 0.0,
        }
    }

    /// Sets the emitted contention intensity (builder style).
    pub fn intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity;
        self
    }

    /// Sets the contention sensitivity (builder style).
    pub fn sensitivity(mut self, sensitivity: f64) -> Self {
        self.sensitivity = sensitivity;
        self
    }

    /// Sets the bandwidth demand in GB/s (builder style).
    pub fn bandwidth(mut self, gbps: f64) -> Self {
        self.bandwidth_gbps = gbps;
        self
    }

    /// Sets the resident footprint in bytes (builder style).
    pub fn footprint(mut self, bytes: u64) -> Self {
        self.footprint_bytes = bytes;
        self
    }

    /// Adds a dependency (builder style).
    pub fn after(mut self, dep: TaskId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Sets the arrival/release time in ms (builder style).
    pub fn release(mut self, release_ms: f64) -> Self {
        self.release_ms = release_ms;
        self
    }

    /// The request index encoded in this task's label, if any
    /// ([`request_of_label`]).
    pub fn request_index(&self) -> Option<usize> {
        request_of_label(&self.label)
    }
}

/// Extracts the request index from a planner-lowered task label. The
/// planner encodes request identity as `{model}#{request}@s{slot}`
/// (optionally with a `rN` run suffix); auxiliary labels without that
/// shape (relocation stubs, raw engine tests) yield `None`. This is the
/// single source of truth for label → request mapping — the executor's
/// latency envelopes and the lifecycle reconstruction both use it, so
/// they can never disagree.
pub fn request_of_label(label: &str) -> Option<usize> {
    let (_, rest) = label.rsplit_once('#')?;
    let (req, _) = rest.split_once('@')?;
    req.parse().ok()
}

#[derive(Debug, Clone)]
struct Running {
    task: usize,
    remaining_ms: f64,
    start_ms: f64,
}

/// One structured event from a simulation run, for the JSON-lines log.
///
/// Events are emitted in simulation-time order. `Ready` fires when a
/// task joins its processor's FIFO queue (dependencies met and release
/// time reached), `Start`/`Finish` bracket execution, and `Rate` fires
/// whenever a running task's effective progress rate changes — its
/// instantaneous interference slowdown, thermal factor and memory
/// factor. Serialize with [`EngineEvent::json_line`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A task joined its processor queue.
    Ready {
        /// Simulation time in ms.
        time_ms: f64,
        /// Task id.
        task: usize,
        /// Queue (processor) joined.
        processor: ProcessorId,
    },
    /// A task began executing.
    Start {
        /// Simulation time in ms.
        time_ms: f64,
        /// Task id.
        task: usize,
        /// Processor it runs on.
        processor: ProcessorId,
    },
    /// A running task's effective rate changed.
    Rate {
        /// Simulation time in ms.
        time_ms: f64,
        /// Task id.
        task: usize,
        /// Processor it runs on.
        processor: ProcessorId,
        /// Interference slowdown `s` (rate divides by `1 + s`).
        slowdown: f64,
        /// Thermal throttle factor in `(0, 1]`.
        thermal_factor: f64,
        /// Memory/paging factor in `(0, 1]`.
        memory_factor: f64,
    },
    /// A task finished executing.
    Finish {
        /// Simulation time in ms.
        time_ms: f64,
        /// Task id.
        task: usize,
        /// Processor it ran on.
        processor: ProcessorId,
        /// Wall-clock duration of the span in ms.
        duration_ms: f64,
        /// Realized average slowdown `(duration - solo) / solo`.
        slowdown: f64,
    },
    /// An injected fault permanently dropped a processor.
    ProcessorDown {
        /// Simulation time in ms.
        time_ms: f64,
        /// Processor that dropped.
        processor: ProcessorId,
    },
    /// An injected fault changed a processor's throttle multiplier.
    Throttle {
        /// Simulation time in ms.
        time_ms: f64,
        /// Processor being throttled.
        processor: ProcessorId,
        /// New fault throttle factor in `(0, 1]` (1.0 = throttle lifted).
        factor: f64,
    },
    /// An injected fault aborted a running task.
    TaskFailed {
        /// Simulation time in ms.
        time_ms: f64,
        /// Task id.
        task: usize,
        /// Processor it was running on.
        processor: ProcessorId,
        /// What killed it.
        kind: FaultKind,
    },
}

impl EngineEvent {
    /// Simulation time at which the event fired.
    pub fn time_ms(&self) -> f64 {
        match self {
            EngineEvent::Ready { time_ms, .. }
            | EngineEvent::Start { time_ms, .. }
            | EngineEvent::Rate { time_ms, .. }
            | EngineEvent::Finish { time_ms, .. }
            | EngineEvent::ProcessorDown { time_ms, .. }
            | EngineEvent::Throttle { time_ms, .. }
            | EngineEvent::TaskFailed { time_ms, .. } => *time_ms,
        }
    }

    /// Renders the event as one JSON object (no trailing newline), the
    /// unit of the JSON-lines event log.
    pub fn json_line(&self) -> String {
        match self {
            EngineEvent::Ready {
                time_ms,
                task,
                processor,
            } => format!(
                "{{\"event\":\"ready\",\"time_ms\":{time_ms},\"task\":{task},\"processor\":{}}}",
                processor.index()
            ),
            EngineEvent::Start {
                time_ms,
                task,
                processor,
            } => format!(
                "{{\"event\":\"start\",\"time_ms\":{time_ms},\"task\":{task},\"processor\":{}}}",
                processor.index()
            ),
            EngineEvent::Rate {
                time_ms,
                task,
                processor,
                slowdown,
                thermal_factor,
                memory_factor,
            } => format!(
                "{{\"event\":\"rate\",\"time_ms\":{time_ms},\"task\":{task},\"processor\":{},\
                 \"slowdown\":{slowdown},\"thermal_factor\":{thermal_factor},\
                 \"memory_factor\":{memory_factor}}}",
                processor.index()
            ),
            EngineEvent::Finish {
                time_ms,
                task,
                processor,
                duration_ms,
                slowdown,
            } => format!(
                "{{\"event\":\"finish\",\"time_ms\":{time_ms},\"task\":{task},\"processor\":{},\
                 \"duration_ms\":{duration_ms},\"slowdown\":{slowdown}}}",
                processor.index()
            ),
            EngineEvent::ProcessorDown { time_ms, processor } => format!(
                "{{\"event\":\"processor_down\",\"time_ms\":{time_ms},\"processor\":{}}}",
                processor.index()
            ),
            EngineEvent::Throttle {
                time_ms,
                processor,
                factor,
            } => format!(
                "{{\"event\":\"throttle\",\"time_ms\":{time_ms},\"processor\":{},\"factor\":{factor}}}",
                processor.index()
            ),
            EngineEvent::TaskFailed {
                time_ms,
                task,
                processor,
                kind,
            } => format!(
                "{{\"event\":\"task_failed\",\"time_ms\":{time_ms},\"task\":{task},\"processor\":{},\
                 \"kind\":\"{}\"}}",
                processor.index(),
                kind.as_str()
            ),
        }
    }
}

/// A simulation under construction: an SoC plus a task DAG.
#[derive(Debug, Clone)]
pub struct Simulation {
    soc: SocSpec,
    tasks: Vec<TaskSpec>,
}

impl Simulation {
    /// Creates an empty simulation on the given SoC.
    pub fn new(soc: SocSpec) -> Self {
        Simulation {
            soc,
            tasks: Vec::new(),
        }
    }

    /// The SoC this simulation runs on.
    pub fn soc(&self) -> &SocSpec {
        &self.soc
    }

    /// Number of tasks submitted so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The submitted task specs, indexed by [`TaskId`]. Exposed so
    /// callers can audit a [`Trace`] against the specs that produced it
    /// (see [`crate::audit`]).
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Submits a task and returns its handle. Validation of processor ids
    /// and dependencies happens in [`Simulation::run`] so tasks can be
    /// submitted in any order.
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(spec);
        id
    }

    fn validate(&self) -> Result<(), SimError> {
        let n_proc = self.soc.processors.len();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.processor.index() >= n_proc {
                return Err(SimError::UnknownProcessor {
                    index: t.processor.index(),
                    available: n_proc,
                });
            }
            if !(t.solo_ms.is_finite() && t.solo_ms >= 0.0) {
                return Err(SimError::InvalidDuration {
                    task: i,
                    solo_ms: t.solo_ms,
                });
            }
            if !(t.release_ms.is_finite() && t.release_ms >= 0.0) {
                return Err(SimError::InvalidDuration {
                    task: i,
                    solo_ms: t.release_ms,
                });
            }
            for d in &t.deps {
                if d.0 >= self.tasks.len() {
                    return Err(SimError::UnknownDependency {
                        task: i,
                        dependency: d.0,
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs the simulation to completion and returns the trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a task references an unknown processor or
    /// dependency, has an invalid duration, or the DAG contains a cycle.
    pub fn run(self) -> Result<Trace, SimError> {
        self.run_inner(None)
    }

    /// Like [`Simulation::run`], but also returns the structured event
    /// log: one [`EngineEvent`] per queue entry, start, rate change and
    /// finish, in simulation-time order. The trace is identical to the
    /// one [`Simulation::run`] produces.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_with_events(self) -> Result<(Trace, Vec<EngineEvent>), SimError> {
        let mut events = Vec::new();
        let trace = self.run_inner(Some(&mut events))?;
        Ok((trace, events))
    }

    /// Runs the simulation under an injected fault script and returns
    /// the partial [`FaultOutcome`] plus the event log. Unlike
    /// [`Simulation::run`], a faulted run never fails because tasks got
    /// stuck: when faults leave unrunnable work (processor down,
    /// dependency dead), the engine halts at the last instant progress
    /// was possible and reports the killed/orphaned tasks in the
    /// outcome.
    ///
    /// Fault throttle multipliers are folded into the `thermal_factor`
    /// of the logged `Rate` events, so the replay reconciliation in
    /// [`crate::audit`] integrates the faulted rates exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on the same *structural* problems as
    /// [`Simulation::run`] (unknown processor/dependency, invalid
    /// duration), and [`SimError::UnknownProcessor`] when the injector
    /// was compiled for a different processor count than the SoC.
    pub fn run_faulted(
        self,
        faults: &FaultInjector,
    ) -> Result<(FaultOutcome, Vec<EngineEvent>), SimError> {
        if faults.processor_count() != self.soc.processors.len() {
            return Err(SimError::UnknownProcessor {
                index: faults.processor_count(),
                available: self.soc.processors.len(),
            });
        }
        let mut events = Vec::new();
        let core = self.run_core(Some(&mut events), Some(faults))?;
        let mut dead = vec![false; core.spans.len()];
        for f in &core.failed {
            if let Some(slot) = dead.get_mut(f.task) {
                *slot = true;
            }
        }
        let orphaned: Vec<usize> = core
            .spans
            .iter()
            .enumerate()
            .filter(|&(i, s)| s.is_none() && !dead[i])
            .map(|(i, _)| i)
            .collect();
        Ok((
            FaultOutcome {
                spans: core.spans,
                failed: core.failed,
                orphaned,
                halt_ms: core.halt_ms,
                down: core.down,
                memory: core.memory,
                processor_count: core.processor_count,
            },
            events,
        ))
    }

    fn run_inner(self, events: Option<&mut Vec<EngineEvent>>) -> Result<Trace, SimError> {
        let core = self.run_core(events, None)?;
        Ok(Trace {
            spans: core
                .spans
                .into_iter()
                .map(|s| {
                    // Invariant: the fault-free path only returns once
                    // every task completed; a hole would be an engine bug
                    // worth a crash rather than a silently shorter trace.
                    #[allow(clippy::expect_used)]
                    s.expect("all completed")
                })
                .collect(),
            memory: core.memory,
            processor_count: core.processor_count,
        })
    }

    fn run_core(
        self,
        mut events: Option<&mut Vec<EngineEvent>>,
        faults: Option<&FaultInjector>,
    ) -> Result<CoreOutcome, SimError> {
        self.validate()?;
        let n = self.tasks.len();
        let n_proc = self.soc.processors.len();

        let mut indegree = vec![0usize; n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            indegree[i] = t.deps.len();
            for d in &t.deps {
                successors[d.0].push(i);
            }
        }

        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_proc];
        // Tasks whose dependencies are met but whose release time has not
        // arrived, kept sorted by (release, id) descending so the next
        // release pops from the back.
        let mut deferred: Vec<(f64, usize)> = Vec::new();
        let defer_or_queue =
            |i: usize,
             time_ms: f64,
             queues: &mut Vec<VecDeque<usize>>,
             deferred: &mut Vec<(f64, usize)>,
             tasks: &[TaskSpec],
             events: &mut Option<&mut Vec<EngineEvent>>| {
                if tasks[i].release_ms > time_ms {
                    let key = (tasks[i].release_ms, i);
                    let pos = deferred
                        .binary_search_by(|&(r, id)| {
                            // total_cmp gives a total order even for the
                            // NaN releases the lint layer rejects.
                            r.total_cmp(&key.0).then(id.cmp(&key.1)).reverse()
                        })
                        .unwrap_or_else(|p| p);
                    deferred.insert(pos, (key.0, key.1));
                } else {
                    queues[tasks[i].processor.index()].push_back(i);
                    if let Some(ev) = events.as_mut() {
                        ev.push(EngineEvent::Ready {
                            time_ms,
                            task: i,
                            processor: tasks[i].processor,
                        });
                    }
                }
            };
        for (i, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                defer_or_queue(i, 0.0, &mut queues, &mut deferred, &self.tasks, &mut events);
            }
        }

        let mut running: Vec<Option<Running>> = vec![None; n_proc];
        let mut memory = MemoryState::new(self.soc.memory.clone());
        memory.sample(0.0);
        let mut thermal: Vec<ThermalState> = self
            .soc
            .processors
            .iter()
            .map(|p| ThermalState::new(ThermalSpec::for_kind(p.kind), self.soc.thermal_mode))
            .collect();

        let mut spans: Vec<Option<Span>> = vec![None; n];
        let mut time_ms = 0.0f64;
        let mut completed = 0usize;
        // Last rate tuple emitted per processor, to log rate events only
        // when something actually changed.
        let mut last_rate: Vec<Option<(usize, f64, f64, f64)>> = vec![None; n_proc];
        // Fault-injection state; inert (and bit-identically absent from
        // the trace) when `faults` is `None`.
        let mut down = vec![false; n_proc];
        let mut failed: Vec<FailedTask> = Vec::new();
        let mut last_fault_factor = vec![1.0f64; n_proc];
        const EPS: f64 = 1e-9;

        while completed < n {
            // Dropout phase: apply scripted processor dropouts before
            // anything new starts. This runs at the top of the loop so a
            // task finishing exactly at the dropout instant (previous
            // iteration's finish phase) still completes, while nothing
            // can ever start on a down processor.
            if let Some(f) = faults {
                for p in 0..n_proc {
                    if down[p] {
                        continue;
                    }
                    let Some(at) = f.down_at(p) else { continue };
                    if at > time_ms + 1e-12 {
                        continue;
                    }
                    down[p] = true;
                    if let Some(ev) = events.as_mut() {
                        ev.push(EngineEvent::ProcessorDown {
                            time_ms,
                            processor: ProcessorId(p),
                        });
                    }
                    if let Some(r) = running[p].take() {
                        last_rate[p] = None;
                        let spec = &self.tasks[r.task];
                        memory.release(time_ms, spec.footprint_bytes, spec.bandwidth_gbps);
                        if let Some(ev) = events.as_mut() {
                            ev.push(EngineEvent::TaskFailed {
                                time_ms,
                                task: r.task,
                                processor: spec.processor,
                                kind: FaultKind::Dropout,
                            });
                        }
                        failed.push(FailedTask {
                            task: r.task,
                            processor: spec.processor,
                            at_ms: time_ms,
                            kind: FaultKind::Dropout,
                        });
                    }
                }
            }

            // Start phase: fill idle processors from their FIFO queues.
            for p in 0..n_proc {
                if running[p].is_none() && !down[p] {
                    if let Some(task) = queues[p].pop_front() {
                        let spec = &self.tasks[task];
                        memory.allocate(time_ms, spec.footprint_bytes, spec.bandwidth_gbps);
                        running[p] = Some(Running {
                            task,
                            remaining_ms: spec.solo_ms,
                            start_ms: time_ms,
                        });
                        if let Some(ev) = events.as_mut() {
                            ev.push(EngineEvent::Start {
                                time_ms,
                                task,
                                processor: spec.processor,
                            });
                        }
                    }
                }
            }

            let active: Vec<usize> = (0..n_proc).filter(|&p| running[p].is_some()).collect();
            if active.is_empty() {
                // Nothing running: either jump to the next release, or
                // the remaining tasks form a dependency cycle.
                if let Some(&(release, _)) = deferred.last() {
                    time_ms = time_ms.max(release);
                    while let Some(&(r, id)) = deferred.last() {
                        if r <= time_ms {
                            deferred.pop();
                            queues[self.tasks[id].processor.index()].push_back(id);
                            if let Some(ev) = events.as_mut() {
                                ev.push(EngineEvent::Ready {
                                    time_ms,
                                    task: id,
                                    processor: self.tasks[id].processor,
                                });
                            }
                        } else {
                            break;
                        }
                    }
                    continue;
                }
                if faults.is_some() {
                    // Faulted runs halt with a partial outcome instead of
                    // reporting a cycle: the stuck tasks are orphans of
                    // failed dependencies or sit on down processors.
                    break;
                }
                return Err(SimError::CyclicDependency {
                    stuck: n - completed,
                });
            }

            // Throttle phase: surface scripted fault-throttle changes in
            // the event log (the factor itself is folded into the Rate
            // events below, so replay stays exact).
            if let Some(f) = faults {
                for p in 0..n_proc {
                    if down[p] {
                        continue;
                    }
                    let factor = f.throttle_factor(p, time_ms);
                    if (factor - last_fault_factor[p]).abs() > 1e-12 {
                        last_fault_factor[p] = factor;
                        if let Some(ev) = events.as_mut() {
                            ev.push(EngineEvent::Throttle {
                                time_ms,
                                processor: ProcessorId(p),
                                factor,
                            });
                        }
                    }
                }
            }

            // Rate phase: effective progress rate for every running task.
            let mem_factor = memory.rate_factor();
            let mut rates = vec![0.0f64; n_proc];
            for &p in &active {
                // Invariant: `active` lists exactly the occupied slots.
                #[allow(clippy::expect_used)]
                let r = running[p].as_ref().expect("active implies running");
                let spec = &self.tasks[r.task];
                let corunners = active.iter().filter(|&&q| q != p).filter_map(|&q| {
                    // filter_map never drops anything: `active` lists
                    // exactly the occupied slots.
                    running[q]
                        .as_ref()
                        .map(|other| (&self.soc.processors[q], self.tasks[other.task].intensity))
                });
                let slow = slowdown_for(
                    &self.soc.coupling,
                    &self.soc.processors[p],
                    spec.sensitivity,
                    corunners,
                );
                let fault_factor = faults.map_or(1.0, |f| f.throttle_factor(p, time_ms));
                let thermal_factor = thermal[p].rate_factor() * fault_factor;
                rates[p] = thermal_factor * mem_factor / (1.0 + slow);
                if let Some(ev) = events.as_mut() {
                    let tuple = (r.task, slow, thermal_factor, mem_factor);
                    if last_rate[p] != Some(tuple) {
                        last_rate[p] = Some(tuple);
                        ev.push(EngineEvent::Rate {
                            time_ms,
                            task: r.task,
                            processor: spec.processor,
                            slowdown: slow,
                            thermal_factor,
                            memory_factor: mem_factor,
                        });
                    }
                }
            }

            // Advance phase: step to the earliest completion or release.
            let completion_dt = active
                .iter()
                .filter_map(|&p| {
                    let r = running[p].as_ref()?;
                    Some(if rates[p] > 0.0 {
                        r.remaining_ms / rates[p]
                    } else {
                        f64::INFINITY
                    })
                })
                .fold(f64::INFINITY, f64::min);
            let release_dt = deferred
                .last()
                .map_or(f64::INFINITY, |&(r, _)| (r - time_ms).max(0.0));
            // Faulted runs also stop at the next scripted fault boundary
            // (dropout instant, throttle edge) and at each running task's
            // scripted transient-failure point.
            let fault_dt = faults
                .and_then(|f| f.next_boundary_after(time_ms))
                .map_or(f64::INFINITY, |b| (b - time_ms).max(0.0));
            let failure_dt = faults.map_or(f64::INFINITY, |f| {
                active
                    .iter()
                    .filter_map(|&p| {
                        let r = running[p].as_ref()?;
                        let frac = f.fail_fraction(r.task)?;
                        let spec = &self.tasks[r.task];
                        // Solo-ms of work left before the failure point.
                        let to_fail = r.remaining_ms - (1.0 - frac) * spec.solo_ms;
                        Some(if to_fail <= 0.0 {
                            0.0
                        } else if rates[p] > 0.0 {
                            to_fail / rates[p]
                        } else {
                            f64::INFINITY
                        })
                    })
                    .fold(f64::INFINITY, f64::min)
            });
            let dt = completion_dt.min(release_dt).min(fault_dt).min(failure_dt);
            debug_assert!(
                faults.is_some() || dt.is_finite(),
                "at least one task must make progress"
            );
            if !dt.is_finite() {
                // Only reachable under faults: nothing can ever progress
                // again (e.g. every runnable task sits behind dead work).
                break;
            }
            time_ms += dt;
            // Release newly arrived tasks.
            while let Some(&(r, id)) = deferred.last() {
                if r <= time_ms + 1e-12 {
                    deferred.pop();
                    queues[self.tasks[id].processor.index()].push_back(id);
                    if let Some(ev) = events.as_mut() {
                        ev.push(EngineEvent::Ready {
                            time_ms,
                            task: id,
                            processor: self.tasks[id].processor,
                        });
                    }
                } else {
                    break;
                }
            }
            for p in 0..n_proc {
                thermal[p].advance(dt, running[p].is_some());
                if let Some(r) = running[p].as_mut() {
                    r.remaining_ms = (r.remaining_ms - dt * rates[p]).max(0.0);
                }
            }

            // Failure phase: abort tasks that crossed their scripted
            // transient-failure point. Runs before the finish phase so a
            // scripted failure always wins over completion (the failure
            // fraction is clamped strictly below 1.0).
            if let Some(f) = faults {
                for (p, slot) in running.iter_mut().enumerate() {
                    let fails = match slot {
                        Some(r) => f.fail_fraction(r.task).is_some_and(|frac| {
                            let spec = &self.tasks[r.task];
                            spec.solo_ms - r.remaining_ms + EPS >= frac * spec.solo_ms
                        }),
                        None => false,
                    };
                    if !fails {
                        continue;
                    }
                    let Some(r) = slot.take() else { continue };
                    last_rate[p] = None;
                    let spec = &self.tasks[r.task];
                    memory.release(time_ms, spec.footprint_bytes, spec.bandwidth_gbps);
                    if let Some(ev) = events.as_mut() {
                        ev.push(EngineEvent::TaskFailed {
                            time_ms,
                            task: r.task,
                            processor: spec.processor,
                            kind: FaultKind::Transient,
                        });
                    }
                    failed.push(FailedTask {
                        task: r.task,
                        processor: spec.processor,
                        at_ms: time_ms,
                        kind: FaultKind::Transient,
                    });
                }
            }

            // Finish phase: retire completed tasks in processor order,
            // then release successors in task-id order for determinism.
            let mut newly_ready: Vec<usize> = Vec::new();
            for (p, slot) in running.iter_mut().enumerate() {
                let done = matches!(slot, Some(r) if r.remaining_ms <= EPS);
                if !done {
                    continue;
                }
                let Some(r) = slot.take() else { continue };
                last_rate[p] = None;
                let spec = &self.tasks[r.task];
                memory.release(time_ms, spec.footprint_bytes, spec.bandwidth_gbps);
                if let Some(ev) = events.as_mut() {
                    let duration_ms = time_ms - r.start_ms;
                    let slowdown = if spec.solo_ms > 0.0 {
                        (duration_ms - spec.solo_ms) / spec.solo_ms
                    } else {
                        0.0
                    };
                    ev.push(EngineEvent::Finish {
                        time_ms,
                        task: r.task,
                        processor: spec.processor,
                        duration_ms,
                        slowdown,
                    });
                }
                spans[r.task] = Some(Span {
                    task: r.task,
                    label: spec.label.clone(),
                    processor: spec.processor,
                    start_ms: r.start_ms,
                    end_ms: time_ms,
                    solo_ms: spec.solo_ms,
                });
                completed += 1;
                for &s in &successors[r.task] {
                    indegree[s] -= 1;
                    if indegree[s] == 0 {
                        newly_ready.push(s);
                    }
                }
            }
            newly_ready.sort_unstable();
            for s in newly_ready {
                defer_or_queue(
                    s,
                    time_ms,
                    &mut queues,
                    &mut deferred,
                    &self.tasks,
                    &mut events,
                );
            }
        }

        Ok(CoreOutcome {
            spans,
            failed,
            halt_ms: time_ms,
            down,
            memory: memory.into_trace(),
            processor_count: n_proc,
        })
    }
}

/// Raw result of the engine loop, shared by the fault-free and faulted
/// entry points. The fault-free path asserts every span slot is filled;
/// the faulted path derives the orphan set before publishing it as a
/// [`FaultOutcome`].
struct CoreOutcome {
    spans: Vec<Option<Span>>,
    failed: Vec<FailedTask>,
    halt_ms: f64,
    down: Vec<bool>,
    memory: Vec<crate::memory::MemorySample>,
    processor_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::ProcessorKind;

    fn soc() -> SocSpec {
        SocSpec::kirin_990()
    }

    fn id(soc: &SocSpec, kind: ProcessorKind) -> ProcessorId {
        soc.processor_by_kind(kind).expect("preset has processor")
    }

    #[test]
    fn single_task_takes_solo_time() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("solo", npu, 10.0));
        let trace = sim.run().expect("runs");
        // NPU never throttles at steady state, no co-runners.
        assert!((trace.makespan_ms() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn dependencies_serialize_execution() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let gpu = id(&soc, ProcessorKind::Gpu);
        let mut sim = Simulation::new(soc);
        let a = sim.add_task(TaskSpec::new("a", npu, 5.0));
        sim.add_task(TaskSpec::new("b", gpu, 5.0).after(a));
        let trace = sim.run().expect("runs");
        let a_span = trace.span(0).expect("ran");
        let b_span = trace.span(1).expect("ran");
        assert!(b_span.start_ms >= a_span.end_ms);
    }

    #[test]
    fn coexecution_slows_both_sides_symmetrically() {
        let mut soc = soc();
        soc.thermal_mode = crate::thermal::ThermalMode::Disabled;
        let cpu = id(&soc, ProcessorKind::CpuBig);
        let gpu = id(&soc, ProcessorKind::Gpu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("c", cpu, 100.0).intensity(1.0));
        sim.add_task(TaskSpec::new("g", gpu, 100.0).intensity(1.0));
        let trace = sim.run().expect("runs");
        let sc = trace.span(0).expect("ran").slowdown();
        let sg = trace.span(1).expect("ran").slowdown();
        assert!(sc > 0.15, "CPU-GPU interference is strong, got {sc}");
        // Observation 1: equal-priority co-execution suffers identical
        // slowdown on both sides (same gamma, same intensities).
        assert!((sc - sg).abs() < 1e-6, "slowdown must be symmetric");
    }

    #[test]
    fn npu_corunner_barely_slows_cpu() {
        let mut soc = soc();
        soc.thermal_mode = crate::thermal::ThermalMode::Disabled;
        let cpu = id(&soc, ProcessorKind::CpuBig);
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("c", cpu, 100.0).intensity(1.0));
        sim.add_task(TaskSpec::new("n", npu, 100.0).intensity(1.0));
        let trace = sim.run().expect("runs");
        let sc = trace.span(0).expect("ran").slowdown();
        assert!(sc < 0.06, "CPU-NPU interference is weak, got {sc}");
    }

    #[test]
    fn fifo_order_is_respected_per_processor() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("first", npu, 3.0));
        sim.add_task(TaskSpec::new("second", npu, 3.0));
        let trace = sim.run().expect("runs");
        assert!(trace.span(1).unwrap().start_ms >= trace.span(0).unwrap().end_ms);
    }

    #[test]
    fn cycle_is_reported() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        // Forge a forward dependency to create a 2-cycle.
        let mut a = TaskSpec::new("a", npu, 1.0);
        a.deps.push(TaskId(1));
        let a = sim.add_task(a);
        sim.add_task(TaskSpec::new("b", npu, 1.0).after(a));
        let err = sim.run().expect_err("cycle must be detected");
        assert!(matches!(err, SimError::CyclicDependency { stuck: 2 }));
    }

    #[test]
    fn unknown_processor_is_reported() {
        let soc = soc();
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("x", ProcessorId(99), 1.0));
        assert!(matches!(
            sim.run(),
            Err(SimError::UnknownProcessor { index: 99, .. })
        ));
    }

    #[test]
    fn invalid_duration_is_reported() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("x", npu, f64::NAN));
        assert!(matches!(sim.run(), Err(SimError::InvalidDuration { .. })));
    }

    #[test]
    fn zero_duration_tasks_complete() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        let a = sim.add_task(TaskSpec::new("zero", npu, 0.0));
        sim.add_task(TaskSpec::new("next", npu, 1.0).after(a));
        let trace = sim.run().expect("runs");
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.span(0).unwrap().duration_ms(), 0.0);
    }

    #[test]
    fn determinism_same_input_same_trace() {
        let build = || {
            let soc = soc();
            let cpu = id(&soc, ProcessorKind::CpuBig);
            let gpu = id(&soc, ProcessorKind::Gpu);
            let npu = id(&soc, ProcessorKind::Npu);
            let mut sim = Simulation::new(soc);
            let mut prev: Option<TaskId> = None;
            for i in 0..30 {
                let p = match i % 3 {
                    0 => cpu,
                    1 => gpu,
                    _ => npu,
                };
                let mut t = TaskSpec::new(format!("t{i}"), p, 1.0 + (i % 7) as f64)
                    .intensity(0.1 * (i % 5) as f64);
                if i % 4 == 0 {
                    if let Some(pv) = prev {
                        t = t.after(pv);
                    }
                }
                prev = Some(sim.add_task(t));
            }
            sim.run().expect("runs")
        };
        let t1 = build();
        let t2 = build();
        assert_eq!(t1.spans, t2.spans);
    }

    #[test]
    fn release_times_delay_task_starts() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("late", npu, 5.0).release(100.0));
        let trace = sim.run().expect("runs");
        let s = trace.span(0).expect("ran");
        assert!((s.start_ms - 100.0).abs() < 1e-9, "start {}", s.start_ms);
        assert!((trace.makespan_ms() - 105.0).abs() < 1e-6);
    }

    #[test]
    fn released_task_preempts_idle_wait() {
        // A long task runs on the NPU; a task released mid-way on the
        // idle GPU must start at its release time, not when the NPU task
        // finishes.
        let mut soc = soc();
        soc.thermal_mode = crate::thermal::ThermalMode::Disabled;
        let npu = id(&soc, ProcessorKind::Npu);
        let gpu = id(&soc, ProcessorKind::Gpu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("long", npu, 100.0));
        sim.add_task(TaskSpec::new("mid", gpu, 10.0).release(30.0));
        let trace = sim.run().expect("runs");
        let mid = trace.span(1).expect("ran");
        assert!((mid.start_ms - 30.0).abs() < 1e-9, "start {}", mid.start_ms);
    }

    #[test]
    fn releases_compose_with_dependencies() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        let a = sim.add_task(TaskSpec::new("a", npu, 10.0));
        // Successor is both dependent on `a` (ends at 10) and released at
        // 50: the later constraint governs.
        sim.add_task(TaskSpec::new("b", npu, 5.0).after(a).release(50.0));
        let trace = sim.run().expect("runs");
        assert!((trace.span(1).unwrap().start_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_release_is_reported() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("x", npu, 1.0).release(f64::NAN));
        assert!(matches!(sim.run(), Err(SimError::InvalidDuration { .. })));
    }

    #[test]
    fn event_log_brackets_every_task() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let gpu = id(&soc, ProcessorKind::Gpu);
        let mut sim = Simulation::new(soc);
        let a = sim.add_task(TaskSpec::new("a", npu, 5.0).intensity(0.8));
        sim.add_task(TaskSpec::new("b", gpu, 4.0).intensity(0.5).after(a));
        sim.add_task(TaskSpec::new("c", npu, 2.0).release(1.0));
        let (trace, events) = sim.run_with_events().expect("runs");
        assert_eq!(trace.spans.len(), 3);
        // Every task gets exactly one ready, one start and one finish,
        // and they agree with the trace timestamps.
        for span in &trace.spans {
            let t = span.task;
            let ready: Vec<_> = events
                .iter()
                .filter(|e| matches!(e, EngineEvent::Ready { task, .. } if *task == t))
                .collect();
            assert_eq!(ready.len(), 1, "task {t} ready events");
            let starts: Vec<_> = events
                .iter()
                .filter(|e| matches!(e, EngineEvent::Start { task, .. } if *task == t))
                .collect();
            assert_eq!(starts.len(), 1, "task {t} start events");
            assert!((starts[0].time_ms() - span.start_ms).abs() < 1e-9);
            let finishes: Vec<_> = events
                .iter()
                .filter(|e| matches!(e, EngineEvent::Finish { task, .. } if *task == t))
                .collect();
            assert_eq!(finishes.len(), 1, "task {t} finish events");
            assert!((finishes[0].time_ms() - span.end_ms).abs() < 1e-9);
        }
        // Events come out in simulation-time order.
        for w in events.windows(2) {
            assert!(w[1].time_ms() >= w[0].time_ms() - 1e-9);
        }
        // The logged run produces the identical trace.
        let soc2 = SocSpec::kirin_990();
        let npu2 = id(&soc2, ProcessorKind::Npu);
        let gpu2 = id(&soc2, ProcessorKind::Gpu);
        let mut plain = Simulation::new(soc2);
        let a2 = plain.add_task(TaskSpec::new("a", npu2, 5.0).intensity(0.8));
        plain.add_task(TaskSpec::new("b", gpu2, 4.0).intensity(0.5).after(a2));
        plain.add_task(TaskSpec::new("c", npu2, 2.0).release(1.0));
        assert_eq!(plain.run().expect("runs").spans, trace.spans);
    }

    #[test]
    fn event_json_lines_are_well_formed() {
        let soc = soc();
        let cpu = id(&soc, ProcessorKind::CpuBig);
        let gpu = id(&soc, ProcessorKind::Gpu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("c", cpu, 10.0).intensity(1.0));
        sim.add_task(TaskSpec::new("g", gpu, 10.0).intensity(1.0));
        let (_, events) = sim.run_with_events().expect("runs");
        assert!(events
            .iter()
            .any(|e| matches!(e, EngineEvent::Rate { slowdown, .. } if *slowdown > 0.0)));
        for e in &events {
            let line = e.json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"event\":\""), "{line}");
            assert!(line.contains("\"time_ms\":"), "{line}");
            assert!(!line.contains('\n'), "one line per event: {line}");
        }
    }

    #[test]
    fn empty_injector_reproduces_plain_run_exactly() {
        let build = || {
            let soc = soc();
            let npu = id(&soc, ProcessorKind::Npu);
            let gpu = id(&soc, ProcessorKind::Gpu);
            let mut sim = Simulation::new(soc);
            let a = sim.add_task(TaskSpec::new("a", npu, 5.0).intensity(0.8));
            sim.add_task(TaskSpec::new("b", gpu, 4.0).intensity(0.5).after(a));
            sim.add_task(TaskSpec::new("c", npu, 2.0).release(1.0));
            sim
        };
        let plain = build().run().expect("runs");
        let inj = crate::faults::FaultInjector::new(4);
        let (outcome, events) = build().run_faulted(&inj).expect("runs");
        assert!(outcome.is_complete());
        assert_eq!(outcome.completed_trace().spans, plain.spans);
        assert!(!events.iter().any(|e| matches!(
            e,
            EngineEvent::ProcessorDown { .. }
                | EngineEvent::Throttle { .. }
                | EngineEvent::TaskFailed { .. }
        )));
    }

    #[test]
    fn dropout_kills_running_task_and_orphans_successors() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let gpu = id(&soc, ProcessorKind::Gpu);
        let mut sim = Simulation::new(soc);
        let a = sim.add_task(TaskSpec::new("victim", npu, 10.0));
        sim.add_task(TaskSpec::new("orphan", gpu, 1.0).after(a));
        sim.add_task(TaskSpec::new("survivor", gpu, 3.0));
        let inj = crate::faults::FaultInjector::new(4).dropout(npu, 4.0);
        let (outcome, events) = sim.run_faulted(&inj).expect("runs");
        assert!(!outcome.is_complete());
        assert_eq!(outcome.completed_count(), 1);
        assert!(outcome.spans[2].is_some(), "survivor completes");
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].task, 0);
        assert_eq!(outcome.failed[0].kind, crate::faults::FaultKind::Dropout);
        assert!((outcome.failed[0].at_ms - 4.0).abs() < 1e-9);
        assert_eq!(outcome.orphaned, vec![1]);
        assert!(outcome.down[npu.index()]);
        assert!(events.iter().any(
            |e| matches!(e, EngineEvent::ProcessorDown { processor, .. } if *processor == npu)
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            EngineEvent::TaskFailed {
                task: 0,
                kind: FaultKind::Dropout,
                ..
            }
        )));
    }

    #[test]
    fn nothing_starts_on_a_down_processor() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("late", npu, 5.0).release(10.0));
        let inj = crate::faults::FaultInjector::new(4).dropout(npu, 0.0);
        let (outcome, events) = sim.run_faulted(&inj).expect("runs");
        assert_eq!(outcome.completed_count(), 0);
        assert_eq!(outcome.orphaned, vec![0]);
        assert!(!events
            .iter()
            .any(|e| matches!(e, EngineEvent::Start { .. })));
    }

    #[test]
    fn throttle_stretches_exactly_by_its_factor() {
        let mut soc = soc();
        soc.thermal_mode = crate::thermal::ThermalMode::Disabled;
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("t", npu, 10.0));
        // Half rate over [0, 100): 10 ms of work takes 20 ms.
        let inj = crate::faults::FaultInjector::new(4).throttle(npu, 0.0, 100.0, 0.5);
        let (outcome, events) = sim.run_faulted(&inj).expect("runs");
        assert!(outcome.is_complete());
        let span = outcome.spans[0].as_ref().expect("completed");
        assert!(
            (span.end_ms - 20.0).abs() < 1e-6,
            "throttled end {}",
            span.end_ms
        );
        // The throttle factor reaches the event log through the Rate
        // events' thermal factor, plus a Throttle marker.
        assert!(events.iter().any(|e| matches!(
            e,
            EngineEvent::Rate { thermal_factor, .. } if (*thermal_factor - 0.5).abs() < 1e-12
        )));
        assert!(events.iter().any(
            |e| matches!(e, EngineEvent::Throttle { factor, .. } if (*factor - 0.5).abs() < 1e-12)
        ));
    }

    #[test]
    fn throttle_lift_mid_task_changes_rate_at_boundary() {
        let mut soc = soc();
        soc.thermal_mode = crate::thermal::ThermalMode::Disabled;
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("t", npu, 10.0));
        // Half rate over [0, 10): 5 ms of work done by t=10, the rest at
        // full rate: end = 10 + 5 = 15.
        let inj = crate::faults::FaultInjector::new(4).throttle(npu, 0.0, 10.0, 0.5);
        let (outcome, _events) = sim.run_faulted(&inj).expect("runs");
        let span = outcome.spans[0].as_ref().expect("completed");
        assert!((span.end_ms - 15.0).abs() < 1e-6, "end {}", span.end_ms);
    }

    #[test]
    fn transient_failure_fires_at_fraction_of_solo_work() {
        let mut soc = soc();
        soc.thermal_mode = crate::thermal::ThermalMode::Disabled;
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("flaky", npu, 10.0));
        let inj = crate::faults::FaultInjector::new(4).fail_task(0, 0.5);
        let (outcome, events) = sim.run_faulted(&inj).expect("runs");
        assert_eq!(outcome.completed_count(), 0);
        assert_eq!(outcome.failed.len(), 1);
        let f = &outcome.failed[0];
        assert_eq!(f.kind, crate::faults::FaultKind::Transient);
        // Solo rate on an idle NPU is 1.0, so 50% of 10 ms dies at t=5.
        assert!((f.at_ms - 5.0).abs() < 1e-6, "failed at {}", f.at_ms);
        assert!(events.iter().any(|e| matches!(
            e,
            EngineEvent::TaskFailed {
                task: 0,
                kind: FaultKind::Transient,
                ..
            }
        )));
    }

    #[test]
    fn faulted_runs_audit_clean_per_scenario() {
        // Every fault class ends in a clean faulted audit: the replay
        // reconciliation must integrate the faulted rates exactly.
        let scenarios: Vec<crate::faults::FaultInjector> = vec![
            crate::faults::FaultInjector::new(4),
            crate::faults::FaultInjector::new(4).dropout(ProcessorId(3), 4.0),
            crate::faults::FaultInjector::new(4).throttle(ProcessorId(0), 2.0, 9.0, 0.4),
            crate::faults::FaultInjector::new(4).fail_task(1, 0.3),
            crate::faults::FaultInjector::new(4)
                .dropout(ProcessorId(2), 6.0)
                .throttle(ProcessorId(0), 0.0, 5.0, 0.6)
                .fail_task(4, 0.7),
        ];
        for (si, inj) in scenarios.into_iter().enumerate() {
            let soc = soc();
            let cpu = id(&soc, ProcessorKind::CpuBig);
            let gpu = id(&soc, ProcessorKind::Gpu);
            let npu = id(&soc, ProcessorKind::Npu);
            let mut sim = Simulation::new(soc.clone());
            let mut prev: Option<TaskId> = None;
            for i in 0..9 {
                let p = match i % 3 {
                    0 => cpu,
                    1 => gpu,
                    _ => npu,
                };
                let mut t = TaskSpec::new(format!("t{i}"), p, 2.0 + (i % 4) as f64)
                    .intensity(0.2 * (i % 4) as f64)
                    .release(0.5 * i as f64);
                if i % 3 == 2 {
                    if let Some(pv) = prev {
                        t = t.after(pv);
                    }
                }
                prev = Some(sim.add_task(t));
            }
            let tasks = sim.tasks().to_vec();
            let (outcome, events) = sim.run_faulted(&inj).expect("runs");
            let report = crate::audit::audit_faulted(&soc, &tasks, &events, &outcome);
            assert!(report.is_clean(), "scenario {si}:\n{report}");
        }
    }

    #[test]
    fn injector_processor_count_mismatch_is_reported() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("t", npu, 1.0));
        let inj = crate::faults::FaultInjector::new(2);
        assert!(matches!(
            sim.run_faulted(&inj),
            Err(SimError::UnknownProcessor { .. })
        ));
    }

    #[test]
    fn memory_overcommit_slows_everything() {
        let mut soc = soc();
        soc.thermal_mode = crate::thermal::ThermalMode::Disabled;
        let npu = id(&soc, ProcessorKind::Npu);
        let cap = soc.memory.capacity_bytes;
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("huge", npu, 10.0).footprint(cap + 1));
        let trace = sim.run().expect("runs");
        assert!(
            trace.span(0).unwrap().duration_ms() > 10.0 * 1.5,
            "page faults must stretch execution"
        );
    }
}
