//! Trace auditing: validates an executed [`Trace`] against the
//! simulator's contracts.
//!
//! The engine is deterministic, but determinism alone does not prove a
//! trace is *physically meaningful* — a bug in queueing, rate math or
//! the memory ledger produces a perfectly repeatable wrong answer. The
//! auditor re-derives every invariant the engine is supposed to uphold
//! from first principles, using only the submitted [`TaskSpec`]s, the
//! [`SocSpec`] and the finished [`Trace`]:
//!
//! 1. **Shape** — one span per task, matching processor/solo-time/label,
//!    finite and ordered timestamps.
//! 2. **Exclusivity** — spans on one processor never overlap.
//! 3. **Releases** — no span starts before its task's `release_ms`.
//! 4. **Dependencies** — no span starts before all of its dependencies
//!    have ended.
//! 5. **FIFO** — per processor, tasks start in queue-entry order, where
//!    the entry time is reconstructed as `max(release, latest dep end)`
//!    with the engine's task-id tie-break.
//! 6. **Slowdown bounds** — every span takes at least its solo time, and
//!    no longer than the worst case the
//!    [`CouplingMatrix`](crate::interference::CouplingMatrix), thermal
//!    throttling and memory paging can jointly justify.
//! 7. **Bubble accounting** — [`Trace::idle_bubble_ms`] reconciles with
//!    an independent per-processor gap summation (the trace-level
//!    analogue of the paper's Def. 3).
//! 8. **Memory ledger** — samples are time-ordered, internally
//!    consistent, never exceed the sum of all footprints, and drain to
//!    zero by the end of the run.
//!
//! [`audit`] returns an [`AuditReport`] listing every violation found;
//! it never panics, so callers can render violations or gate on them
//! (`h2p trace --audit` exits nonzero on a dirty report, and
//! `execute_with_arrivals` asserts a clean report in debug builds).

use std::fmt;

use crate::engine::{EngineEvent, TaskId, TaskSpec};
use crate::soc::SocSpec;
use crate::thermal::{ThermalMode, ThermalSpec};
use crate::timeline::{Span, Trace};

/// Absolute tolerance for event-time comparisons, matching the engine's
/// completion epsilon.
const TIME_EPS: f64 = 1e-6;

/// One contract violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The trace does not have exactly one span per submitted task, or a
    /// span disagrees with its spec (task id, processor, solo time).
    Shape {
        /// Description of the mismatch.
        detail: String,
    },
    /// Two spans overlap on one processor.
    Overlap {
        /// Processor index.
        processor: usize,
        /// Earlier span's task id.
        first: usize,
        /// Later span's task id.
        second: usize,
        /// Overlap amount in ms.
        by_ms: f64,
    },
    /// A span starts before its task's release time.
    EarlyStart {
        /// Task id.
        task: usize,
        /// Observed start.
        start_ms: f64,
        /// Required release.
        release_ms: f64,
    },
    /// A span starts before one of its dependencies ends.
    DependencyOrder {
        /// Task id.
        task: usize,
        /// The dependency that had not finished.
        dependency: usize,
        /// Observed start of the dependent task.
        start_ms: f64,
        /// End of the dependency.
        dep_end_ms: f64,
    },
    /// Two tasks on one processor started out of queue-entry order.
    FifoOrder {
        /// Processor index.
        processor: usize,
        /// The task that entered the queue first.
        earlier: usize,
        /// The task that entered later but started first.
        later: usize,
    },
    /// A span finished faster than its solo time allows.
    TooFast {
        /// Task id.
        task: usize,
        /// Observed duration.
        duration_ms: f64,
        /// The task's solo time.
        solo_ms: f64,
    },
    /// A span took longer than interference, throttling and paging can
    /// jointly explain.
    TooSlow {
        /// Task id.
        task: usize,
        /// Observed duration.
        duration_ms: f64,
        /// The conservative upper bound.
        bound_ms: f64,
    },
    /// `Trace::idle_bubble_ms` disagrees with an independent
    /// recomputation from the spans.
    BubbleMismatch {
        /// The trace's reported value.
        reported_ms: f64,
        /// The independently recomputed value.
        recomputed_ms: f64,
    },
    /// The memory trace is inconsistent (unordered samples, phantom
    /// allocations, or a ledger that never drains).
    MemoryLedger {
        /// Description of the inconsistency.
        detail: String,
    },
    /// The event log itself is malformed (double start, finish without
    /// start, rate for an idle task, or a task that never finishes).
    ReplayLog {
        /// Description of the malformation.
        detail: String,
    },
    /// A span's claimed boundaries disagree with the exact boundaries
    /// replayed from the event log.
    ReplaySpan {
        /// Task id.
        task: usize,
        /// The trace's claimed start.
        claimed_start_ms: f64,
        /// The trace's claimed end.
        claimed_end_ms: f64,
        /// Start replayed from the event log.
        replayed_start_ms: f64,
        /// End replayed from the event log.
        replayed_end_ms: f64,
    },
    /// Integrating the piecewise rates over a task's span does not
    /// accumulate its solo work: the log's rates cannot explain the
    /// claimed duration.
    ReplayProgress {
        /// Task id.
        task: usize,
        /// `∫ rate(t) dt` over the replayed span.
        integrated_ms: f64,
        /// The task's solo time (the work that must be accumulated).
        solo_ms: f64,
    },
    /// The trace's makespan disagrees with the last finish event.
    ReplayMakespan {
        /// The trace's claimed makespan.
        claimed_ms: f64,
        /// Latest finish time in the event log.
        replayed_ms: f64,
    },
}

impl Violation {
    /// The task a violation is anchored to, when it concerns one
    /// specific task (used to place audit markers on trace timelines).
    pub fn task(&self) -> Option<usize> {
        match self {
            Violation::Overlap { second, .. } => Some(*second),
            Violation::EarlyStart { task, .. }
            | Violation::DependencyOrder { task, .. }
            | Violation::TooFast { task, .. }
            | Violation::TooSlow { task, .. }
            | Violation::ReplaySpan { task, .. }
            | Violation::ReplayProgress { task, .. } => Some(*task),
            Violation::FifoOrder { later, .. } => Some(*later),
            Violation::Shape { .. }
            | Violation::BubbleMismatch { .. }
            | Violation::MemoryLedger { .. }
            | Violation::ReplayLog { .. }
            | Violation::ReplayMakespan { .. } => None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Shape { detail } => write!(f, "shape: {detail}"),
            Violation::Overlap {
                processor,
                first,
                second,
                by_ms,
            } => write!(
                f,
                "overlap: tasks {first} and {second} overlap by {by_ms:.6} ms on processor {processor}"
            ),
            Violation::EarlyStart {
                task,
                start_ms,
                release_ms,
            } => write!(
                f,
                "release: task {task} started at {start_ms:.6} ms before its release {release_ms:.6} ms"
            ),
            Violation::DependencyOrder {
                task,
                dependency,
                start_ms,
                dep_end_ms,
            } => write!(
                f,
                "dependency: task {task} started at {start_ms:.6} ms before dependency {dependency} ended at {dep_end_ms:.6} ms"
            ),
            Violation::FifoOrder {
                processor,
                earlier,
                later,
            } => write!(
                f,
                "fifo: task {later} started before task {earlier} on processor {processor} despite entering the queue later"
            ),
            Violation::TooFast {
                task,
                duration_ms,
                solo_ms,
            } => write!(
                f,
                "too fast: task {task} ran {duration_ms:.6} ms, under its solo time {solo_ms:.6} ms"
            ),
            Violation::TooSlow {
                task,
                duration_ms,
                bound_ms,
            } => write!(
                f,
                "too slow: task {task} ran {duration_ms:.6} ms, beyond the worst-case bound {bound_ms:.6} ms"
            ),
            Violation::BubbleMismatch {
                reported_ms,
                recomputed_ms,
            } => write!(
                f,
                "bubble: trace reports {reported_ms:.6} ms idle but spans account for {recomputed_ms:.6} ms"
            ),
            Violation::MemoryLedger { detail } => write!(f, "memory: {detail}"),
            Violation::ReplayLog { detail } => write!(f, "replay: {detail}"),
            Violation::ReplaySpan {
                task,
                claimed_start_ms,
                claimed_end_ms,
                replayed_start_ms,
                replayed_end_ms,
            } => write!(
                f,
                "replay: task {task} claims [{claimed_start_ms:.6}, {claimed_end_ms:.6}] ms but the event log replays [{replayed_start_ms:.6}, {replayed_end_ms:.6}] ms"
            ),
            Violation::ReplayProgress {
                task,
                integrated_ms,
                solo_ms,
            } => write!(
                f,
                "replay: task {task} accumulates {integrated_ms:.6} ms of solo-equivalent work under the logged rates, but its solo time is {solo_ms:.6} ms"
            ),
            Violation::ReplayMakespan {
                claimed_ms,
                replayed_ms,
            } => write!(
                f,
                "replay: trace makespan {claimed_ms:.6} ms disagrees with the last logged finish at {replayed_ms:.6} ms"
            ),
        }
    }
}

/// The result of auditing one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Every violation found, in check order.
    pub violations: Vec<Violation>,
    /// Number of individual checks performed.
    pub checks: usize,
}

impl AuditReport {
    /// Whether the trace passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            writeln!(f, "audit: clean ({} checks)", self.checks)
        } else {
            writeln!(
                f,
                "audit: {} violation(s) in {} checks",
                self.violations.len(),
                self.checks
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Audits `trace` against the contracts implied by `tasks` and `soc`.
///
/// The audit is pure and panic-free: every failed invariant becomes a
/// [`Violation`] in the returned report. A trace produced by
/// [`crate::engine::Simulation::run`] from the same `tasks` and `soc`
/// always audits clean; the checks exist to catch corrupted, hand-built
/// or regression-bugged traces.
pub fn audit(soc: &SocSpec, tasks: &[TaskSpec], trace: &Trace) -> AuditReport {
    let mut violations = Vec::new();
    let mut checks = 0usize;

    check_shape(soc, tasks, trace, &mut violations, &mut checks);
    // Everything below indexes spans by task id; bail out early if the
    // shape is too broken for that to be meaningful.
    if trace.spans.len() != tasks.len() || trace.spans.iter().enumerate().any(|(i, s)| s.task != i)
    {
        return AuditReport { violations, checks };
    }

    check_exclusivity(trace, &mut violations, &mut checks);
    check_releases(tasks, trace, &mut violations, &mut checks);
    check_dependencies(tasks, trace, &mut violations, &mut checks);
    check_fifo(tasks, trace, &mut violations, &mut checks);
    check_duration_bounds(soc, tasks, trace, &mut violations, &mut checks);
    check_bubbles(trace, &mut violations, &mut checks);
    check_memory(soc, tasks, trace, &mut violations, &mut checks);

    AuditReport { violations, checks }
}

fn check_shape(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    *checks += 1;
    if trace.spans.len() != tasks.len() {
        violations.push(Violation::Shape {
            detail: format!(
                "{} spans for {} submitted tasks",
                trace.spans.len(),
                tasks.len()
            ),
        });
    }
    *checks += 1;
    if trace.processor_count != soc.processors.len() {
        violations.push(Violation::Shape {
            detail: format!(
                "trace claims {} processors, SoC has {}",
                trace.processor_count,
                soc.processors.len()
            ),
        });
    }
    for (i, span) in trace.spans.iter().enumerate() {
        *checks += 1;
        if span.task != i {
            violations.push(Violation::Shape {
                detail: format!("span {i} records task id {}", span.task),
            });
            continue;
        }
        let Some(spec) = tasks.get(i) else { continue };
        if span.processor != spec.processor {
            violations.push(Violation::Shape {
                detail: format!(
                    "task {i} ran on processor {} but was pinned to {}",
                    span.processor.index(),
                    spec.processor.index()
                ),
            });
        }
        if (span.solo_ms - spec.solo_ms).abs() > TIME_EPS {
            violations.push(Violation::Shape {
                detail: format!(
                    "task {i} span records solo {} ms, spec says {} ms",
                    span.solo_ms, spec.solo_ms
                ),
            });
        }
        if !(span.start_ms.is_finite() && span.end_ms.is_finite())
            || span.end_ms < span.start_ms - TIME_EPS
            || span.start_ms < -TIME_EPS
        {
            violations.push(Violation::Shape {
                detail: format!(
                    "task {i} has malformed timestamps [{}, {}]",
                    span.start_ms, span.end_ms
                ),
            });
        }
    }
}

fn check_exclusivity(trace: &Trace, violations: &mut Vec<Violation>, checks: &mut usize) {
    for p in 0..trace.processor_count {
        let mut spans: Vec<&Span> = trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .collect();
        spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        for w in spans.windows(2) {
            *checks += 1;
            let gap = w[1].start_ms - w[0].end_ms;
            if gap < -TIME_EPS {
                violations.push(Violation::Overlap {
                    processor: p,
                    first: w[0].task,
                    second: w[1].task,
                    by_ms: -gap,
                });
            }
        }
    }
}

fn check_releases(
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    for (i, spec) in tasks.iter().enumerate() {
        *checks += 1;
        let span = &trace.spans[i];
        if span.start_ms < spec.release_ms - TIME_EPS {
            violations.push(Violation::EarlyStart {
                task: i,
                start_ms: span.start_ms,
                release_ms: spec.release_ms,
            });
        }
    }
}

fn check_dependencies(
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    for (i, spec) in tasks.iter().enumerate() {
        let span = &trace.spans[i];
        for d in &spec.deps {
            *checks += 1;
            let Some(dep_span) = trace.spans.get(d.index()) else {
                continue;
            };
            if span.start_ms < dep_span.end_ms - TIME_EPS {
                violations.push(Violation::DependencyOrder {
                    task: i,
                    dependency: d.index(),
                    start_ms: span.start_ms,
                    dep_end_ms: dep_span.end_ms,
                });
            }
        }
    }
}

/// The time at which task `i` became eligible for its processor queue:
/// its release, or the end of its latest dependency, whichever is later.
fn entry_time(tasks: &[TaskSpec], trace: &Trace, i: usize) -> f64 {
    let dep_end = tasks[i]
        .deps
        .iter()
        .filter_map(|d| trace.spans.get(d.index()))
        .map(|s| s.end_ms)
        .fold(0.0f64, f64::max);
    tasks[i].release_ms.max(dep_end)
}

fn check_fifo(
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    for p in 0..trace.processor_count {
        let mut entries: Vec<(f64, usize)> = (0..tasks.len())
            .filter(|&i| tasks[i].processor.index() == p)
            .map(|i| (entry_time(tasks, trace, i), i))
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for w in entries.windows(2) {
            let (entry_a, a) = w[0];
            let (entry_b, b) = w[1];
            // Equal entries (within tolerance) are only ordered by the
            // engine when they join the queue at the same event, so the
            // id tie-break is enforced for exact ties only.
            let strictly_earlier = entry_a < entry_b - TIME_EPS;
            let tie_by_id = entry_a == entry_b && a < b;
            if !(strictly_earlier || tie_by_id) {
                continue;
            }
            *checks += 1;
            if trace.spans[a].start_ms > trace.spans[b].start_ms + TIME_EPS {
                violations.push(Violation::FifoOrder {
                    processor: p,
                    earlier: a,
                    later: b,
                });
            }
        }
    }
}

/// The conservative per-task duration ceiling the plain [`audit`]
/// enforces: `solo · (1 + slow_max) / (thermal_min · mem_min)`, where
/// `slow_max` sums each other processor's most intense overlapping
/// span through the coupling matrix. This is a *worst-case envelope* —
/// it assumes maximal co-execution for the whole span, throttling from
/// the first instant, and paging whenever the run ever over-committed.
/// The exact check is [`audit_with_events`], which replays the
/// piecewise rates from the event log; this bound exists for callers
/// that only have a trace (and for crafting in-envelope corruptions in
/// tests).
pub fn conservative_bound_ms(soc: &SocSpec, tasks: &[TaskSpec], trace: &Trace, task: usize) -> f64 {
    let paged = trace
        .memory
        .iter()
        .any(|s| s.allocated_bytes > soc.memory.capacity_bytes);
    let mem_min = if paged {
        soc.memory.page_fault_penalty
    } else {
        1.0
    };
    let spec = &tasks[task];
    let span = &trace.spans[task];

    // Conservative instantaneous slowdown ceiling: at any moment at
    // most one task runs per other processor, so the worst case sums
    // each other processor's most intense overlapping span.
    let me = &soc.processors[spec.processor.index()];
    let mut slow_max = 0.0;
    for (q, other_proc) in soc.processors.iter().enumerate() {
        if q == spec.processor.index() {
            continue;
        }
        let worst_intensity = trace
            .spans
            .iter()
            .filter(|s| {
                s.processor.index() == q
                    && s.start_ms < span.end_ms + TIME_EPS
                    && s.end_ms > span.start_ms - TIME_EPS
            })
            .map(|s| tasks[s.task].intensity.max(0.0))
            .fold(0.0f64, f64::max);
        slow_max += soc.coupling.coupling(me, other_proc) * worst_intensity;
    }
    slow_max *= spec.sensitivity.max(0.0);

    let thermal_min = if soc.thermal_mode == ThermalMode::Disabled {
        1.0
    } else {
        ThermalSpec::for_kind(me.kind).throttle_factor
    };
    spec.solo_ms * (1.0 + slow_max) / (thermal_min * mem_min) + TIME_EPS
}

fn check_duration_bounds(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    for (i, spec) in tasks.iter().enumerate() {
        let span = &trace.spans[i];
        let duration = span.end_ms - span.start_ms;

        *checks += 1;
        if duration < spec.solo_ms - TIME_EPS {
            violations.push(Violation::TooFast {
                task: i,
                duration_ms: duration,
                solo_ms: spec.solo_ms,
            });
        }

        let bound = conservative_bound_ms(soc, tasks, trace, i);
        *checks += 1;
        if duration > bound {
            violations.push(Violation::TooSlow {
                task: i,
                duration_ms: duration,
                bound_ms: bound,
            });
        }
    }
}

fn check_bubbles(trace: &Trace, violations: &mut Vec<Violation>, checks: &mut usize) {
    // Independent recomputation of Def. 3 idle bubbles: per processor,
    // the gaps between consecutive spans.
    let mut recomputed = 0.0;
    for p in 0..trace.processor_count {
        let mut spans: Vec<&Span> = trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .collect();
        spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        for w in spans.windows(2) {
            recomputed += (w[1].start_ms - w[0].end_ms).max(0.0);
        }
    }
    *checks += 1;
    let reported = trace.idle_bubble_ms();
    if !(reported - recomputed).abs().is_finite() || (reported - recomputed).abs() > TIME_EPS {
        violations.push(Violation::BubbleMismatch {
            reported_ms: reported,
            recomputed_ms: recomputed,
        });
    }
}

fn check_memory(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    let samples = &trace.memory;
    *checks += 1;
    if samples.is_empty() {
        if !tasks.is_empty() {
            violations.push(Violation::MemoryLedger {
                detail: "no memory samples recorded for a non-empty run".to_owned(),
            });
        }
        return;
    }
    *checks += 1;
    let Some(last) = samples.last() else {
        return; // unreachable: emptiness handled above
    };
    if last.allocated_bytes != 0 {
        violations.push(Violation::MemoryLedger {
            detail: format!(
                "{} bytes still allocated at the end of the run",
                last.allocated_bytes
            ),
        });
    }
    let total_footprint: u64 = tasks.iter().map(|t| t.footprint_bytes).sum();
    let capacity = soc.memory.capacity_bytes;
    let mut prev_time = f64::NEG_INFINITY;
    for (i, s) in samples.iter().enumerate() {
        *checks += 1;
        if s.time_ms < prev_time {
            violations.push(Violation::MemoryLedger {
                detail: format!(
                    "sample {i} at {} ms is earlier than its predecessor at {prev_time} ms",
                    s.time_ms
                ),
            });
        }
        prev_time = s.time_ms;
        if s.allocated_bytes > total_footprint {
            violations.push(Violation::MemoryLedger {
                detail: format!(
                    "sample {i} allocates {} bytes, more than all footprints combined ({total_footprint})",
                    s.allocated_bytes
                ),
            });
        }
        if s.available_bytes != capacity.saturating_sub(s.allocated_bytes) {
            violations.push(Violation::MemoryLedger {
                detail: format!(
                    "sample {i}: available {} inconsistent with capacity {} - allocated {}",
                    s.available_bytes, capacity, s.allocated_bytes
                ),
            });
        }
    }
}

/// One task's execution reconstructed exactly from the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedSpan {
    /// Time of the task's `Start` event.
    pub start_ms: f64,
    /// Time of the task's `Finish` event.
    pub end_ms: f64,
    /// Solo-equivalent work accumulated by integrating the piecewise
    /// rates over the span: `∫ rate(t) dt`. For a well-formed log this
    /// equals the task's solo time (the engine retires a task exactly
    /// when its remaining solo work reaches zero).
    pub integrated_ms: f64,
}

/// Replays the engine's piecewise-constant rates from an event log.
///
/// The engine emits a `Rate` event whenever a running task's effective
/// rate tuple changes (and always at its start, because the
/// per-processor memo resets on finish), so between consecutive events
/// every task's rate is exactly constant and the log is sufficient to
/// reconstruct each span's boundaries *and* the work it accumulated.
///
/// # Errors
///
/// Returns a description of the first structural problem found: an
/// out-of-range task id, a double start, or a rate/finish event for a
/// task that is not running. Tasks with no `Finish` event replay as
/// `None`.
pub fn replay(
    task_count: usize,
    events: &[EngineEvent],
) -> Result<Vec<Option<ReplayedSpan>>, String> {
    struct Run {
        start_ms: f64,
        last_ms: f64,
        rate: f64,
        progress: f64,
    }
    let mut running: Vec<Option<Run>> = (0..task_count).map(|_| None).collect();
    let mut out: Vec<Option<ReplayedSpan>> = vec![None; task_count];
    for ev in events {
        match ev {
            EngineEvent::Ready { task, .. } => {
                if *task >= task_count {
                    return Err(format!("ready event for unknown task {task}"));
                }
            }
            EngineEvent::Start { time_ms, task, .. } => {
                let Some(slot) = running.get_mut(*task) else {
                    return Err(format!("start event for unknown task {task}"));
                };
                if slot.is_some() || out[*task].is_some() {
                    return Err(format!("task {task} started more than once"));
                }
                *slot = Some(Run {
                    start_ms: *time_ms,
                    last_ms: *time_ms,
                    rate: 0.0,
                    progress: 0.0,
                });
            }
            EngineEvent::Rate {
                time_ms,
                task,
                slowdown,
                thermal_factor,
                memory_factor,
                ..
            } => {
                let Some(run) = running.get_mut(*task).and_then(Option::as_mut) else {
                    return Err(format!("rate event for task {task} which is not running"));
                };
                run.progress += run.rate * (time_ms - run.last_ms);
                run.last_ms = *time_ms;
                run.rate = thermal_factor * memory_factor / (1.0 + slowdown);
            }
            EngineEvent::Finish { time_ms, task, .. } => {
                let Some(run) = running.get_mut(*task).and_then(Option::take) else {
                    return Err(format!("finish event for task {task} which is not running"));
                };
                let progress = run.progress + run.rate * (time_ms - run.last_ms);
                out[*task] = Some(ReplayedSpan {
                    start_ms: run.start_ms,
                    end_ms: *time_ms,
                    integrated_ms: progress,
                });
            }
            // Fault markers carry no rate information; the throttle
            // multipliers they announce are already folded into the Rate
            // events, so replay integrates faulted rates exactly.
            EngineEvent::ProcessorDown { .. } | EngineEvent::Throttle { .. } => {}
            EngineEvent::TaskFailed { task, .. } => {
                if running.get_mut(*task).and_then(Option::take).is_none() {
                    return Err(format!(
                        "task_failed event for task {task} which is not running"
                    ));
                }
            }
        }
    }
    Ok(out)
}

fn check_replay(
    tasks: &[TaskSpec],
    events: &[EngineEvent],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    let replayed = match replay(tasks.len(), events) {
        Ok(replayed) => replayed,
        Err(detail) => {
            *checks += 1;
            violations.push(Violation::ReplayLog { detail });
            return;
        }
    };
    let mut last_finish = 0.0f64;
    for (i, rep) in replayed.iter().enumerate() {
        *checks += 1;
        let Some(rep) = rep else {
            violations.push(Violation::ReplayLog {
                detail: format!("task {i} never finished in the event log"),
            });
            continue;
        };
        last_finish = last_finish.max(rep.end_ms);
        let span = &trace.spans[i];
        if (span.start_ms - rep.start_ms).abs() > TIME_EPS
            || (span.end_ms - rep.end_ms).abs() > TIME_EPS
        {
            violations.push(Violation::ReplaySpan {
                task: i,
                claimed_start_ms: span.start_ms,
                claimed_end_ms: span.end_ms,
                replayed_start_ms: rep.start_ms,
                replayed_end_ms: rep.end_ms,
            });
        }
        // The engine retires a task when its remaining solo work drops
        // below its 1e-9 ms epsilon, so the integral must land on the
        // solo time up to accumulated float error over the event times.
        *checks += 1;
        let eps = TIME_EPS * (1.0 + tasks[i].solo_ms);
        if (rep.integrated_ms - tasks[i].solo_ms).abs() > eps {
            violations.push(Violation::ReplayProgress {
                task: i,
                integrated_ms: rep.integrated_ms,
                solo_ms: tasks[i].solo_ms,
            });
        }
    }
    *checks += 1;
    let claimed = trace.makespan_ms();
    if (claimed - last_finish).abs() > TIME_EPS {
        violations.push(Violation::ReplayMakespan {
            claimed_ms: claimed,
            replayed_ms: last_finish,
        });
    }
}

/// Audits `trace` as [`audit`] does, then reconciles it exactly against
/// the engine's event log: span boundaries, accumulated work under the
/// logged piecewise rates, and the makespan must all match. This
/// tightens the conservative [`conservative_bound_ms`] envelope to an
/// exact check — a span stretched anywhere inside the envelope passes
/// the plain audit but cannot survive replay.
pub fn audit_with_events(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    events: &[EngineEvent],
    trace: &Trace,
) -> AuditReport {
    let mut report = audit(soc, tasks, trace);
    // Same bail-out rule as `audit`: replay indexes spans by task id.
    if trace.spans.len() != tasks.len() || trace.spans.iter().enumerate().any(|(i, s)| s.task != i)
    {
        return report;
    }
    check_replay(
        tasks,
        events,
        trace,
        &mut report.violations,
        &mut report.checks,
    );
    report
}

/// Audits the completed subset of a faulted run ([`FaultOutcome`])
/// against the full contract battery, adapted for partial completion:
///
/// - Failed and orphaned tasks must have no span, and every dependency
///   of a completed task must itself have completed (a fault kills its
///   whole downstream cone). If that closure is broken the audit bails
///   out, because remapping the subset would be meaningless.
/// - The completed subset is remapped onto a compact task list and
///   audited with the fault-free families: shape, exclusivity,
///   releases, dependencies, FIFO, the too-fast floor, bubble
///   accounting, and the memory ledger (checked against the *original*
///   task list's footprint ceiling — failed tasks genuinely allocated
///   before they were aborted).
/// - The conservative too-*slow* envelope is deliberately skipped:
///   injected throttles can undercut the [`ThermalSpec`] floor, and
///   partially-run failed co-runners contribute slowdown without ever
///   producing a span. Exactness comes from the replay reconciliation
///   instead, which integrates the logged (faulted) piecewise rates:
///   completed spans must replay to their exact boundaries and solo
///   work, killed tasks must not replay a finish, and the last finish
///   must match the completed subset's makespan.
///
/// [`FaultOutcome`]: crate::faults::FaultOutcome
pub fn audit_faulted(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    events: &[EngineEvent],
    outcome: &crate::faults::FaultOutcome,
) -> AuditReport {
    let mut violations = Vec::new();
    let mut checks = 0usize;

    checks += 2;
    if outcome.spans.len() != tasks.len() {
        violations.push(Violation::Shape {
            detail: format!(
                "{} outcome slots for {} submitted tasks",
                outcome.spans.len(),
                tasks.len()
            ),
        });
        return AuditReport { violations, checks };
    }
    if outcome.processor_count != soc.processors.len() {
        violations.push(Violation::Shape {
            detail: format!(
                "outcome claims {} processors, SoC has {}",
                outcome.processor_count,
                soc.processors.len()
            ),
        });
        return AuditReport { violations, checks };
    }

    // A task the faults killed must not also claim a completed span.
    for f in &outcome.failed {
        checks += 1;
        if outcome.spans.get(f.task).is_some_and(Option::is_some) {
            violations.push(Violation::Shape {
                detail: format!("task {} both failed and completed", f.task),
            });
        }
    }
    for &o in &outcome.orphaned {
        checks += 1;
        if outcome.spans.get(o).is_some_and(Option::is_some) {
            violations.push(Violation::Shape {
                detail: format!("task {o} is both orphaned and completed"),
            });
        }
    }

    // Completed-closure invariant: every dependency of a completed task
    // completed. Without it the subset remap below would hide ordering
    // violations, so a broken closure bails out.
    for (i, s) in outcome.spans.iter().enumerate() {
        if s.is_none() {
            continue;
        }
        for d in &tasks[i].deps {
            checks += 1;
            if outcome.spans.get(d.index()).is_none_or(Option::is_none) {
                violations.push(Violation::Shape {
                    detail: format!(
                        "task {i} completed but its dependency {} did not",
                        d.index()
                    ),
                });
            }
        }
    }
    if !violations.is_empty() {
        return AuditReport { violations, checks };
    }

    // Remap the completed subset onto compact ids so the fault-free
    // contract families apply unchanged. The remap is order-preserving,
    // so the engine's task-id FIFO tie-break survives it.
    let completed: Vec<usize> = (0..tasks.len())
        .filter(|&i| outcome.spans[i].is_some())
        .collect();
    let mut new_id = vec![usize::MAX; tasks.len()];
    for (k, &i) in completed.iter().enumerate() {
        new_id[i] = k;
    }
    let sub_tasks: Vec<TaskSpec> = completed
        .iter()
        .map(|&i| {
            let mut t = tasks[i].clone();
            t.deps = t.deps.iter().map(|d| TaskId(new_id[d.index()])).collect();
            t
        })
        .collect();
    let sub_trace = Trace {
        spans: completed
            .iter()
            .enumerate()
            .filter_map(|(k, &i)| {
                outcome.spans[i].as_ref().map(|s| {
                    let mut s = s.clone();
                    s.task = k;
                    s
                })
            })
            .collect(),
        memory: outcome.memory.clone(),
        processor_count: outcome.processor_count,
    };

    check_shape(soc, &sub_tasks, &sub_trace, &mut violations, &mut checks);
    if sub_trace.spans.len() != sub_tasks.len()
        || sub_trace.spans.iter().enumerate().any(|(i, s)| s.task != i)
    {
        return AuditReport { violations, checks };
    }
    check_exclusivity(&sub_trace, &mut violations, &mut checks);
    check_releases(&sub_tasks, &sub_trace, &mut violations, &mut checks);
    check_dependencies(&sub_tasks, &sub_trace, &mut violations, &mut checks);
    check_fifo(&sub_tasks, &sub_trace, &mut violations, &mut checks);
    // Too-fast floor only; see the doc comment for why the too-slow
    // envelope is replaced by exact replay under faults.
    for (i, spec) in sub_tasks.iter().enumerate() {
        checks += 1;
        let duration = sub_trace.spans[i].end_ms - sub_trace.spans[i].start_ms;
        if duration < spec.solo_ms - TIME_EPS {
            violations.push(Violation::TooFast {
                task: i,
                duration_ms: duration,
                solo_ms: spec.solo_ms,
            });
        }
    }
    check_bubbles(&sub_trace, &mut violations, &mut checks);
    // The footprint ceiling must come from the original task list:
    // failed tasks allocated real memory before they were aborted.
    check_memory(soc, tasks, &sub_trace, &mut violations, &mut checks);

    // Replay reconciliation over the original task ids.
    match replay(tasks.len(), events) {
        Err(detail) => {
            checks += 1;
            violations.push(Violation::ReplayLog { detail });
        }
        Ok(replayed) => {
            let mut last_finish = 0.0f64;
            for (i, rep) in replayed.iter().enumerate() {
                checks += 1;
                if let Some(rep) = rep {
                    last_finish = last_finish.max(rep.end_ms);
                }
                match (&outcome.spans[i], rep) {
                    (Some(span), Some(rep)) => {
                        if (span.start_ms - rep.start_ms).abs() > TIME_EPS
                            || (span.end_ms - rep.end_ms).abs() > TIME_EPS
                        {
                            violations.push(Violation::ReplaySpan {
                                task: i,
                                claimed_start_ms: span.start_ms,
                                claimed_end_ms: span.end_ms,
                                replayed_start_ms: rep.start_ms,
                                replayed_end_ms: rep.end_ms,
                            });
                        }
                        checks += 1;
                        let eps = TIME_EPS * (1.0 + tasks[i].solo_ms);
                        if (rep.integrated_ms - tasks[i].solo_ms).abs() > eps {
                            violations.push(Violation::ReplayProgress {
                                task: i,
                                integrated_ms: rep.integrated_ms,
                                solo_ms: tasks[i].solo_ms,
                            });
                        }
                    }
                    (None, Some(_)) => violations.push(Violation::ReplayLog {
                        detail: format!("task {i} finished in the event log but has no span"),
                    }),
                    (Some(_), None) => violations.push(Violation::ReplayLog {
                        detail: format!("task {i} has a span but never finished in the event log"),
                    }),
                    (None, None) => {}
                }
            }
            checks += 1;
            let claimed = sub_trace.makespan_ms();
            if (claimed - last_finish).abs() > TIME_EPS {
                violations.push(Violation::ReplayMakespan {
                    claimed_ms: claimed,
                    replayed_ms: last_finish,
                });
            }
        }
    }

    AuditReport { violations, checks }
}

/// Convenience: audits the trace and panics with the full report if it
/// is not clean. Used by the executor's debug-build audit gate and by
/// tests.
///
/// # Panics
///
/// Panics if the audit finds any violation.
pub fn assert_clean(soc: &SocSpec, tasks: &[TaskSpec], trace: &Trace) {
    let report = audit(soc, tasks, trace);
    assert!(report.is_clean(), "trace audit failed:\n{report}");
}

/// Like [`assert_clean`], but runs the event-log reconciliation too.
/// Used by the `execute_logged` debug-build audit gate.
///
/// # Panics
///
/// Panics if the reconciled audit finds any violation.
pub fn assert_clean_with_events(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    events: &[EngineEvent],
    trace: &Trace,
) {
    let report = audit_with_events(soc, tasks, events, trace);
    assert!(report.is_clean(), "trace audit failed:\n{report}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Simulation, TaskSpec};
    use crate::processor::{ProcessorId, ProcessorKind};

    fn soc() -> SocSpec {
        SocSpec::kirin_990()
    }

    fn id(soc: &SocSpec, kind: ProcessorKind) -> ProcessorId {
        soc.processor_by_kind(kind).expect("preset has processor")
    }

    /// A small mixed workload: chained pipeline plus independent work.
    fn workload(soc: &SocSpec) -> (Vec<TaskSpec>, Trace) {
        let cpu = id(soc, ProcessorKind::CpuBig);
        let gpu = id(soc, ProcessorKind::Gpu);
        let npu = id(soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc.clone());
        let a = sim.add_task(
            TaskSpec::new("a", npu, 8.0)
                .intensity(0.6)
                .footprint(64 << 20)
                .bandwidth(2.0),
        );
        let b = sim.add_task(TaskSpec::new("b", gpu, 6.0).intensity(0.9).after(a));
        sim.add_task(TaskSpec::new("c", cpu, 5.0).intensity(1.0).after(b));
        sim.add_task(TaskSpec::new("d", cpu, 4.0).intensity(0.2).release(3.0));
        sim.add_task(TaskSpec::new("e", npu, 2.0));
        let tasks = sim.tasks().to_vec();
        let trace = sim.run().expect("runs");
        (tasks, trace)
    }

    #[test]
    fn engine_traces_audit_clean() {
        let soc = soc();
        let (tasks, trace) = workload(&soc);
        let report = audit(&soc, &tasks, &trace);
        assert!(report.is_clean(), "unexpected violations:\n{report}");
        assert!(report.checks > 10, "audit must actually check things");
    }

    #[test]
    fn thermal_and_overcommit_traces_audit_clean() {
        // Throttling and paging stretch spans; the upper bound must
        // still accommodate them.
        let mut soc = soc();
        soc.thermal_mode = ThermalMode::SteadyState;
        let cpu = id(&soc, ProcessorKind::CpuBig);
        let cap = soc.memory.capacity_bytes;
        let mut sim = Simulation::new(soc.clone());
        sim.add_task(TaskSpec::new("huge", cpu, 10.0).footprint(cap + 1));
        let tasks = sim.tasks().to_vec();
        let trace = sim.run().expect("runs");
        assert_clean(&soc, &tasks, &trace);
    }

    #[test]
    fn overlapping_spans_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Slide task d's span backwards until it overlaps task c on the
        // same CPU (both run there).
        let c_end = trace.spans[2].end_ms;
        trace.spans[3].start_ms = c_end - 1.0;
        trace.spans[3].end_ms = trace.spans[3].start_ms + 4.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Overlap { .. })),
            "expected an overlap violation, got:\n{report}"
        );
    }

    #[test]
    fn early_starts_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Task d is released at 3.0 ms; forge an earlier start.
        trace.spans[3].start_ms = 0.5;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::EarlyStart { task: 3, .. })));
    }

    #[test]
    fn dependency_inversions_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Task b depends on a; start it before a ends.
        trace.spans[1].start_ms = trace.spans[0].end_ms - 2.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DependencyOrder { task: 1, .. })));
    }

    #[test]
    fn superluminal_spans_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Task c claims to finish in half its solo time.
        trace.spans[2].end_ms = trace.spans[2].start_ms + tasks[2].solo_ms / 2.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TooFast { task: 2, .. })));
    }

    #[test]
    fn unexplainable_stretch_is_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Stretch the lone NPU task far beyond anything interference
        // could justify.
        trace.spans[4].end_ms = trace.spans[4].start_ms + tasks[4].solo_ms * 50.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TooSlow { task: 4, .. })));
    }

    #[test]
    fn fifo_inversions_are_detected() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc.clone());
        sim.add_task(TaskSpec::new("first", npu, 3.0));
        sim.add_task(TaskSpec::new("second", npu, 3.0));
        let tasks = sim.tasks().to_vec();
        let mut trace = sim.run().expect("runs");
        // Swap the execution order: second runs [0,3], first runs [3,6].
        trace.spans[0].start_ms = 3.0;
        trace.spans[0].end_ms = 6.0;
        trace.spans[1].start_ms = 0.0;
        trace.spans[1].end_ms = 3.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::FifoOrder {
                    earlier: 0,
                    later: 1,
                    ..
                }
            )),
            "expected a FIFO violation, got:\n{report}"
        );
    }

    #[test]
    fn leaked_memory_is_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Forge a ledger that never drains.
        if let Some(last) = trace.memory.last_mut() {
            last.allocated_bytes = 123;
        }
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MemoryLedger { .. })));
    }

    #[test]
    fn shape_mismatches_are_detected() {
        let soc = soc();
        let (tasks, trace) = workload(&soc);
        // Dropped span.
        let mut short = trace.clone();
        short.spans.pop();
        assert!(!audit(&soc, &tasks, &short).is_clean());
        // Wrong processor recorded.
        let mut moved = trace.clone();
        moved.spans[0].processor = ProcessorId(0);
        let report = audit(&soc, &tasks, &moved);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Shape { .. })));
    }

    /// The same mixed workload as [`workload`], but run with the event
    /// log attached.
    fn logged_workload(soc: &SocSpec) -> (Vec<TaskSpec>, Trace, Vec<crate::engine::EngineEvent>) {
        let cpu = id(soc, ProcessorKind::CpuBig);
        let gpu = id(soc, ProcessorKind::Gpu);
        let npu = id(soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc.clone());
        let a = sim.add_task(
            TaskSpec::new("a", npu, 8.0)
                .intensity(0.6)
                .footprint(64 << 20)
                .bandwidth(2.0),
        );
        let b = sim.add_task(TaskSpec::new("b", gpu, 6.0).intensity(0.9).after(a));
        sim.add_task(TaskSpec::new("c", cpu, 5.0).intensity(1.0).after(b));
        sim.add_task(TaskSpec::new("d", cpu, 4.0).intensity(0.2).release(3.0));
        sim.add_task(TaskSpec::new("e", npu, 2.0));
        let tasks = sim.tasks().to_vec();
        let (trace, events) = sim.run_with_events().expect("runs");
        (tasks, trace, events)
    }

    #[test]
    fn engine_event_logs_reconcile_clean() {
        let soc = soc();
        let (tasks, trace, events) = logged_workload(&soc);
        let report = audit_with_events(&soc, &tasks, &events, &trace);
        assert!(report.is_clean(), "unexpected violations:\n{report}");
        // Reconciliation adds checks on top of the plain audit.
        assert!(report.checks > audit(&soc, &tasks, &trace).checks);
    }

    #[test]
    fn replay_integrates_solo_work_exactly() {
        let soc = soc();
        let (tasks, _, events) = logged_workload(&soc);
        let replayed = replay(tasks.len(), &events).expect("well-formed log");
        for (i, rep) in replayed.iter().enumerate() {
            let rep = rep.as_ref().expect("all tasks finish");
            assert!(
                (rep.integrated_ms - tasks[i].solo_ms).abs() < 1e-6 * (1.0 + tasks[i].solo_ms),
                "task {i}: integrated {} vs solo {}",
                rep.integrated_ms,
                tasks[i].solo_ms
            );
        }
    }

    #[test]
    fn in_envelope_stretch_passes_plain_audit_but_fails_replay() {
        let soc = soc();
        let (tasks, mut trace, events) = logged_workload(&soc);
        // Stretch the globally last span (no dependents, last on its
        // processor) to midway between its true duration and the
        // conservative envelope: invisible to the plain audit, exactly
        // what the replay reconciliation exists to catch.
        let last = (0..trace.spans.len())
            .max_by(|&a, &b| trace.spans[a].end_ms.total_cmp(&trace.spans[b].end_ms))
            .expect("non-empty");
        let span = &trace.spans[last];
        let duration = span.end_ms - span.start_ms;
        let bound = conservative_bound_ms(&soc, &tasks, &trace, last);
        assert!(
            bound > duration + 1e-3,
            "test needs slack inside the envelope (bound {bound}, duration {duration})"
        );
        trace.spans[last].end_ms = trace.spans[last].start_ms + (duration + bound) / 2.0;

        let plain = audit(&soc, &tasks, &trace);
        assert!(
            plain.is_clean(),
            "the stretch must stay inside the conservative envelope:\n{plain}"
        );
        let reconciled = audit_with_events(&soc, &tasks, &events, &trace);
        assert!(reconciled
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplaySpan { task, .. } if *task == last)));
        assert!(reconciled
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplayMakespan { .. })));
    }

    #[test]
    fn tampered_rates_fail_progress_reconciliation() {
        let soc = soc();
        let (tasks, trace, mut events) = logged_workload(&soc);
        // Halve the rate a task claims to have run at: its span
        // boundaries still match, but the integral no longer explains
        // its solo work.
        let tampered = events
            .iter_mut()
            .find_map(|e| match e {
                crate::engine::EngineEvent::Rate { task, slowdown, .. } => {
                    *slowdown = 2.0 * *slowdown + 1.0;
                    Some(*task)
                }
                _ => None,
            })
            .expect("log has rate events");
        let report = audit_with_events(&soc, &tasks, &events, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplayProgress { task, .. } if *task == tampered)));
    }

    #[test]
    fn malformed_logs_are_rejected() {
        let soc = soc();
        let (tasks, trace, events) = logged_workload(&soc);
        // Drop the first start event: its finish is now orphaned.
        let without_start: Vec<_> = {
            let mut dropped = false;
            events
                .iter()
                .filter(|e| {
                    if !dropped && matches!(e, crate::engine::EngineEvent::Start { .. }) {
                        dropped = true;
                        false
                    } else {
                        true
                    }
                })
                .cloned()
                .collect()
        };
        let report = audit_with_events(&soc, &tasks, &without_start, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplayLog { .. })));
        // Truncated log: some task never finishes.
        let truncated = &events[..events.len() - 1];
        let report = audit_with_events(&soc, &tasks, truncated, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReplayLog { .. })));
    }

    #[test]
    fn violation_task_anchors() {
        let v = Violation::ReplaySpan {
            task: 3,
            claimed_start_ms: 0.0,
            claimed_end_ms: 1.0,
            replayed_start_ms: 0.0,
            replayed_end_ms: 0.5,
        };
        assert_eq!(v.task(), Some(3));
        assert!(v.to_string().contains("replays"));
        let v = Violation::ReplayMakespan {
            claimed_ms: 2.0,
            replayed_ms: 1.0,
        };
        assert_eq!(v.task(), None);
    }

    #[test]
    fn report_display_lists_violations() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        trace.spans[2].end_ms = trace.spans[2].start_ms + 0.1;
        let report = audit(&soc, &tasks, &trace);
        let text = report.to_string();
        assert!(text.contains("violation"));
        assert!(text.contains("too fast"));
        let clean = AuditReport {
            violations: Vec::new(),
            checks: 7,
        };
        assert!(clean.to_string().contains("clean"));
    }
}
