//! Trace auditing: validates an executed [`Trace`] against the
//! simulator's contracts.
//!
//! The engine is deterministic, but determinism alone does not prove a
//! trace is *physically meaningful* — a bug in queueing, rate math or
//! the memory ledger produces a perfectly repeatable wrong answer. The
//! auditor re-derives every invariant the engine is supposed to uphold
//! from first principles, using only the submitted [`TaskSpec`]s, the
//! [`SocSpec`] and the finished [`Trace`]:
//!
//! 1. **Shape** — one span per task, matching processor/solo-time/label,
//!    finite and ordered timestamps.
//! 2. **Exclusivity** — spans on one processor never overlap.
//! 3. **Releases** — no span starts before its task's `release_ms`.
//! 4. **Dependencies** — no span starts before all of its dependencies
//!    have ended.
//! 5. **FIFO** — per processor, tasks start in queue-entry order, where
//!    the entry time is reconstructed as `max(release, latest dep end)`
//!    with the engine's task-id tie-break.
//! 6. **Slowdown bounds** — every span takes at least its solo time, and
//!    no longer than the worst case the
//!    [`CouplingMatrix`](crate::interference::CouplingMatrix), thermal
//!    throttling and memory paging can jointly justify.
//! 7. **Bubble accounting** — [`Trace::idle_bubble_ms`] reconciles with
//!    an independent per-processor gap summation (the trace-level
//!    analogue of the paper's Def. 3).
//! 8. **Memory ledger** — samples are time-ordered, internally
//!    consistent, never exceed the sum of all footprints, and drain to
//!    zero by the end of the run.
//!
//! [`audit`] returns an [`AuditReport`] listing every violation found;
//! it never panics, so callers can render violations or gate on them
//! (`h2p trace --audit` exits nonzero on a dirty report, and
//! `execute_with_arrivals` asserts a clean report in debug builds).

use std::fmt;

use crate::engine::TaskSpec;
use crate::soc::SocSpec;
use crate::thermal::{ThermalMode, ThermalSpec};
use crate::timeline::{Span, Trace};

/// Absolute tolerance for event-time comparisons, matching the engine's
/// completion epsilon.
const TIME_EPS: f64 = 1e-6;

/// One contract violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The trace does not have exactly one span per submitted task, or a
    /// span disagrees with its spec (task id, processor, solo time).
    Shape {
        /// Description of the mismatch.
        detail: String,
    },
    /// Two spans overlap on one processor.
    Overlap {
        /// Processor index.
        processor: usize,
        /// Earlier span's task id.
        first: usize,
        /// Later span's task id.
        second: usize,
        /// Overlap amount in ms.
        by_ms: f64,
    },
    /// A span starts before its task's release time.
    EarlyStart {
        /// Task id.
        task: usize,
        /// Observed start.
        start_ms: f64,
        /// Required release.
        release_ms: f64,
    },
    /// A span starts before one of its dependencies ends.
    DependencyOrder {
        /// Task id.
        task: usize,
        /// The dependency that had not finished.
        dependency: usize,
        /// Observed start of the dependent task.
        start_ms: f64,
        /// End of the dependency.
        dep_end_ms: f64,
    },
    /// Two tasks on one processor started out of queue-entry order.
    FifoOrder {
        /// Processor index.
        processor: usize,
        /// The task that entered the queue first.
        earlier: usize,
        /// The task that entered later but started first.
        later: usize,
    },
    /// A span finished faster than its solo time allows.
    TooFast {
        /// Task id.
        task: usize,
        /// Observed duration.
        duration_ms: f64,
        /// The task's solo time.
        solo_ms: f64,
    },
    /// A span took longer than interference, throttling and paging can
    /// jointly explain.
    TooSlow {
        /// Task id.
        task: usize,
        /// Observed duration.
        duration_ms: f64,
        /// The conservative upper bound.
        bound_ms: f64,
    },
    /// `Trace::idle_bubble_ms` disagrees with an independent
    /// recomputation from the spans.
    BubbleMismatch {
        /// The trace's reported value.
        reported_ms: f64,
        /// The independently recomputed value.
        recomputed_ms: f64,
    },
    /// The memory trace is inconsistent (unordered samples, phantom
    /// allocations, or a ledger that never drains).
    MemoryLedger {
        /// Description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Shape { detail } => write!(f, "shape: {detail}"),
            Violation::Overlap {
                processor,
                first,
                second,
                by_ms,
            } => write!(
                f,
                "overlap: tasks {first} and {second} overlap by {by_ms:.6} ms on processor {processor}"
            ),
            Violation::EarlyStart {
                task,
                start_ms,
                release_ms,
            } => write!(
                f,
                "release: task {task} started at {start_ms:.6} ms before its release {release_ms:.6} ms"
            ),
            Violation::DependencyOrder {
                task,
                dependency,
                start_ms,
                dep_end_ms,
            } => write!(
                f,
                "dependency: task {task} started at {start_ms:.6} ms before dependency {dependency} ended at {dep_end_ms:.6} ms"
            ),
            Violation::FifoOrder {
                processor,
                earlier,
                later,
            } => write!(
                f,
                "fifo: task {later} started before task {earlier} on processor {processor} despite entering the queue later"
            ),
            Violation::TooFast {
                task,
                duration_ms,
                solo_ms,
            } => write!(
                f,
                "too fast: task {task} ran {duration_ms:.6} ms, under its solo time {solo_ms:.6} ms"
            ),
            Violation::TooSlow {
                task,
                duration_ms,
                bound_ms,
            } => write!(
                f,
                "too slow: task {task} ran {duration_ms:.6} ms, beyond the worst-case bound {bound_ms:.6} ms"
            ),
            Violation::BubbleMismatch {
                reported_ms,
                recomputed_ms,
            } => write!(
                f,
                "bubble: trace reports {reported_ms:.6} ms idle but spans account for {recomputed_ms:.6} ms"
            ),
            Violation::MemoryLedger { detail } => write!(f, "memory: {detail}"),
        }
    }
}

/// The result of auditing one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Every violation found, in check order.
    pub violations: Vec<Violation>,
    /// Number of individual checks performed.
    pub checks: usize,
}

impl AuditReport {
    /// Whether the trace passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            writeln!(f, "audit: clean ({} checks)", self.checks)
        } else {
            writeln!(
                f,
                "audit: {} violation(s) in {} checks",
                self.violations.len(),
                self.checks
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Audits `trace` against the contracts implied by `tasks` and `soc`.
///
/// The audit is pure and panic-free: every failed invariant becomes a
/// [`Violation`] in the returned report. A trace produced by
/// [`crate::engine::Simulation::run`] from the same `tasks` and `soc`
/// always audits clean; the checks exist to catch corrupted, hand-built
/// or regression-bugged traces.
pub fn audit(soc: &SocSpec, tasks: &[TaskSpec], trace: &Trace) -> AuditReport {
    let mut violations = Vec::new();
    let mut checks = 0usize;

    check_shape(soc, tasks, trace, &mut violations, &mut checks);
    // Everything below indexes spans by task id; bail out early if the
    // shape is too broken for that to be meaningful.
    if trace.spans.len() != tasks.len() || trace.spans.iter().enumerate().any(|(i, s)| s.task != i)
    {
        return AuditReport { violations, checks };
    }

    check_exclusivity(trace, &mut violations, &mut checks);
    check_releases(tasks, trace, &mut violations, &mut checks);
    check_dependencies(tasks, trace, &mut violations, &mut checks);
    check_fifo(tasks, trace, &mut violations, &mut checks);
    check_duration_bounds(soc, tasks, trace, &mut violations, &mut checks);
    check_bubbles(trace, &mut violations, &mut checks);
    check_memory(soc, tasks, trace, &mut violations, &mut checks);

    AuditReport { violations, checks }
}

fn check_shape(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    *checks += 1;
    if trace.spans.len() != tasks.len() {
        violations.push(Violation::Shape {
            detail: format!(
                "{} spans for {} submitted tasks",
                trace.spans.len(),
                tasks.len()
            ),
        });
    }
    *checks += 1;
    if trace.processor_count != soc.processors.len() {
        violations.push(Violation::Shape {
            detail: format!(
                "trace claims {} processors, SoC has {}",
                trace.processor_count,
                soc.processors.len()
            ),
        });
    }
    for (i, span) in trace.spans.iter().enumerate() {
        *checks += 1;
        if span.task != i {
            violations.push(Violation::Shape {
                detail: format!("span {i} records task id {}", span.task),
            });
            continue;
        }
        let Some(spec) = tasks.get(i) else { continue };
        if span.processor != spec.processor {
            violations.push(Violation::Shape {
                detail: format!(
                    "task {i} ran on processor {} but was pinned to {}",
                    span.processor.index(),
                    spec.processor.index()
                ),
            });
        }
        if (span.solo_ms - spec.solo_ms).abs() > TIME_EPS {
            violations.push(Violation::Shape {
                detail: format!(
                    "task {i} span records solo {} ms, spec says {} ms",
                    span.solo_ms, spec.solo_ms
                ),
            });
        }
        if !(span.start_ms.is_finite() && span.end_ms.is_finite())
            || span.end_ms < span.start_ms - TIME_EPS
            || span.start_ms < -TIME_EPS
        {
            violations.push(Violation::Shape {
                detail: format!(
                    "task {i} has malformed timestamps [{}, {}]",
                    span.start_ms, span.end_ms
                ),
            });
        }
    }
}

fn check_exclusivity(trace: &Trace, violations: &mut Vec<Violation>, checks: &mut usize) {
    for p in 0..trace.processor_count {
        let mut spans: Vec<&Span> = trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .collect();
        spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        for w in spans.windows(2) {
            *checks += 1;
            let gap = w[1].start_ms - w[0].end_ms;
            if gap < -TIME_EPS {
                violations.push(Violation::Overlap {
                    processor: p,
                    first: w[0].task,
                    second: w[1].task,
                    by_ms: -gap,
                });
            }
        }
    }
}

fn check_releases(
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    for (i, spec) in tasks.iter().enumerate() {
        *checks += 1;
        let span = &trace.spans[i];
        if span.start_ms < spec.release_ms - TIME_EPS {
            violations.push(Violation::EarlyStart {
                task: i,
                start_ms: span.start_ms,
                release_ms: spec.release_ms,
            });
        }
    }
}

fn check_dependencies(
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    for (i, spec) in tasks.iter().enumerate() {
        let span = &trace.spans[i];
        for d in &spec.deps {
            *checks += 1;
            let Some(dep_span) = trace.spans.get(d.index()) else {
                continue;
            };
            if span.start_ms < dep_span.end_ms - TIME_EPS {
                violations.push(Violation::DependencyOrder {
                    task: i,
                    dependency: d.index(),
                    start_ms: span.start_ms,
                    dep_end_ms: dep_span.end_ms,
                });
            }
        }
    }
}

/// The time at which task `i` became eligible for its processor queue:
/// its release, or the end of its latest dependency, whichever is later.
fn entry_time(tasks: &[TaskSpec], trace: &Trace, i: usize) -> f64 {
    let dep_end = tasks[i]
        .deps
        .iter()
        .filter_map(|d| trace.spans.get(d.index()))
        .map(|s| s.end_ms)
        .fold(0.0f64, f64::max);
    tasks[i].release_ms.max(dep_end)
}

fn check_fifo(
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    for p in 0..trace.processor_count {
        let mut entries: Vec<(f64, usize)> = (0..tasks.len())
            .filter(|&i| tasks[i].processor.index() == p)
            .map(|i| (entry_time(tasks, trace, i), i))
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for w in entries.windows(2) {
            let (entry_a, a) = w[0];
            let (entry_b, b) = w[1];
            // Equal entries (within tolerance) are only ordered by the
            // engine when they join the queue at the same event, so the
            // id tie-break is enforced for exact ties only.
            let strictly_earlier = entry_a < entry_b - TIME_EPS;
            let tie_by_id = entry_a == entry_b && a < b;
            if !(strictly_earlier || tie_by_id) {
                continue;
            }
            *checks += 1;
            if trace.spans[a].start_ms > trace.spans[b].start_ms + TIME_EPS {
                violations.push(Violation::FifoOrder {
                    processor: p,
                    earlier: a,
                    later: b,
                });
            }
        }
    }
}

fn check_duration_bounds(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    // Worst-case rate factors shared by all spans: a processor can be
    // throttled whenever the thermal model is enabled, and every task
    // pages whenever the run ever over-committed memory.
    let paged = trace
        .memory
        .iter()
        .any(|s| s.allocated_bytes > soc.memory.capacity_bytes);
    let mem_min = if paged {
        soc.memory.page_fault_penalty
    } else {
        1.0
    };

    for (i, spec) in tasks.iter().enumerate() {
        let span = &trace.spans[i];
        let duration = span.end_ms - span.start_ms;

        *checks += 1;
        if duration < spec.solo_ms - TIME_EPS {
            violations.push(Violation::TooFast {
                task: i,
                duration_ms: duration,
                solo_ms: spec.solo_ms,
            });
        }

        // Conservative instantaneous slowdown ceiling: at any moment at
        // most one task runs per other processor, so the worst case sums
        // each other processor's most intense overlapping span.
        let me = &soc.processors[spec.processor.index()];
        let mut slow_max = 0.0;
        for (q, other_proc) in soc.processors.iter().enumerate() {
            if q == spec.processor.index() {
                continue;
            }
            let worst_intensity = trace
                .spans
                .iter()
                .filter(|s| {
                    s.processor.index() == q
                        && s.start_ms < span.end_ms + TIME_EPS
                        && s.end_ms > span.start_ms - TIME_EPS
                })
                .map(|s| tasks[s.task].intensity.max(0.0))
                .fold(0.0f64, f64::max);
            slow_max += soc.coupling.coupling(me, other_proc) * worst_intensity;
        }
        slow_max *= spec.sensitivity.max(0.0);

        let thermal_min = if soc.thermal_mode == ThermalMode::Disabled {
            1.0
        } else {
            ThermalSpec::for_kind(me.kind).throttle_factor
        };
        let bound = spec.solo_ms * (1.0 + slow_max) / (thermal_min * mem_min) + TIME_EPS;
        *checks += 1;
        if duration > bound {
            violations.push(Violation::TooSlow {
                task: i,
                duration_ms: duration,
                bound_ms: bound,
            });
        }
    }
}

fn check_bubbles(trace: &Trace, violations: &mut Vec<Violation>, checks: &mut usize) {
    // Independent recomputation of Def. 3 idle bubbles: per processor,
    // the gaps between consecutive spans.
    let mut recomputed = 0.0;
    for p in 0..trace.processor_count {
        let mut spans: Vec<&Span> = trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .collect();
        spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        for w in spans.windows(2) {
            recomputed += (w[1].start_ms - w[0].end_ms).max(0.0);
        }
    }
    *checks += 1;
    let reported = trace.idle_bubble_ms();
    if !(reported - recomputed).abs().is_finite() || (reported - recomputed).abs() > TIME_EPS {
        violations.push(Violation::BubbleMismatch {
            reported_ms: reported,
            recomputed_ms: recomputed,
        });
    }
}

fn check_memory(
    soc: &SocSpec,
    tasks: &[TaskSpec],
    trace: &Trace,
    violations: &mut Vec<Violation>,
    checks: &mut usize,
) {
    let samples = &trace.memory;
    *checks += 1;
    if samples.is_empty() {
        if !tasks.is_empty() {
            violations.push(Violation::MemoryLedger {
                detail: "no memory samples recorded for a non-empty run".to_owned(),
            });
        }
        return;
    }
    *checks += 1;
    let Some(last) = samples.last() else {
        return; // unreachable: emptiness handled above
    };
    if last.allocated_bytes != 0 {
        violations.push(Violation::MemoryLedger {
            detail: format!(
                "{} bytes still allocated at the end of the run",
                last.allocated_bytes
            ),
        });
    }
    let total_footprint: u64 = tasks.iter().map(|t| t.footprint_bytes).sum();
    let capacity = soc.memory.capacity_bytes;
    let mut prev_time = f64::NEG_INFINITY;
    for (i, s) in samples.iter().enumerate() {
        *checks += 1;
        if s.time_ms < prev_time {
            violations.push(Violation::MemoryLedger {
                detail: format!(
                    "sample {i} at {} ms is earlier than its predecessor at {prev_time} ms",
                    s.time_ms
                ),
            });
        }
        prev_time = s.time_ms;
        if s.allocated_bytes > total_footprint {
            violations.push(Violation::MemoryLedger {
                detail: format!(
                    "sample {i} allocates {} bytes, more than all footprints combined ({total_footprint})",
                    s.allocated_bytes
                ),
            });
        }
        if s.available_bytes != capacity.saturating_sub(s.allocated_bytes) {
            violations.push(Violation::MemoryLedger {
                detail: format!(
                    "sample {i}: available {} inconsistent with capacity {} - allocated {}",
                    s.available_bytes, capacity, s.allocated_bytes
                ),
            });
        }
    }
}

/// Convenience: audits the trace and panics with the full report if it
/// is not clean. Used by the executor's debug-build audit gate and by
/// tests.
///
/// # Panics
///
/// Panics if the audit finds any violation.
pub fn assert_clean(soc: &SocSpec, tasks: &[TaskSpec], trace: &Trace) {
    let report = audit(soc, tasks, trace);
    assert!(report.is_clean(), "trace audit failed:\n{report}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Simulation, TaskSpec};
    use crate::processor::{ProcessorId, ProcessorKind};

    fn soc() -> SocSpec {
        SocSpec::kirin_990()
    }

    fn id(soc: &SocSpec, kind: ProcessorKind) -> ProcessorId {
        soc.processor_by_kind(kind).expect("preset has processor")
    }

    /// A small mixed workload: chained pipeline plus independent work.
    fn workload(soc: &SocSpec) -> (Vec<TaskSpec>, Trace) {
        let cpu = id(soc, ProcessorKind::CpuBig);
        let gpu = id(soc, ProcessorKind::Gpu);
        let npu = id(soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc.clone());
        let a = sim.add_task(
            TaskSpec::new("a", npu, 8.0)
                .intensity(0.6)
                .footprint(64 << 20)
                .bandwidth(2.0),
        );
        let b = sim.add_task(TaskSpec::new("b", gpu, 6.0).intensity(0.9).after(a));
        sim.add_task(TaskSpec::new("c", cpu, 5.0).intensity(1.0).after(b));
        sim.add_task(TaskSpec::new("d", cpu, 4.0).intensity(0.2).release(3.0));
        sim.add_task(TaskSpec::new("e", npu, 2.0));
        let tasks = sim.tasks().to_vec();
        let trace = sim.run().expect("runs");
        (tasks, trace)
    }

    #[test]
    fn engine_traces_audit_clean() {
        let soc = soc();
        let (tasks, trace) = workload(&soc);
        let report = audit(&soc, &tasks, &trace);
        assert!(report.is_clean(), "unexpected violations:\n{report}");
        assert!(report.checks > 10, "audit must actually check things");
    }

    #[test]
    fn thermal_and_overcommit_traces_audit_clean() {
        // Throttling and paging stretch spans; the upper bound must
        // still accommodate them.
        let mut soc = soc();
        soc.thermal_mode = ThermalMode::SteadyState;
        let cpu = id(&soc, ProcessorKind::CpuBig);
        let cap = soc.memory.capacity_bytes;
        let mut sim = Simulation::new(soc.clone());
        sim.add_task(TaskSpec::new("huge", cpu, 10.0).footprint(cap + 1));
        let tasks = sim.tasks().to_vec();
        let trace = sim.run().expect("runs");
        assert_clean(&soc, &tasks, &trace);
    }

    #[test]
    fn overlapping_spans_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Slide task d's span backwards until it overlaps task c on the
        // same CPU (both run there).
        let c_end = trace.spans[2].end_ms;
        trace.spans[3].start_ms = c_end - 1.0;
        trace.spans[3].end_ms = trace.spans[3].start_ms + 4.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Overlap { .. })),
            "expected an overlap violation, got:\n{report}"
        );
    }

    #[test]
    fn early_starts_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Task d is released at 3.0 ms; forge an earlier start.
        trace.spans[3].start_ms = 0.5;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::EarlyStart { task: 3, .. })));
    }

    #[test]
    fn dependency_inversions_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Task b depends on a; start it before a ends.
        trace.spans[1].start_ms = trace.spans[0].end_ms - 2.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DependencyOrder { task: 1, .. })));
    }

    #[test]
    fn superluminal_spans_are_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Task c claims to finish in half its solo time.
        trace.spans[2].end_ms = trace.spans[2].start_ms + tasks[2].solo_ms / 2.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TooFast { task: 2, .. })));
    }

    #[test]
    fn unexplainable_stretch_is_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Stretch the lone NPU task far beyond anything interference
        // could justify.
        trace.spans[4].end_ms = trace.spans[4].start_ms + tasks[4].solo_ms * 50.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TooSlow { task: 4, .. })));
    }

    #[test]
    fn fifo_inversions_are_detected() {
        let soc = soc();
        let npu = id(&soc, ProcessorKind::Npu);
        let mut sim = Simulation::new(soc.clone());
        sim.add_task(TaskSpec::new("first", npu, 3.0));
        sim.add_task(TaskSpec::new("second", npu, 3.0));
        let tasks = sim.tasks().to_vec();
        let mut trace = sim.run().expect("runs");
        // Swap the execution order: second runs [0,3], first runs [3,6].
        trace.spans[0].start_ms = 3.0;
        trace.spans[0].end_ms = 6.0;
        trace.spans[1].start_ms = 0.0;
        trace.spans[1].end_ms = 3.0;
        let report = audit(&soc, &tasks, &trace);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::FifoOrder {
                    earlier: 0,
                    later: 1,
                    ..
                }
            )),
            "expected a FIFO violation, got:\n{report}"
        );
    }

    #[test]
    fn leaked_memory_is_detected() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        // Forge a ledger that never drains.
        if let Some(last) = trace.memory.last_mut() {
            last.allocated_bytes = 123;
        }
        let report = audit(&soc, &tasks, &trace);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MemoryLedger { .. })));
    }

    #[test]
    fn shape_mismatches_are_detected() {
        let soc = soc();
        let (tasks, trace) = workload(&soc);
        // Dropped span.
        let mut short = trace.clone();
        short.spans.pop();
        assert!(!audit(&soc, &tasks, &short).is_clean());
        // Wrong processor recorded.
        let mut moved = trace.clone();
        moved.spans[0].processor = ProcessorId(0);
        let report = audit(&soc, &tasks, &moved);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Shape { .. })));
    }

    #[test]
    fn report_display_lists_violations() {
        let soc = soc();
        let (tasks, mut trace) = workload(&soc);
        trace.spans[2].end_ms = trace.spans[2].start_ms + 0.1;
        let report = audit(&soc, &tasks, &trace);
        let text = report.to_string();
        assert!(text.contains("violation"));
        assert!(text.contains("too fast"));
        let clean = AuditReport {
            violations: Vec::new(),
            checks: 7,
        };
        assert!(clean.to_string().contains("clean"));
    }
}
