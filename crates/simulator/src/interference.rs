//! Co-execution slowdown model for the shared memory bus.
//!
//! Section III of the paper measures that interference between CPU and GPU
//! is much higher than between CPU–NPU or GPU–NPU (e.g. co-executing
//! YOLOv4 and BERT slows CPU–GPU by 18–21% but CPU–NPU by only 3–4.5%),
//! and that equal-priority co-runners suffer *symmetric* slowdown because
//! commercial memory controllers schedule fairly (Observation 1).
//!
//! We model the instantaneous slowdown of a task `t` running on processor
//! `p` while a set `R` of tasks runs on other processors as
//!
//! ```text
//! slowdown(t) = Σ_{r ∈ R on q} γ(p, q) · intensity(r) · sensitivity(t)
//! effective_rate(t) = 1 / (1 + slowdown(t))
//! ```
//!
//! where `γ` is a symmetric coupling matrix indexed by processor kind and
//! cluster sharing. The engine re-evaluates these rates at every task
//! start/finish event, so slowdown varies over time with the co-runner
//! set, exactly the behaviour the planner's contention-mitigation step is
//! designed to exploit.

use serde::{Deserialize, Serialize};

use crate::processor::{ProcessorKind, ProcessorSpec};

/// Symmetric coupling coefficients between processor kinds, plus an
/// intra-cluster coefficient for CPU sub-clusters that share an L2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CouplingMatrix {
    /// `gamma[a][b]` indexed by [`kind_index`]; must be symmetric.
    gamma: [[f64; 4]; 4],
    /// Extra coupling applied when two processors share a `cluster` tag
    /// (Fig. 10: up to 70% slowdown from conflicting L2 misses).
    intra_cluster: f64,
}

/// Maps a [`ProcessorKind`] to its row/column in the coupling matrix.
fn kind_index(kind: ProcessorKind) -> usize {
    match kind {
        ProcessorKind::CpuBig => 0,
        ProcessorKind::CpuSmall => 1,
        ProcessorKind::Gpu => 2,
        ProcessorKind::Npu => 3,
    }
}

impl CouplingMatrix {
    /// Coupling matrix calibrated to the paper's Section III measurements:
    /// CPU–GPU interference is strong, any pair involving the NPU is weak
    /// (dedicated memory path), and CPU–CPU cross-cluster interference is
    /// moderate.
    pub fn mobile_default() -> Self {
        let b = kind_index(ProcessorKind::CpuBig);
        let s = kind_index(ProcessorKind::CpuSmall);
        let g = kind_index(ProcessorKind::Gpu);
        let n = kind_index(ProcessorKind::Npu);
        let mut gamma = [[0.0; 4]; 4];
        // CPU-GPU: ~18-21% slowdown at intensity ~1 => gamma ~ 0.20.
        gamma[b][g] = 0.20;
        gamma[s][g] = 0.16;
        // CPU big-small cross-cluster: separate L2s, only DRAM-controller
        // sharing — far milder than the intra-cluster case of Fig. 10.
        gamma[b][s] = 0.06;
        // Same-kind pairs (two sub-partitions of the same class but
        // different cluster tags) behave like cross-cluster CPU pairs.
        gamma[b][b] = 0.12;
        gamma[s][s] = 0.12;
        gamma[g][g] = 0.20;
        // NPU pairs: 2-4.5% at intensity ~1.
        gamma[b][n] = 0.035;
        gamma[g][n] = 0.022;
        gamma[s][n] = 0.030;
        gamma[n][n] = 0.02;
        // Symmetrize. Indexed loops: each entry mirrors its transpose.
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            for j in 0..i {
                gamma[i][j] = gamma[j][i];
            }
        }
        CouplingMatrix {
            // Conflicting L2 misses inside one cluster can nearly treble
            // effective latency (Fig. 10's ~70% slowdown at moderate
            // intensities).
            gamma,
            intra_cluster: 4.5,
        }
    }

    /// A zero matrix: co-execution never slows anything down. Useful for
    /// isolating planner behaviour from interference in tests.
    pub fn none() -> Self {
        CouplingMatrix {
            gamma: [[0.0; 4]; 4],
            intra_cluster: 0.0,
        }
    }

    /// Builds a matrix from an explicit symmetric table. The table is
    /// indexed `[CpuBig, CpuSmall, Gpu, Npu]` on both axes.
    ///
    /// # Panics
    ///
    /// Panics if the table is not symmetric or contains negative or
    /// non-finite entries.
    pub fn from_table(gamma: [[f64; 4]; 4], intra_cluster: f64) -> Self {
        // Indexed loops: the symmetry check pairs each entry with its
        // transpose.
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    gamma[i][j].is_finite() && gamma[i][j] >= 0.0,
                    "coupling coefficients must be finite and non-negative"
                );
                assert!(
                    (gamma[i][j] - gamma[j][i]).abs() < 1e-12,
                    "coupling matrix must be symmetric (Observation 1)"
                );
            }
        }
        assert!(intra_cluster.is_finite() && intra_cluster >= 0.0);
        CouplingMatrix {
            gamma,
            intra_cluster,
        }
    }

    /// The coupling coefficient between two processors. Processors sharing
    /// a cluster tag couple with the (much larger) intra-cluster
    /// coefficient; otherwise the kind-pair coefficient applies.
    pub fn coupling(&self, a: &ProcessorSpec, b: &ProcessorSpec) -> f64 {
        if let (Some(ca), Some(cb)) = (a.cluster, b.cluster) {
            if ca == cb {
                return self.intra_cluster;
            }
        }
        self.gamma[kind_index(a.kind)][kind_index(b.kind)]
    }

    /// The raw kind-pair coefficient, ignoring cluster sharing.
    pub fn kind_coupling(&self, a: ProcessorKind, b: ProcessorKind) -> f64 {
        self.gamma[kind_index(a)][kind_index(b)]
    }

    /// The intra-cluster coefficient applied to processors sharing an L2.
    pub fn intra_cluster(&self) -> f64 {
        self.intra_cluster
    }
}

impl Default for CouplingMatrix {
    fn default() -> Self {
        CouplingMatrix::mobile_default()
    }
}

/// Computes the total slowdown term for a task with the given contention
/// `sensitivity`, running on `proc`, while `corunners` (pairs of processor
/// spec and emitted contention intensity) execute concurrently elsewhere.
///
/// The returned value is the `Σ γ·intensity·sensitivity` term; the
/// effective progress rate is `1 / (1 + slowdown)`.
pub fn slowdown_for<'a, I>(
    matrix: &CouplingMatrix,
    proc: &ProcessorSpec,
    sensitivity: f64,
    corunners: I,
) -> f64
where
    I: IntoIterator<Item = (&'a ProcessorSpec, f64)>,
{
    let mut total = 0.0;
    for (other, intensity) in corunners {
        total += matrix.coupling(proc, other) * intensity * sensitivity;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::ProcessorSpec;

    fn spec(kind: ProcessorKind) -> ProcessorSpec {
        ProcessorSpec::new(kind.label(), kind, 100.0)
    }

    #[test]
    fn default_matrix_is_symmetric() {
        let m = CouplingMatrix::mobile_default();
        for &a in &ProcessorKind::ALL {
            for &b in &ProcessorKind::ALL {
                assert_eq!(m.kind_coupling(a, b), m.kind_coupling(b, a));
            }
        }
    }

    #[test]
    fn npu_pairs_are_weakly_coupled() {
        let m = CouplingMatrix::mobile_default();
        let cpu_gpu = m.kind_coupling(ProcessorKind::CpuBig, ProcessorKind::Gpu);
        let cpu_npu = m.kind_coupling(ProcessorKind::CpuBig, ProcessorKind::Npu);
        let gpu_npu = m.kind_coupling(ProcessorKind::Gpu, ProcessorKind::Npu);
        assert!(cpu_npu < cpu_gpu / 3.0, "CPU-NPU must be far below CPU-GPU");
        assert!(gpu_npu < cpu_gpu / 3.0, "GPU-NPU must be far below CPU-GPU");
    }

    #[test]
    fn intra_cluster_dominates() {
        let m = CouplingMatrix::mobile_default();
        let mut a = spec(ProcessorKind::CpuBig);
        let mut b = spec(ProcessorKind::CpuBig);
        a.cluster = Some(0);
        b.cluster = Some(0);
        let same = m.coupling(&a, &b);
        b.cluster = Some(1);
        let cross = m.coupling(&a, &b);
        assert!(same > 3.0 * cross, "same-cluster coupling must dominate");
    }

    #[test]
    fn slowdown_accumulates_over_corunners() {
        let m = CouplingMatrix::mobile_default();
        let cpu = spec(ProcessorKind::CpuBig);
        let gpu = spec(ProcessorKind::Gpu);
        let npu = spec(ProcessorKind::Npu);
        let single = slowdown_for(&m, &cpu, 1.0, vec![(&gpu, 1.0)]);
        let double = slowdown_for(&m, &cpu, 1.0, vec![(&gpu, 1.0), (&npu, 1.0)]);
        assert!(double > single);
        assert!((single - 0.20).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_produces_zero_slowdown() {
        let m = CouplingMatrix::none();
        let cpu = spec(ProcessorKind::CpuBig);
        let gpu = spec(ProcessorKind::Gpu);
        assert_eq!(slowdown_for(&m, &cpu, 1.0, vec![(&gpu, 5.0)]), 0.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_table_rejects_asymmetry() {
        let mut t = [[0.0; 4]; 4];
        t[0][1] = 0.5;
        CouplingMatrix::from_table(t, 0.0);
    }
}
