//! Execution traces: per-task spans, utilization, slowdown and bubble
//! accounting over a completed simulation.

use serde::{Deserialize, Serialize};

use crate::memory::MemorySample;
use crate::processor::ProcessorId;

/// One executed task's record in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Id of the task (index of submission).
    pub task: usize,
    /// Label supplied at submission, e.g. `"BERT/stage2"`.
    pub label: String,
    /// Processor the task ran on.
    pub processor: ProcessorId,
    /// Wall-clock start in milliseconds.
    pub start_ms: f64,
    /// Wall-clock end in milliseconds.
    pub end_ms: f64,
    /// The task's solo execution time (what it would have taken with no
    /// interference, throttling or paging).
    pub solo_ms: f64,
}

impl Span {
    /// Observed duration of the span in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    /// Co-execution slowdown of this span relative to solo execution,
    /// e.g. `0.21` for a 21% slowdown. Non-negative up to rounding.
    pub fn slowdown(&self) -> f64 {
        if self.solo_ms <= 0.0 {
            0.0
        } else {
            self.duration_ms() / self.solo_ms - 1.0
        }
    }
}

/// The result of a completed simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Per-task spans in task-id order.
    pub spans: Vec<Span>,
    /// Memory subsystem samples (Fig. 9 trace).
    pub memory: Vec<MemorySample>,
    /// Number of processors on the simulated SoC.
    pub processor_count: usize,
}

impl Trace {
    /// Total makespan: the latest task end time (0 for an empty run).
    pub fn makespan_ms(&self) -> f64 {
        self.spans.iter().map(|s| s.end_ms).fold(0.0, f64::max)
    }

    /// Span of the task with the given id, if it ran.
    pub fn span(&self, task: usize) -> Option<&Span> {
        self.spans.iter().find(|s| s.task == task)
    }

    /// Busy milliseconds accumulated on `proc`.
    pub fn busy_ms(&self, proc: ProcessorId) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.processor == proc)
            .map(Span::duration_ms)
            .sum()
    }

    /// Utilization of `proc` over the makespan, in `[0, 1]`.
    pub fn utilization(&self, proc: ProcessorId) -> f64 {
        let m = self.makespan_ms();
        if m <= 0.0 {
            0.0
        } else {
            self.busy_ms(proc) / m
        }
    }

    /// Mean utilization across all processors.
    pub fn mean_utilization(&self) -> f64 {
        if self.processor_count == 0 {
            return 0.0;
        }
        (0..self.processor_count)
            .map(|i| self.utilization(ProcessorId(i)))
            .sum::<f64>()
            / self.processor_count as f64
    }

    /// Total idle ("bubble") time summed over processors between the first
    /// and last event on each processor. This is the trace-level analogue
    /// of the paper's pipeline-bubble definition (Def. 3): time a
    /// processor sits idle waiting for a dependent stage while it still
    /// has work ahead of it.
    pub fn idle_bubble_ms(&self) -> f64 {
        let mut total = 0.0;
        for p in 0..self.processor_count {
            let mut spans: Vec<&Span> = self
                .spans
                .iter()
                .filter(|s| s.processor == ProcessorId(p))
                .collect();
            if spans.is_empty() {
                continue;
            }
            spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
            for w in spans.windows(2) {
                total += (w[1].start_ms - w[0].end_ms).max(0.0);
            }
        }
        total
    }

    /// Throughput in completed tasks per second, counting only tasks whose
    /// label does not mark them as auxiliary (callers typically count
    /// model-level completions themselves; this helper counts all spans).
    pub fn throughput_per_sec(&self) -> f64 {
        let m = self.makespan_ms();
        if m <= 0.0 {
            0.0
        } else {
            self.spans.len() as f64 * 1000.0 / m
        }
    }

    /// Largest observed per-span slowdown.
    pub fn max_slowdown(&self) -> f64 {
        self.spans.iter().map(Span::slowdown).fold(0.0, f64::max)
    }

    /// Renders the trace as an ASCII Gantt chart, one row per processor,
    /// `width` characters across the makespan. Busy cells show the last
    /// character of the running task's label; dots are idle time.
    ///
    /// `names` supplies one display name per processor row (pass the
    /// SoC's processor names); rows without spans are still printed.
    pub fn render_gantt(&self, names: &[&str], width: usize) -> String {
        let width = width.max(10);
        let makespan = self.makespan_ms();
        let mut out = String::new();
        if makespan <= 0.0 {
            out.push_str("(empty trace)\n");
            return out;
        }
        let label_w = names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
        for p in 0..self.processor_count {
            let name = names.get(p).copied().unwrap_or("?");
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.processor == ProcessorId(p)) {
                let a = ((s.start_ms / makespan) * width as f64).floor() as usize;
                let b = ((s.end_ms / makespan) * width as f64).ceil() as usize;
                let ch = s
                    .label
                    .chars()
                    .next()
                    .filter(|c| c.is_ascii_graphic())
                    .unwrap_or('#');
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            out.push_str(&format!("{name:>label_w$} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>label_w$}  0 ms {:>w$.0} ms\n",
            "",
            makespan,
            w = width.saturating_sub(5)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task: usize, proc: usize, start: f64, end: f64, solo: f64) -> Span {
        Span {
            task,
            label: format!("t{task}"),
            processor: ProcessorId(proc),
            start_ms: start,
            end_ms: end,
            solo_ms: solo,
        }
    }

    fn trace(spans: Vec<Span>, procs: usize) -> Trace {
        Trace {
            spans,
            memory: Vec::new(),
            processor_count: procs,
        }
    }

    #[test]
    fn makespan_is_latest_end() {
        let t = trace(
            vec![span(0, 0, 0.0, 5.0, 5.0), span(1, 1, 2.0, 9.0, 7.0)],
            2,
        );
        assert_eq!(t.makespan_ms(), 9.0);
    }

    #[test]
    fn slowdown_measures_stretch() {
        let s = span(0, 0, 0.0, 12.0, 10.0);
        assert!((s.slowdown() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_bubbles() {
        // proc 0 busy [0,4] and [6,10]: bubble of 2ms, utilization 0.8.
        let t = trace(
            vec![span(0, 0, 0.0, 4.0, 4.0), span(1, 0, 6.0, 10.0, 4.0)],
            1,
        );
        assert!((t.idle_bubble_ms() - 2.0).abs() < 1e-12);
        assert!((t.utilization(ProcessorId(0)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = trace(vec![], 2);
        assert_eq!(t.makespan_ms(), 0.0);
        assert_eq!(t.idle_bubble_ms(), 0.0);
        assert_eq!(t.throughput_per_sec(), 0.0);
        assert_eq!(t.mean_utilization(), 0.0);
        assert!(t.render_gantt(&["A", "B"], 40).contains("empty"));
    }

    #[test]
    fn gantt_marks_busy_and_idle_cells() {
        // proc 0 busy first half, proc 1 busy second half.
        let t = trace(
            vec![span(0, 0, 0.0, 5.0, 5.0), span(1, 1, 5.0, 10.0, 5.0)],
            2,
        );
        let g = t.render_gantt(&["P0", "P1"], 20);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("  P0 |"));
        assert!(lines[0].contains('t'), "busy cells use the label char");
        assert!(lines[0].contains('.'), "idle cells are dots");
        assert!(lines[1].starts_with("  P1 |"));
        // P0's busy cells are in the first half of the row.
        let row0: Vec<char> = lines[0].chars().skip(6).take(20).collect();
        assert_eq!(row0[0], 't');
        assert_eq!(row0[19], '.');
    }
}
