//! Bridges the simulator to the telemetry crate: converts an engine
//! event log into a Chrome Trace Event document (one track per
//! processor, counter series for the piecewise interference rates,
//! instant markers for queue entries and audit violations) and folds a
//! finished [`Trace`] into a [`MetricsRegistry`] (per-processor
//! busy/idle/bubble/contention-slowdown milliseconds).
//!
//! Load the emitted JSON in `chrome://tracing` or
//! <https://ui.perfetto.dev> — engine tasks appear under the `engine`
//! process, planner phases (via [`add_planner_spans`]) under the
//! `planner` process.

use h2p_telemetry::chrome::{Arg, TraceDoc};
use h2p_telemetry::span::SpanRecord;
use h2p_telemetry::MetricsRegistry;

use crate::audit::AuditReport;
use crate::engine::{EngineEvent, TaskSpec};
use crate::soc::SocSpec;
use crate::timeline::Trace;

/// `pid` of the engine process in exported traces: one thread (track)
/// per processor, `tid` = processor index.
pub const ENGINE_PID: u32 = 1;
/// `pid` of the planner process: one track per planner thread lane.
pub const PLANNER_PID: u32 = 2;

const US_PER_MS: f64 = 1000.0;

/// Converts an engine event log into a Chrome Trace document.
///
/// The mapping is exact and lossless over the log:
/// - every `Start`/`Finish` pair becomes exactly one `X` complete
///   slice on its processor's track (`args`: solo time, intensity,
///   realized average slowdown),
/// - every `Rate` event becomes exactly one `C` counter sample named
///   `rate:<processor>` with `slowdown`/`thermal`/`memory` series,
/// - every `Ready` event becomes exactly one `i` instant on its
///   processor's track.
pub fn chrome_trace(soc: &SocSpec, tasks: &[TaskSpec], events: &[EngineEvent]) -> TraceDoc {
    let mut doc = TraceDoc::new();
    doc.process_name(ENGINE_PID, format!("engine:{}", soc.name));
    for (p, spec) in soc.processors.iter().enumerate() {
        doc.thread_name(ENGINE_PID, p as u64, spec.name.clone());
    }

    let label = |task: usize| {
        tasks
            .get(task)
            .map_or_else(|| format!("task{task}"), |t| t.label.clone())
    };
    let proc_name = |p: usize| {
        soc.processors
            .get(p)
            .map_or_else(|| format!("proc{p}"), |s| s.name.clone())
    };

    // X slices are collected first and emitted sorted by start time so
    // every track is monotone in array order (Finish events come out of
    // the engine ordered by end time, not start time).
    struct Slice {
        task: usize,
        processor: usize,
        start_ms: f64,
        end_ms: f64,
        slowdown: f64,
    }
    let mut open: Vec<Option<f64>> = vec![None; tasks.len()];
    let mut slices: Vec<Slice> = Vec::new();
    for ev in events {
        match ev {
            EngineEvent::Ready {
                time_ms,
                task,
                processor,
            } => {
                doc.instant(
                    ENGINE_PID,
                    processor.index() as u64,
                    format!("ready:{}", label(*task)),
                    "ready",
                    time_ms * US_PER_MS,
                    't',
                    Vec::new(),
                );
            }
            EngineEvent::Rate {
                time_ms,
                processor,
                slowdown,
                thermal_factor,
                memory_factor,
                ..
            } => {
                doc.counter(
                    ENGINE_PID,
                    format!("rate:{}", proc_name(processor.index())),
                    time_ms * US_PER_MS,
                    vec![
                        ("slowdown".to_owned(), Arg::Num(*slowdown)),
                        ("thermal".to_owned(), Arg::Num(*thermal_factor)),
                        ("memory".to_owned(), Arg::Num(*memory_factor)),
                    ],
                );
            }
            EngineEvent::Start { time_ms, task, .. } => {
                if let Some(slot) = open.get_mut(*task) {
                    *slot = Some(*time_ms);
                }
            }
            EngineEvent::Finish {
                time_ms,
                task,
                processor,
                slowdown,
                ..
            } => {
                let start_ms = open
                    .get_mut(*task)
                    .and_then(Option::take)
                    .unwrap_or(*time_ms);
                slices.push(Slice {
                    task: *task,
                    processor: processor.index(),
                    start_ms,
                    end_ms: *time_ms,
                    slowdown: *slowdown,
                });
            }
            EngineEvent::ProcessorDown { time_ms, processor } => {
                doc.instant(
                    ENGINE_PID,
                    processor.index() as u64,
                    format!("down:{}", proc_name(processor.index())),
                    "fault",
                    time_ms * US_PER_MS,
                    't',
                    Vec::new(),
                );
            }
            EngineEvent::Throttle {
                time_ms,
                processor,
                factor,
            } => {
                doc.instant(
                    ENGINE_PID,
                    processor.index() as u64,
                    format!("throttle:{}", proc_name(processor.index())),
                    "fault",
                    time_ms * US_PER_MS,
                    't',
                    vec![("factor".to_owned(), Arg::Num(*factor))],
                );
            }
            EngineEvent::TaskFailed {
                time_ms,
                task,
                processor,
                kind,
            } => {
                doc.instant(
                    ENGINE_PID,
                    processor.index() as u64,
                    format!("failed:{}", label(*task)),
                    "fault",
                    time_ms * US_PER_MS,
                    't',
                    vec![("kind".to_owned(), Arg::Str(kind.as_str().to_owned()))],
                );
                // A failed task never gets a Finish event; drop its open
                // start so it doesn't leak into another slice.
                if let Some(slot) = open.get_mut(*task) {
                    *slot = None;
                }
            }
        }
    }
    slices.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    for s in slices {
        let mut args = vec![
            ("task".to_owned(), Arg::Int(s.task as i64)),
            ("slowdown".to_owned(), Arg::Num(s.slowdown)),
        ];
        if let Some(spec) = tasks.get(s.task) {
            args.push(("solo_ms".to_owned(), Arg::Num(spec.solo_ms)));
            args.push(("intensity".to_owned(), Arg::Num(spec.intensity)));
        }
        doc.complete(
            ENGINE_PID,
            s.processor as u64,
            label(s.task),
            "task",
            s.start_ms * US_PER_MS,
            (s.end_ms - s.start_ms) * US_PER_MS,
            args,
        );
    }
    doc
}

/// Adds the planner's recorded phase spans under [`PLANNER_PID`], one
/// track per planner thread lane. Open (never-closed) spans are
/// skipped.
pub fn add_planner_spans(doc: &mut TraceDoc, spans: &[SpanRecord]) {
    if spans.is_empty() {
        return;
    }
    doc.process_name(PLANNER_PID, "planner");
    let mut lanes: Vec<u64> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        let name = if lane == 0 {
            "planner-main".to_owned()
        } else {
            format!("planner-worker-{lane}")
        };
        doc.thread_name(PLANNER_PID, lane, name);
    }
    for s in spans.iter().filter(|s| s.is_closed()) {
        doc.complete(
            PLANNER_PID,
            s.lane,
            s.name.clone(),
            "planner",
            s.start_us,
            s.dur_us,
            vec![("span_id".to_owned(), Arg::Str(format!("{:016x}", s.id)))],
        );
    }
}

/// Adds one global instant marker per audit violation, anchored to the
/// offending task's span start when the violation names a task.
pub fn add_audit_instants(doc: &mut TraceDoc, report: &AuditReport, trace: &Trace) {
    for v in &report.violations {
        let anchor = v.task().and_then(|t| trace.span(t));
        let ts_us = anchor.map_or(0.0, |s| s.start_ms * US_PER_MS);
        let tid = anchor.map_or(0, |s| s.processor.index() as u64);
        doc.instant(
            ENGINE_PID,
            tid,
            format!("violation: {v}"),
            "audit",
            ts_us,
            'g',
            Vec::new(),
        );
    }
}

/// Folds a finished trace into the registry: per-processor
/// `engine.<proc>.busy_ms` / `idle_ms` / `bubble_ms` / `stretch_ms`
/// gauges (stretch = time lost to co-execution slowdown, `Σ duration −
/// solo`), the global makespan and bubble totals, a span counter, and
/// an `engine.span_ms` duration histogram.
pub fn record_trace_metrics(soc: &SocSpec, trace: &Trace, metrics: &MetricsRegistry) {
    let makespan = trace.makespan_ms();
    metrics.gauge("engine.makespan_ms", makespan);
    metrics.gauge("engine.bubble_ms", trace.idle_bubble_ms());
    metrics.add("engine.spans", trace.spans.len() as u64);
    for span in &trace.spans {
        metrics.observe("engine.span_ms", span.duration_ms());
    }
    for (p, spec) in soc.processors.iter().enumerate() {
        let mut on_proc: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.processor.index() == p)
            .collect();
        on_proc.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        let busy: f64 = on_proc.iter().map(|s| s.duration_ms()).sum();
        let stretch: f64 = on_proc
            .iter()
            .map(|s| (s.duration_ms() - s.solo_ms).max(0.0))
            .sum();
        let bubble: f64 = on_proc
            .windows(2)
            .map(|w| (w[1].start_ms - w[0].end_ms).max(0.0))
            .sum();
        let name = &spec.name;
        metrics.gauge(&format!("engine.{name}.busy_ms"), busy);
        metrics.gauge(
            &format!("engine.{name}.idle_ms"),
            (makespan - busy).max(0.0),
        );
        metrics.gauge(&format!("engine.{name}.bubble_ms"), bubble);
        metrics.gauge(&format!("engine.{name}.stretch_ms"), stretch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::processor::ProcessorKind;

    fn logged_run() -> (SocSpec, Vec<TaskSpec>, Trace, Vec<EngineEvent>) {
        let soc = SocSpec::kirin_990();
        let npu = soc
            .processor_by_kind(ProcessorKind::Npu)
            .expect("preset has NPU");
        let gpu = soc
            .processor_by_kind(ProcessorKind::Gpu)
            .expect("preset has GPU");
        let mut sim = Simulation::new(soc.clone());
        let a = sim.add_task(TaskSpec::new("a", npu, 5.0).intensity(0.7));
        sim.add_task(TaskSpec::new("b", gpu, 4.0).intensity(0.9).after(a));
        sim.add_task(TaskSpec::new("c", npu, 2.0).release(1.0));
        let tasks = sim.tasks().to_vec();
        let (trace, events) = sim.run_with_events().expect("runs");
        (soc, tasks, trace, events)
    }

    #[test]
    fn chrome_trace_maps_every_event() {
        let (soc, tasks, trace, events) = logged_run();
        let doc = chrome_trace(&soc, &tasks, &events);
        doc.validate().expect("valid trace");
        let xs = doc.events.iter().filter(|e| e.ph == 'X').count();
        assert_eq!(xs, trace.spans.len());
        let counters = doc.events.iter().filter(|e| e.ph == 'C').count();
        let rates = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::Rate { .. }))
            .count();
        assert_eq!(counters, rates);
        let instants = doc
            .events
            .iter()
            .filter(|e| e.ph == 'i' && e.cat == "ready")
            .count();
        assert_eq!(instants, tasks.len());
    }

    #[test]
    fn audit_instants_anchor_to_tasks() {
        let (soc, tasks, trace, events) = logged_run();
        let mut doc = chrome_trace(&soc, &tasks, &events);
        let report = AuditReport {
            violations: vec![crate::audit::Violation::TooSlow {
                task: 1,
                duration_ms: 99.0,
                bound_ms: 10.0,
            }],
            checks: 1,
        };
        add_audit_instants(&mut doc, &report, &trace);
        let v = doc
            .events
            .iter()
            .find(|e| e.cat == "audit")
            .expect("violation instant");
        assert_eq!(v.tid, trace.spans[1].processor.index() as u64);
        assert!((v.ts_us - trace.spans[1].start_ms * 1000.0).abs() < 1e-9);
        doc.validate().expect("still valid");
    }

    #[test]
    fn trace_metrics_account_busy_and_bubbles() {
        let (soc, _tasks, trace, _events) = logged_run();
        let metrics = MetricsRegistry::new();
        record_trace_metrics(&soc, &trace, &metrics);
        let snap = metrics.snapshot();
        assert!(!snap.is_empty());
        assert_eq!(snap.counter("engine.spans"), Some(trace.spans.len() as u64));
        let makespan = snap.gauge("engine.makespan_ms").expect("recorded");
        assert!((makespan - trace.makespan_ms()).abs() < 1e-9);
        // Busy + idle = makespan on every processor.
        for spec in &soc.processors {
            let busy = snap
                .gauge(&format!("engine.{}.busy_ms", spec.name))
                .expect("busy");
            let idle = snap
                .gauge(&format!("engine.{}.idle_ms", spec.name))
                .expect("idle");
            assert!((busy + idle - makespan).abs() < 1e-6, "{}", spec.name);
        }
    }
}
