//! Error types for the SoC simulator.

use std::fmt;

/// Errors produced while constructing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A task referenced a processor id that does not exist on the SoC.
    UnknownProcessor {
        /// The offending processor index.
        index: usize,
        /// Number of processors on the SoC.
        available: usize,
    },
    /// A task listed a dependency on a task id that was never registered.
    UnknownDependency {
        /// The task whose dependency list is invalid.
        task: usize,
        /// The missing dependency id.
        dependency: usize,
    },
    /// The task graph contains a dependency cycle, so the simulation can
    /// never drain.
    CyclicDependency {
        /// Number of tasks that could not be scheduled.
        stuck: usize,
    },
    /// A task was given a non-finite or negative solo execution time.
    InvalidDuration {
        /// The task with the invalid duration.
        task: usize,
        /// The rejected value in milliseconds.
        solo_ms: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownProcessor { index, available } => write!(
                f,
                "task references processor {index} but the SoC only has {available} processors"
            ),
            SimError::UnknownDependency { task, dependency } => {
                write!(f, "task {task} depends on unregistered task {dependency}")
            }
            SimError::CyclicDependency { stuck } => write!(
                f,
                "task graph contains a cycle: {stuck} tasks can never become ready"
            ),
            SimError::InvalidDuration { task, solo_ms } => write!(
                f,
                "task {task} has invalid solo execution time {solo_ms} ms"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SimError::CyclicDependency { stuck: 3 };
        let msg = err.to_string();
        assert!(msg.contains("cycle"));
        assert!(msg.contains('3'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
