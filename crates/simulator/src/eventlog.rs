//! Typed ingestion of the JSON-lines engine event log.
//!
//! [`EngineEvent::json_line`] and the `h2p trace --events` writer emit
//! one flat JSON object per line: a `task` header line per submitted
//! task followed by the events in simulation-time order. This module is
//! the trusted read path back: [`parse_event_log`] turns that text into
//! typed [`EngineEvent`]s and [`TaskHeader`]s, rejecting malformed
//! lines and non-finite timestamps with a line-numbered [`ParseError`]
//! instead of panicking or silently accepting garbage (an `f64` parse
//! happily accepts `NaN` and `inf` tokens, which would poison every
//! downstream time comparison).
//!
//! Unknown event *kinds* and unknown lifecycle *stages* are the one
//! deliberate exception: they parse as typed [`ParseWarning`]s on the
//! returned [`ParsedLog`] rather than hard errors, so an old binary can
//! still read a log written by a newer one that speaks more of the
//! grammar (forward compatibility). Warnings are never silent — callers
//! surface them alongside the parsed streams.
//!
//! The vendored serde has no JSON backend, so the parser is a small
//! hand-rolled scanner for exactly the flat string/number objects the
//! writers produce.

use std::fmt;

use h2p_telemetry::lifecycle::{LifecycleEvent, LifecycleStage, RequestId, TraceId};

use crate::engine::EngineEvent;
use crate::faults::FaultKind;
use crate::processor::ProcessorId;

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes and control characters. Task labels are arbitrary
/// (models may be named anything), so every writer that interpolates a
/// label into a JSON line must route it through here.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A typed failure while ingesting an event log. Every variant carries
/// the 1-based line number of the offending line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The line is not a flat JSON object of the expected shape, or a
    /// required field is missing or of the wrong type.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// A numeric field parsed but is not finite (`NaN`, `inf`).
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// Field whose value is non-finite.
        field: String,
    },
}

impl ParseError {
    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        match self {
            ParseError::Malformed { line, .. } | ParseError::NonFinite { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed { line, detail } => {
                write!(f, "event log line {line}: {detail}")
            }
            ParseError::NonFinite { line, field } => {
                write!(f, "event log line {line}: field `{field}` is not finite")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A non-fatal, typed ingestion warning: the line was well-formed JSON
/// but named an event kind or lifecycle stage this binary does not
/// know. The line is skipped (its content is preserved in the warning)
/// and parsing continues, so logs written by newer binaries with a
/// richer grammar still load.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseWarning {
    /// The line's `event` field names a kind this parser does not know.
    UnknownEvent {
        /// The unrecognised kind.
        kind: String,
        /// 1-based line number.
        line: usize,
    },
    /// A `lifecycle` line's `stage` field names a stage this parser
    /// does not know.
    UnknownLifecycleStage {
        /// The unrecognised stage tag.
        stage: String,
        /// 1-based line number.
        line: usize,
    },
}

impl ParseWarning {
    /// 1-based line number of the skipped line.
    pub fn line(&self) -> usize {
        match self {
            ParseWarning::UnknownEvent { line, .. }
            | ParseWarning::UnknownLifecycleStage { line, .. } => *line,
        }
    }
}

impl fmt::Display for ParseWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseWarning::UnknownEvent { kind, line } => {
                write!(
                    f,
                    "event log line {line}: unknown event kind `{kind}` (skipped)"
                )
            }
            ParseWarning::UnknownLifecycleStage { stage, line } => {
                write!(
                    f,
                    "event log line {line}: unknown lifecycle stage `{stage}` (skipped)"
                )
            }
        }
    }
}

/// One `task` header line: the task metadata the `--events` writer
/// prefixes the log with so a log file is self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskHeader {
    /// Task id (submission index).
    pub task: usize,
    /// Human-readable label.
    pub label: String,
    /// Processor the task was pinned to.
    pub processor: ProcessorId,
    /// Solo execution time in ms.
    pub solo_ms: f64,
}

/// A fully parsed event log: the `task` headers (possibly empty for a
/// bare event stream) and the engine events in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedLog {
    /// `task` header lines, in file order.
    pub tasks: Vec<TaskHeader>,
    /// Engine events, in file order.
    pub events: Vec<EngineEvent>,
    /// Request lifecycle events (`"event":"lifecycle"` lines), in file
    /// order — the causal request history interleaved with the engine
    /// stream by the `--events` writers.
    pub lifecycle: Vec<LifecycleEvent>,
    /// Typed forward-compatibility warnings for well-formed lines whose
    /// event kind or lifecycle stage this binary does not know; the
    /// lines were skipped, not rejected.
    pub warnings: Vec<ParseWarning>,
}

impl ParsedLog {
    /// Number of tasks the log describes: the header count, or the
    /// highest task id mentioned by any event plus one.
    pub fn task_count(&self) -> usize {
        let from_events = self
            .events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::Ready { task, .. }
                | EngineEvent::Start { task, .. }
                | EngineEvent::Rate { task, .. }
                | EngineEvent::Finish { task, .. }
                | EngineEvent::TaskFailed { task, .. } => Some(task + 1),
                EngineEvent::ProcessorDown { .. } | EngineEvent::Throttle { .. } => None,
            })
            .max()
            .unwrap_or(0);
        self.tasks.len().max(from_events)
    }
}

/// One scanned JSON value: the writers only ever emit flat objects of
/// strings and numbers.
enum Val {
    Str(String),
    Num(f64),
}

/// Scans one flat JSON object (`{"k":v,...}`) into key/value pairs.
fn scan_object(line: &str) -> Result<Vec<(String, Val)>, String> {
    let mut chars = line.char_indices().peekable();
    let mut out = Vec::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    };
    let scan_string =
        |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| -> Result<String, String> {
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err("expected `\"`".to_owned()),
            }
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some((_, '"')) => return Ok(s),
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '"')) => s.push('"'),
                        Some((_, '\\')) => s.push('\\'),
                        Some((_, '/')) => s.push('/'),
                        Some((_, 'n')) => s.push('\n'),
                        Some((_, 'r')) => s.push('\r'),
                        Some((_, 't')) => s.push('\t'),
                        Some((_, 'u')) => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = chars
                                    .next()
                                    .and_then(|(_, c)| c.to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                            }
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!(
                                "bad escape `\\{}`",
                                other.map_or(String::new(), |(_, c)| c.to_string())
                            ))
                        }
                    },
                    Some((_, c)) if (c as u32) < 0x20 => {
                        return Err("raw control character in string".to_owned())
                    }
                    Some((_, c)) => s.push(c),
                    None => return Err("unterminated string".to_owned()),
                }
            }
        };

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("expected `{`".to_owned()),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = scan_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                _ => return Err(format!("expected `:` after key `{key}`")),
            }
            skip_ws(&mut chars);
            let val = if matches!(chars.peek(), Some((_, '"'))) {
                Val::Str(scan_string(&mut chars)?)
            } else {
                // Number token: consume up to the next `,`/`}`. The
                // writers can emit `NaN`/`inf` tokens (they format f64
                // with `{}`), so accept the alphabetic forms here and
                // let the typed layer above reject non-finite values
                // with a dedicated error.
                let mut tok = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c == ',' || c == '}' {
                        break;
                    }
                    tok.push(c);
                    chars.next();
                }
                let tok = tok.trim();
                let v: f64 = tok
                    .parse()
                    .map_err(|_| format!("bad number `{tok}` for key `{key}`"))?;
                Val::Num(v)
            };
            out.push((key, val));
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                _ => return Err("expected `,` or `}`".to_owned()),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".to_owned());
    }
    Ok(out)
}

struct Fields<'a> {
    line: usize,
    pairs: &'a [(String, Val)],
}

impl Fields<'_> {
    fn num(&self, key: &str) -> Result<f64, ParseError> {
        for (k, v) in self.pairs {
            if k == key {
                return match v {
                    Val::Num(n) if n.is_finite() => Ok(*n),
                    Val::Num(_) => Err(ParseError::NonFinite {
                        line: self.line,
                        field: key.to_owned(),
                    }),
                    Val::Str(_) => Err(ParseError::Malformed {
                        line: self.line,
                        detail: format!("field `{key}` must be a number"),
                    }),
                };
            }
        }
        Err(ParseError::Malformed {
            line: self.line,
            detail: format!("missing field `{key}`"),
        })
    }

    fn index(&self, key: &str) -> Result<usize, ParseError> {
        let v = self.num(key)?;
        if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
            return Err(ParseError::Malformed {
                line: self.line,
                detail: format!("field `{key}` must be a small non-negative integer, got {v}"),
            });
        }
        Ok(v as usize)
    }

    fn time(&self, key: &str) -> Result<f64, ParseError> {
        let v = self.num(key)?;
        if v < 0.0 {
            return Err(ParseError::Malformed {
                line: self.line,
                detail: format!("field `{key}` must be non-negative, got {v}"),
            });
        }
        Ok(v)
    }

    fn str(&self, key: &str) -> Result<&str, ParseError> {
        for (k, v) in self.pairs {
            if k == key {
                return match v {
                    Val::Str(s) => Ok(s),
                    Val::Num(_) => Err(ParseError::Malformed {
                        line: self.line,
                        detail: format!("field `{key}` must be a string"),
                    }),
                };
            }
        }
        Err(ParseError::Malformed {
            line: self.line,
            detail: format!("missing field `{key}`"),
        })
    }
}

/// Parses a JSON-lines event log (the format `h2p trace --events`
/// writes and [`EngineEvent::json_line`] emits). Blank lines are
/// skipped. `task` header lines may appear anywhere but conventionally
/// lead the file.
///
/// # Errors
///
/// Returns the first [`ParseError`] found, carrying the 1-based line
/// number: malformed JSON, missing or mistyped fields, and non-finite
/// numeric values are all rejected. Well-formed lines with an unknown
/// event kind or lifecycle stage are *not* errors: they are skipped and
/// reported as typed [`ParseWarning`]s on the returned log, so this
/// binary can read logs written by newer ones.
pub fn parse_event_log(text: &str) -> Result<ParsedLog, ParseError> {
    let mut log = ParsedLog::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let pairs = scan_object(raw).map_err(|detail| ParseError::Malformed { line, detail })?;
        let f = Fields {
            line,
            pairs: &pairs,
        };
        let kind = f.str("event")?;
        match kind {
            "task" => log.tasks.push(TaskHeader {
                task: f.index("task")?,
                label: f.str("label")?.to_owned(),
                processor: ProcessorId(f.index("processor")?),
                solo_ms: f.time("solo_ms")?,
            }),
            "ready" => log.events.push(EngineEvent::Ready {
                time_ms: f.time("time_ms")?,
                task: f.index("task")?,
                processor: ProcessorId(f.index("processor")?),
            }),
            "start" => log.events.push(EngineEvent::Start {
                time_ms: f.time("time_ms")?,
                task: f.index("task")?,
                processor: ProcessorId(f.index("processor")?),
            }),
            "rate" => log.events.push(EngineEvent::Rate {
                time_ms: f.time("time_ms")?,
                task: f.index("task")?,
                processor: ProcessorId(f.index("processor")?),
                slowdown: f.num("slowdown")?,
                thermal_factor: f.num("thermal_factor")?,
                memory_factor: f.num("memory_factor")?,
            }),
            "finish" => log.events.push(EngineEvent::Finish {
                time_ms: f.time("time_ms")?,
                task: f.index("task")?,
                processor: ProcessorId(f.index("processor")?),
                duration_ms: f.time("duration_ms")?,
                slowdown: f.num("slowdown")?,
            }),
            "processor_down" => log.events.push(EngineEvent::ProcessorDown {
                time_ms: f.time("time_ms")?,
                processor: ProcessorId(f.index("processor")?),
            }),
            "throttle" => log.events.push(EngineEvent::Throttle {
                time_ms: f.time("time_ms")?,
                processor: ProcessorId(f.index("processor")?),
                factor: f.num("factor")?,
            }),
            "lifecycle" => {
                let trace =
                    TraceId::parse(f.str("trace")?).ok_or_else(|| ParseError::Malformed {
                        line,
                        detail: "field `trace` must be 16 hex digits".to_owned(),
                    })?;
                let stage = match f.str("stage")? {
                    "admit" => LifecycleStage::Admit,
                    "plan" => LifecycleStage::Plan,
                    "window" => LifecycleStage::Window {
                        window: f.index("window")?,
                    },
                    "execute" => LifecycleStage::Execute,
                    "recover" => LifecycleStage::Recover {
                        round: f.index("round")?,
                    },
                    "degrade" => LifecycleStage::Degrade {
                        reason: f.str("reason")?.to_owned(),
                    },
                    "complete" => LifecycleStage::Complete {
                        latency_ms: f.time("latency_ms")?,
                    },
                    "reject" => LifecycleStage::Reject {
                        reason: f.str("reason")?.to_owned(),
                    },
                    "shed" => LifecycleStage::Shed {
                        reason: f.str("reason")?.to_owned(),
                    },
                    other => {
                        log.warnings.push(ParseWarning::UnknownLifecycleStage {
                            stage: other.to_owned(),
                            line,
                        });
                        continue;
                    }
                };
                log.lifecycle.push(LifecycleEvent {
                    trace,
                    request: RequestId(f.index("request")?),
                    seq: f.index("seq")? as u64,
                    at_ms: f.time("at_ms")?,
                    stage,
                });
            }
            "task_failed" => log.events.push(EngineEvent::TaskFailed {
                time_ms: f.time("time_ms")?,
                task: f.index("task")?,
                processor: ProcessorId(f.index("processor")?),
                kind: match f.str("kind")? {
                    "transient" => FaultKind::Transient,
                    "dropout" => FaultKind::Dropout,
                    other => {
                        return Err(ParseError::Malformed {
                            line,
                            detail: format!("unknown failure kind `{other}`"),
                        })
                    }
                },
            }),
            other => {
                log.warnings.push(ParseWarning::UnknownEvent {
                    kind: other.to_owned(),
                    line,
                });
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Simulation, TaskSpec};
    use crate::faults::FaultInjector;
    use crate::processor::ProcessorKind;
    use crate::soc::SocSpec;

    fn logged_lines() -> (String, usize, Vec<EngineEvent>) {
        let soc = SocSpec::kirin_990();
        let npu = soc
            .processor_by_kind(ProcessorKind::Npu)
            .expect("preset has NPU");
        let gpu = soc
            .processor_by_kind(ProcessorKind::Gpu)
            .expect("preset has GPU");
        let mut sim = Simulation::new(soc);
        let a = sim.add_task(TaskSpec::new("say \"hi\"\\", npu, 5.0).intensity(0.8));
        sim.add_task(TaskSpec::new("b", gpu, 4.0).intensity(0.5).after(a));
        let tasks = sim.tasks().to_vec();
        let (_, events) = sim.run_with_events().expect("runs");
        let mut text = String::new();
        for (i, t) in tasks.iter().enumerate() {
            text.push_str(&format!(
                "{{\"event\":\"task\",\"task\":{i},\"label\":\"{}\",\"processor\":{},\"solo_ms\":{}}}\n",
                json_escape(&t.label),
                t.processor.index(),
                t.solo_ms
            ));
        }
        for e in &events {
            text.push_str(&e.json_line());
            text.push('\n');
        }
        (text, tasks.len(), events)
    }

    #[test]
    fn round_trips_writer_output() {
        let (text, n_tasks, events) = logged_lines();
        let log = parse_event_log(&text).expect("parses");
        assert_eq!(log.tasks.len(), n_tasks);
        assert_eq!(log.events, events);
        assert_eq!(log.task_count(), n_tasks);
        // The escaped label round-trips to the original.
        assert_eq!(log.tasks[0].label, "say \"hi\"\\");
    }

    #[test]
    fn round_trips_fault_events() {
        let soc = SocSpec::kirin_990();
        let npu = soc
            .processor_by_kind(ProcessorKind::Npu)
            .expect("preset has NPU");
        let mut sim = Simulation::new(soc);
        sim.add_task(TaskSpec::new("a", npu, 5.0));
        sim.add_task(TaskSpec::new("b", npu, 5.0));
        let inj = FaultInjector::new(4)
            .throttle(npu, 0.0, 3.0, 0.5)
            .dropout(npu, 7.0);
        let (_, events) = sim.run_faulted(&inj).expect("runs");
        assert!(events
            .iter()
            .any(|e| matches!(e, EngineEvent::ProcessorDown { .. })));
        let text: String = events.iter().map(|e| e.json_line() + "\n").collect();
        let log = parse_event_log(&text).expect("parses");
        assert_eq!(log.events, events);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (bad, expect_line) in [
            ("not json", 1),
            ("{\"event\":\"ready\",\"time_ms\":1}", 1),          // missing task
            ("{\"event\":\"ready\",\"time_ms\":1,\"task\":0,\"processor\":0}trailing", 1),
            ("{\"event\":\"ready\",\"time_ms\":1,\"task\":0,\"processor\":0\n", 1), // unterminated
            ("{\"event\":\"ready\",\"time_ms\":1,\"task\":1.5,\"processor\":0}", 1),
            ("{\"event\":\"ready\",\"time_ms\":-2,\"task\":0,\"processor\":0}", 1),
            ("{\"event\":\"ready\",\"time_ms\":1,\"task\":0,\"processor\":0}\n{\"event\":\"start\"}", 2),
            ("{\"event\":\"task_failed\",\"time_ms\":1,\"task\":0,\"processor\":0,\"kind\":\"gremlins\"}", 1),
            ("{\"event\":\"task\",\"task\":0,\"label\":3,\"processor\":0,\"solo_ms\":1}", 1),
        ] {
            let err = parse_event_log(bad).expect_err(bad);
            assert!(matches!(err, ParseError::Malformed { .. }), "{bad}: {err}");
            assert_eq!(err.line(), expect_line, "{bad}");
        }
    }

    #[test]
    fn rejects_non_finite_times_with_typed_error() {
        for bad in [
            "{\"event\":\"ready\",\"time_ms\":NaN,\"task\":0,\"processor\":0}",
            "{\"event\":\"ready\",\"time_ms\":inf,\"task\":0,\"processor\":0}",
            "{\"event\":\"finish\",\"time_ms\":1,\"task\":0,\"processor\":0,\"duration_ms\":-inf,\"slowdown\":0}",
            "{\"event\":\"rate\",\"time_ms\":1,\"task\":0,\"processor\":0,\"slowdown\":NaN,\"thermal_factor\":1,\"memory_factor\":1}",
        ] {
            let err = parse_event_log(bad).expect_err(bad);
            assert!(matches!(err, ParseError::NonFinite { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn round_trips_lifecycle_lines() {
        use h2p_telemetry::lifecycle::LifecycleLog;
        let lc = LifecycleLog::new();
        let t = TraceId::of_names(["bert", "vit"]);
        lc.record(t, RequestId(0), 0.0, LifecycleStage::Admit);
        lc.record(t, RequestId(0), 0.0, LifecycleStage::Plan);
        lc.record(t, RequestId(0), 0.0, LifecycleStage::Window { window: 1 });
        lc.record(t, RequestId(0), 2.5, LifecycleStage::Execute);
        lc.record(t, RequestId(1), 3.0, LifecycleStage::Recover { round: 2 });
        lc.record(
            t,
            RequestId(1),
            4.0,
            LifecycleStage::Degrade {
                reason: "deadline \"burst\"".into(),
            },
        );
        lc.record(
            t,
            RequestId(0),
            9.5,
            LifecycleStage::Complete { latency_ms: 9.5 },
        );
        lc.record(
            t,
            RequestId(2),
            10.0,
            LifecycleStage::Reject {
                reason: "queue_full".into(),
            },
        );
        lc.record(
            t,
            RequestId(3),
            11.0,
            LifecycleStage::Shed {
                reason: "slack_below_solo".into(),
            },
        );
        let text: String = lc.json_lines().iter().map(|l| l.clone() + "\n").collect();
        let log = parse_event_log(&text).expect("parses");
        assert_eq!(log.lifecycle, lc.records());
        assert!(log.warnings.is_empty());
        // Mixed with engine lines, both streams survive.
        let (engine_text, n_tasks, events) = logged_lines();
        let mixed = format!("{engine_text}{text}");
        let log = parse_event_log(&mixed).expect("parses mixed");
        assert_eq!(log.tasks.len(), n_tasks);
        assert_eq!(log.events, events);
        assert_eq!(log.lifecycle.len(), 9);
        // Malformed lifecycle lines fail typed.
        for bad in [
            "{\"event\":\"lifecycle\",\"trace\":\"xyz\",\"request\":0,\"seq\":0,\"at_ms\":0,\"stage\":\"admit\"}",
            "{\"event\":\"lifecycle\",\"trace\":\"0000000000000abc\",\"request\":0,\"seq\":0,\"at_ms\":0,\"stage\":\"window\"}",
            "{\"event\":\"lifecycle\",\"trace\":\"0000000000000abc\",\"request\":0,\"seq\":0,\"at_ms\":0,\"stage\":\"reject\"}",
        ] {
            let err = parse_event_log(bad).expect_err(bad);
            assert!(matches!(err, ParseError::Malformed { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn unknown_kinds_and_stages_warn_instead_of_failing() {
        // Forward compatibility: a log written by a newer binary with a
        // richer grammar still loads — the unknown lines are skipped
        // with typed warnings, the known streams survive intact.
        let (engine_text, n_tasks, events) = logged_lines();
        let future = format!(
            "{engine_text}\
             {{\"event\":\"frobnicate\",\"time_ms\":1}}\n\
             {{\"event\":\"lifecycle\",\"trace\":\"0000000000000abc\",\"request\":0,\"seq\":0,\"at_ms\":0,\"stage\":\"admit\"}}\n\
             {{\"event\":\"lifecycle\",\"trace\":\"0000000000000abc\",\"request\":0,\"seq\":1,\"at_ms\":0,\"stage\":\"hibernate\",\"depth\":3}}\n"
        );
        let n_engine_lines = engine_text.lines().count();
        let log = parse_event_log(&future).expect("future log parses");
        assert_eq!(log.tasks.len(), n_tasks);
        assert_eq!(log.events, events);
        assert_eq!(log.lifecycle.len(), 1);
        assert_eq!(
            log.warnings,
            vec![
                ParseWarning::UnknownEvent {
                    kind: "frobnicate".into(),
                    line: n_engine_lines + 1,
                },
                ParseWarning::UnknownLifecycleStage {
                    stage: "hibernate".into(),
                    line: n_engine_lines + 3,
                },
            ]
        );
        // Warnings render with their line numbers for operators.
        assert!(log.warnings[0].to_string().contains("frobnicate"));
        assert_eq!(log.warnings[1].line(), n_engine_lines + 3);
        // Unknown-kind lines must still be well-formed JSON to warn;
        // garbage stays a hard error.
        let err = parse_event_log("{\"event\":\"frobnicate\",\"x\":").expect_err("garbage");
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn fuzz_mutated_writer_lines_never_panic() {
        // Fuzz-style robustness: byte-level mutations of valid lines
        // must parse or fail typed, never panic. Deterministic LCG so
        // the test is reproducible.
        let (text, _, _) = logged_lines();
        let lines: Vec<&str> = text.lines().collect();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let src = lines[(rng() as usize) % lines.len()];
            let mut bytes = src.as_bytes().to_vec();
            match rng() % 4 {
                0 if !bytes.is_empty() => {
                    // flip a byte
                    let i = (rng() as usize) % bytes.len();
                    bytes[i] = (rng() % 256) as u8;
                }
                1 if !bytes.is_empty() => {
                    // truncate
                    bytes.truncate((rng() as usize) % bytes.len());
                }
                2 => {
                    // duplicate a slice
                    let i = (rng() as usize) % (bytes.len() + 1);
                    let tail: Vec<u8> = bytes[i..].to_vec();
                    bytes.extend_from_slice(&tail);
                }
                _ => {
                    // insert a random byte
                    let i = (rng() as usize) % (bytes.len() + 1);
                    bytes.insert(i, (rng() % 256) as u8);
                }
            }
            let mutated = String::from_utf8_lossy(&bytes);
            let _ = parse_event_log(&mutated); // must not panic
        }
    }

    #[test]
    fn json_escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
