//! # h2p-simulator
//!
//! A deterministic, rate-based discrete-event simulator of heterogeneous
//! mobile systems-on-chip (SoCs), built as the hardware substrate for the
//! Hetero²Pipe reproduction.
//!
//! The simulator models the properties of commercial mobile SoCs that the
//! paper's planner depends on:
//!
//! * **Heterogeneous processors** — CPU Big/Small clusters, an OpenCL GPU
//!   and an NPU, each with distinct throughput, per-kernel overhead and
//!   operator support ([`processor`], [`soc`]).
//! * **Co-execution slowdown** — tasks that overlap in time on *different*
//!   processors interfere on the shared memory bus. Progress rates are
//!   recomputed at every start/finish event from the co-runners'
//!   contention intensities and a per-processor-pair coupling matrix
//!   ([`interference`]). Slowdown is symmetric across CPU/GPU
//!   (Observation 1 of the paper) and NPU pairs are nearly immune.
//! * **Memory subsystem** — a footprint ledger with a capacity constraint,
//!   page-fault penalties when the working set exceeds physical memory and
//!   a demand-driven memory-frequency governor ([`memory`]).
//! * **Thermal behaviour** — a heat integrator per processor with
//!   frequency throttling above a threshold ([`thermal`]).
//!
//! The main entry point is [`engine::Simulation`]: submit a DAG of
//! [`engine::TaskSpec`]s, call [`engine::Simulation::run`], and inspect the
//! returned [`timeline::Trace`]. [`engine::Simulation::run_with_events`]
//! additionally yields a structured event log, and [`audit::audit`]
//! re-validates a finished trace against every contract the engine is
//! supposed to uphold.
//!
//! ## Example
//!
//! ```
//! use h2p_simulator::soc::SocSpec;
//! use h2p_simulator::engine::{Simulation, TaskSpec};
//!
//! # fn main() -> Result<(), h2p_simulator::error::SimError> {
//! let soc = SocSpec::kirin_990();
//! let cpu_big = soc.processor_by_name("CPU_B").expect("preset has CPU_B");
//! let mut sim = Simulation::new(soc.clone());
//! let a = sim.add_task(TaskSpec::new("warmup", cpu_big, 2.0));
//! let mut b = TaskSpec::new("infer", cpu_big, 10.0);
//! b.deps.push(a);
//! sim.add_task(b);
//! let trace = sim.run()?;
//! assert!(trace.makespan_ms() >= 12.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod engine;
pub mod error;
pub mod eventlog;
pub mod export;
pub mod faults;
pub mod interference;
pub mod memory;
pub mod power;
pub mod processor;
pub mod soc;
pub mod thermal;
pub mod timeline;

pub use audit::{AuditReport, Violation};
pub use engine::{EngineEvent, Simulation, TaskId, TaskSpec};
pub use error::SimError;
pub use eventlog::{parse_event_log, ParseError, ParseWarning, ParsedLog};
pub use faults::{FaultInjector, FaultKind, FaultOutcome, FaultSpec};
pub use processor::{ProcessorId, ProcessorKind, ProcessorSpec};
pub use soc::SocSpec;
pub use timeline::Trace;
