//! SoC presets mirroring the paper's three evaluation platforms.
//!
//! * **Kirin 990** — 2×A76@2.86 + 2×A76@2.09 (Big), 4×A55@1.86 (Small),
//!   16-core Mali-G76 GPU, DaVinci NPU.
//! * **Snapdragon 778G** — 1×A78@2.40 + 3×A78@2.20 (Big), 4×A55@1.90
//!   (Small), Adreno 642L GPU, no usable NPU path in the paper's setup.
//! * **Snapdragon 870** — 1×A77@3.20 + 3×A77@2.42 (Big), 4×A55@1.80
//!   (Small), Adreno 650 GPU, no NPU.
//!
//! Throughput numbers are calibrated so that the *relative* shapes of the
//! paper hold: `NPU ≫ CPU_B ≥ GPU ≫ CPU_S` for compute-friendly kernels,
//! the GPU pays a large per-kernel OpenCL dispatch overhead, and the
//! shared-bus bandwidth sits below 20 GB/s.

use serde::{Deserialize, Serialize};

use crate::interference::CouplingMatrix;
use crate::memory::MemorySpec;
use crate::processor::{ProcessorId, ProcessorKind, ProcessorSpec};
use crate::thermal::ThermalMode;

/// Full static description of a system-on-chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSpec {
    /// Marketing name, e.g. `"Kirin 990"`.
    pub name: String,
    /// Processor table; [`ProcessorId`]s index into it.
    pub processors: Vec<ProcessorSpec>,
    /// DRAM subsystem parameters.
    pub memory: MemorySpec,
    /// Co-execution coupling matrix.
    pub coupling: CouplingMatrix,
    /// Thermal treatment for simulations on this SoC.
    pub thermal_mode: ThermalMode,
}

impl SocSpec {
    /// Builds a SoC from parts.
    pub fn new(name: impl Into<String>, processors: Vec<ProcessorSpec>) -> Self {
        SocSpec {
            name: name.into(),
            processors,
            memory: MemorySpec::mobile_default(),
            coupling: CouplingMatrix::mobile_default(),
            thermal_mode: ThermalMode::SteadyState,
        }
    }

    /// The Kirin 990 preset (the only evaluation platform with an NPU).
    pub fn kirin_990() -> Self {
        SocSpec::new(
            "Kirin 990",
            vec![
                ProcessorSpec {
                    name: "CPU_B".to_owned(),
                    kind: ProcessorKind::CpuBig,
                    cores: 4,
                    clock_ghz: 2.86,
                    peak_gflops: 58.0,
                    mem_bandwidth_gbps: 12.0,
                    l2_kib: 512,
                    kernel_overhead_ms: 0.010,
                    cluster: None,
                },
                ProcessorSpec {
                    name: "CPU_S".to_owned(),
                    kind: ProcessorKind::CpuSmall,
                    cores: 4,
                    clock_ghz: 1.86,
                    peak_gflops: 11.0,
                    mem_bandwidth_gbps: 6.0,
                    l2_kib: 256,
                    kernel_overhead_ms: 0.012,
                    cluster: None,
                },
                ProcessorSpec {
                    name: "GPU".to_owned(),
                    kind: ProcessorKind::Gpu,
                    cores: 16,
                    clock_ghz: 0.70,
                    peak_gflops: 95.0,
                    mem_bandwidth_gbps: 14.0,
                    l2_kib: 1024,
                    kernel_overhead_ms: 0.45,
                    cluster: None,
                },
                ProcessorSpec {
                    name: "NPU".to_owned(),
                    kind: ProcessorKind::Npu,
                    cores: 1,
                    clock_ghz: 0.80,
                    // Sustained FP32-equivalent throughput of the DaVinci
                    // NPU: ~3-6x the big CPU cluster, matching the paper's
                    // Fig. 1 gap rather than the INT8 marketing peak.
                    peak_gflops: 200.0,
                    mem_bandwidth_gbps: 18.0,
                    l2_kib: 8192,
                    kernel_overhead_ms: 0.12,
                    cluster: None,
                },
            ],
        )
    }

    /// The Snapdragon 778G preset (CPU Big/Small + Adreno 642L, no NPU).
    pub fn snapdragon_778g() -> Self {
        SocSpec::new(
            "Snapdragon 778G",
            vec![
                ProcessorSpec {
                    name: "CPU_B".to_owned(),
                    kind: ProcessorKind::CpuBig,
                    cores: 4,
                    clock_ghz: 2.40,
                    peak_gflops: 50.0,
                    mem_bandwidth_gbps: 11.0,
                    l2_kib: 512,
                    kernel_overhead_ms: 0.010,
                    cluster: None,
                },
                ProcessorSpec {
                    name: "CPU_S".to_owned(),
                    kind: ProcessorKind::CpuSmall,
                    cores: 4,
                    clock_ghz: 1.90,
                    peak_gflops: 11.5,
                    mem_bandwidth_gbps: 6.0,
                    l2_kib: 256,
                    kernel_overhead_ms: 0.012,
                    cluster: None,
                },
                ProcessorSpec {
                    name: "GPU".to_owned(),
                    kind: ProcessorKind::Gpu,
                    cores: 4,
                    clock_ghz: 0.55,
                    peak_gflops: 75.0,
                    mem_bandwidth_gbps: 12.0,
                    l2_kib: 1024,
                    kernel_overhead_ms: 0.40,
                    cluster: None,
                },
            ],
        )
    }

    /// The Snapdragon 870 preset (fastest CPU of the three, Adreno 650).
    pub fn snapdragon_870() -> Self {
        SocSpec::new(
            "Snapdragon 870",
            vec![
                ProcessorSpec {
                    name: "CPU_B".to_owned(),
                    kind: ProcessorKind::CpuBig,
                    cores: 4,
                    clock_ghz: 3.20,
                    peak_gflops: 62.0,
                    mem_bandwidth_gbps: 13.0,
                    l2_kib: 512,
                    kernel_overhead_ms: 0.009,
                    cluster: None,
                },
                ProcessorSpec {
                    name: "CPU_S".to_owned(),
                    kind: ProcessorKind::CpuSmall,
                    cores: 4,
                    clock_ghz: 1.80,
                    peak_gflops: 10.5,
                    mem_bandwidth_gbps: 6.0,
                    l2_kib: 256,
                    kernel_overhead_ms: 0.012,
                    cluster: None,
                },
                ProcessorSpec {
                    name: "GPU".to_owned(),
                    kind: ProcessorKind::Gpu,
                    cores: 6,
                    clock_ghz: 0.67,
                    peak_gflops: 105.0,
                    mem_bandwidth_gbps: 14.0,
                    l2_kib: 1024,
                    kernel_overhead_ms: 0.38,
                    cluster: None,
                },
            ],
        )
    }

    /// All three evaluation platforms, in the order of Fig. 7.
    pub fn evaluation_platforms() -> Vec<SocSpec> {
        vec![
            SocSpec::snapdragon_778g(),
            SocSpec::snapdragon_870(),
            SocSpec::kirin_990(),
        ]
    }

    /// A Kirin 990 variant whose Big and Small CPU clusters are split into
    /// sub-partitions sharing a cluster tag, used to reproduce the
    /// intra-cluster contention study of Fig. 10 (`BB-BB`, `SS-SS`,
    /// `BBB-B`, `SSS-S` core splits).
    ///
    /// `big_split`/`small_split` give the core counts of the two
    /// partitions of each cluster, e.g. `(2, 2)` for `BB-BB`.
    pub fn kirin_990_split_clusters(big_split: (u32, u32), small_split: (u32, u32)) -> Self {
        let base = SocSpec::kirin_990();
        let big = base.processors[0].clone();
        let small = base.processors[1].clone();
        let mut processors = Vec::new();
        for (i, &cores) in [big_split.0, big_split.1].iter().enumerate() {
            let mut p = big.clone();
            p.name = format!("CPU_B{i}");
            p.cores = cores;
            p.peak_gflops = big.peak_gflops * cores as f64 / big.cores as f64;
            p.cluster = Some(0);
            processors.push(p);
        }
        for (i, &cores) in [small_split.0, small_split.1].iter().enumerate() {
            let mut p = small.clone();
            p.name = format!("CPU_S{i}");
            p.cores = cores;
            p.peak_gflops = small.peak_gflops * cores as f64 / small.cores as f64;
            p.cluster = Some(1);
            processors.push(p);
        }
        processors.push(base.processors[2].clone());
        processors.push(base.processors[3].clone());
        let mut soc = SocSpec::new("Kirin 990 (split clusters)", processors);
        soc.memory = base.memory;
        soc.coupling = base.coupling;
        soc
    }

    /// Looks up a processor id by its unique name.
    pub fn processor_by_name(&self, name: &str) -> Option<ProcessorId> {
        self.processors
            .iter()
            .position(|p| p.name == name)
            .map(ProcessorId)
    }

    /// The first processor of the given kind, if the SoC has one.
    pub fn processor_by_kind(&self, kind: ProcessorKind) -> Option<ProcessorId> {
        self.processors
            .iter()
            .position(|p| p.kind == kind)
            .map(ProcessorId)
    }

    /// The spec of processor `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this SoC.
    pub fn processor(&self, id: ProcessorId) -> &ProcessorSpec {
        &self.processors[id.0]
    }

    /// Processor ids ordered by descending processing power
    /// (`NPU ≫ CPU_B ≥ GPU ≫ CPU_S`), the order in which the paper
    /// arranges pipeline stages.
    pub fn processors_by_power(&self) -> Vec<ProcessorId> {
        let mut ids: Vec<ProcessorId> = (0..self.processors.len()).map(ProcessorId).collect();
        ids.sort_by_key(|&id| (self.processor(id).power_rank(), id.0));
        ids
    }

    /// Whether this SoC has an NPU.
    pub fn has_npu(&self) -> bool {
        self.processors.iter().any(|p| p.kind == ProcessorKind::Npu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kirin_has_npu_snapdragons_do_not() {
        assert!(SocSpec::kirin_990().has_npu());
        assert!(!SocSpec::snapdragon_778g().has_npu());
        assert!(!SocSpec::snapdragon_870().has_npu());
    }

    #[test]
    fn power_order_is_npu_big_gpu_small() {
        let soc = SocSpec::kirin_990();
        let order: Vec<ProcessorKind> = soc
            .processors_by_power()
            .into_iter()
            .map(|id| soc.processor(id).kind)
            .collect();
        assert_eq!(
            order,
            vec![
                ProcessorKind::Npu,
                ProcessorKind::CpuBig,
                ProcessorKind::Gpu,
                ProcessorKind::CpuSmall
            ]
        );
    }

    #[test]
    fn lookup_by_name_and_kind_agree() {
        let soc = SocSpec::snapdragon_870();
        assert_eq!(
            soc.processor_by_name("GPU"),
            soc.processor_by_kind(ProcessorKind::Gpu)
        );
        assert_eq!(soc.processor_by_name("NPU"), None);
    }

    #[test]
    fn split_cluster_preset_shares_tags_and_conserves_cores() {
        let soc = SocSpec::kirin_990_split_clusters((2, 2), (3, 1));
        let b0 = soc.processor(soc.processor_by_name("CPU_B0").unwrap());
        let b1 = soc.processor(soc.processor_by_name("CPU_B1").unwrap());
        assert_eq!(b0.cluster, b1.cluster);
        assert_eq!(b0.cores + b1.cores, 4);
        let s0 = soc.processor(soc.processor_by_name("CPU_S0").unwrap());
        let s1 = soc.processor(soc.processor_by_name("CPU_S1").unwrap());
        assert_eq!(s0.cores, 3);
        assert_eq!(s1.cores, 1);
        assert_ne!(b0.cluster, s0.cluster);
        assert_eq!(soc.processors.len(), 6);
    }

    #[test]
    fn evaluation_platforms_are_three() {
        assert_eq!(SocSpec::evaluation_platforms().len(), 3);
    }

    #[test]
    fn bandwidth_stays_below_20_gbps() {
        // The paper notes mobile memory bandwidth is effectively < 20 GB/s.
        for soc in SocSpec::evaluation_platforms() {
            for p in &soc.processors {
                assert!(p.mem_bandwidth_gbps < 20.0, "{} {}", soc.name, p.name);
            }
        }
    }
}
