//! Energy accounting over execution traces.
//!
//! The paper notes that "energy efficiency also demands low bandwidth
//! designs with active memory frequency throttling" — mobile SoCs are
//! power-budgeted first. This module attaches a simple power model to a
//! completed [`Trace`]: each processor draws `busy_watts` while executing
//! and `idle_watts` otherwise, and the memory controller adds a
//! frequency-dependent term. The resulting joules-per-inference metric
//! lets experiments compare schedulers on energy as well as latency
//! (e.g. a pipeline that keeps the big CPU cluster saturated may win on
//! latency but lose on energy to an NPU-heavy plan).

use serde::{Deserialize, Serialize};

use crate::processor::ProcessorKind;
use crate::soc::SocSpec;
use crate::timeline::Trace;

/// Per-processor-kind power draw in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerDraw {
    /// Draw while executing a task.
    pub busy_watts: f64,
    /// Draw while idle (clock-gated but powered).
    pub idle_watts: f64,
}

/// A power model for a SoC: per-kind draws plus the memory controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    cpu_big: PowerDraw,
    cpu_small: PowerDraw,
    gpu: PowerDraw,
    npu: PowerDraw,
    /// Memory-controller draw at the maximum frequency level, in watts;
    /// scaled linearly with the governor frequency.
    pub mem_max_watts: f64,
}

impl PowerModel {
    /// Typical figures for a flagship mobile SoC: the big CPU cluster is
    /// the hungriest per unit time, the NPU delivers by far the best
    /// FLOPs/W (its raison d'être).
    pub fn mobile_default() -> Self {
        PowerModel {
            cpu_big: PowerDraw {
                busy_watts: 4.2,
                idle_watts: 0.25,
            },
            cpu_small: PowerDraw {
                busy_watts: 1.1,
                idle_watts: 0.10,
            },
            gpu: PowerDraw {
                busy_watts: 3.2,
                idle_watts: 0.20,
            },
            npu: PowerDraw {
                busy_watts: 2.0,
                idle_watts: 0.15,
            },
            mem_max_watts: 1.4,
        }
    }

    /// The draw table entry for a processor kind.
    pub fn draw(&self, kind: ProcessorKind) -> PowerDraw {
        match kind {
            ProcessorKind::CpuBig => self.cpu_big,
            ProcessorKind::CpuSmall => self.cpu_small,
            ProcessorKind::Gpu => self.gpu,
            ProcessorKind::Npu => self.npu,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::mobile_default()
    }
}

/// Energy breakdown of one execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Joules consumed by processors while executing tasks.
    pub compute_joules: f64,
    /// Joules consumed by idle (but powered) processors over the run.
    pub idle_joules: f64,
    /// Joules consumed by the memory controller (frequency-weighted).
    pub memory_joules: f64,
}

impl EnergyReport {
    /// Total energy of the run in joules.
    pub fn total_joules(&self) -> f64 {
        self.compute_joules + self.idle_joules + self.memory_joules
    }

    /// Energy per completed inference.
    ///
    /// # Panics
    ///
    /// Panics if `inferences == 0`.
    pub fn joules_per_inference(&self, inferences: usize) -> f64 {
        assert!(inferences > 0, "at least one inference required");
        self.total_joules() / inferences as f64
    }
}

/// Computes the energy of a completed trace on `soc` under `model`.
pub fn energy(trace: &Trace, soc: &SocSpec, model: &PowerModel) -> EnergyReport {
    let makespan_s = trace.makespan_ms() / 1e3;
    let mut compute = 0.0;
    let mut idle = 0.0;
    for (i, proc) in soc.processors.iter().enumerate() {
        let draw = model.draw(proc.kind);
        let busy_s = trace.busy_ms(crate::processor::ProcessorId(i)) / 1e3;
        compute += busy_s * draw.busy_watts;
        idle += (makespan_s - busy_s).max(0.0) * draw.idle_watts;
    }
    // Memory: integrate the governor-frequency trace (piecewise constant
    // between samples), scaled against the maximum level.
    let max_freq = soc.memory.max_freq_mhz() as f64;
    let mut memory = 0.0;
    for w in trace.memory.windows(2) {
        let dt_s = (w[1].time_ms - w[0].time_ms).max(0.0) / 1e3;
        memory += dt_s * model.mem_max_watts * (w[0].freq_mhz as f64 / max_freq);
    }
    // Tail segment after the last sample, if the run outlives it.
    if let Some(last) = trace.memory.last() {
        let dt_s = (trace.makespan_ms() - last.time_ms).max(0.0) / 1e3;
        memory += dt_s * model.mem_max_watts * (last.freq_mhz as f64 / max_freq);
    }
    EnergyReport {
        compute_joules: compute,
        idle_joules: idle,
        memory_joules: memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Simulation, TaskSpec};

    fn run_one(solo_ms: f64, proc_name: &str) -> (Trace, SocSpec) {
        let soc = SocSpec::kirin_990();
        let p = soc.processor_by_name(proc_name).unwrap();
        let mut sim = Simulation::new(soc.clone());
        sim.add_task(TaskSpec::new("t", p, solo_ms));
        (sim.run().unwrap(), soc)
    }

    #[test]
    fn energy_scales_with_duration() {
        let model = PowerModel::mobile_default();
        let (short, soc) = run_one(10.0, "NPU");
        let (long, _) = run_one(100.0, "NPU");
        let e_short = energy(&short, &soc, &model).total_joules();
        let e_long = energy(&long, &soc, &model).total_joules();
        assert!(e_long > 5.0 * e_short, "{e_short} vs {e_long}");
    }

    #[test]
    fn busy_big_cpu_costs_more_than_busy_npu() {
        let model = PowerModel::mobile_default();
        let (cpu, soc) = run_one(100.0, "CPU_B");
        let (npu, _) = run_one(100.0, "NPU");
        // Same makespan, same idle structure on other processors; the
        // busy component differs.
        let e_cpu = energy(&cpu, &soc, &model).compute_joules;
        let e_npu = energy(&npu, &soc, &model).compute_joules;
        assert!(e_cpu > e_npu);
    }

    #[test]
    fn joules_per_inference_divides_total() {
        let model = PowerModel::mobile_default();
        let (t, soc) = run_one(50.0, "GPU");
        let e = energy(&t, &soc, &model);
        assert!((e.joules_per_inference(2) - e.total_joules() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn components_are_non_negative_and_sane() {
        let model = PowerModel::mobile_default();
        let (t, soc) = run_one(20.0, "CPU_S");
        let e = energy(&t, &soc, &model);
        assert!(e.compute_joules > 0.0);
        assert!(e.idle_joules >= 0.0);
        assert!(e.memory_joules >= 0.0);
        // 20 ms of a ~10 W SoC is well under a joule.
        assert!(e.total_joules() < 1.0, "got {}", e.total_joules());
    }

    #[test]
    #[should_panic(expected = "inference")]
    fn zero_inferences_panics() {
        let e = EnergyReport {
            compute_joules: 1.0,
            idle_joules: 0.0,
            memory_joules: 0.0,
        };
        e.joules_per_inference(0);
    }
}
