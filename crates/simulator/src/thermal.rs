//! Thermal model: heat accumulation and frequency throttling.
//!
//! Appendix B of the paper shows that under continuous inference the CPU
//! exceeds 60 °C and throttles noticeably, while the GPU/NPU stay within
//! a 50 °C envelope thanks to lower core frequencies. The paper runs all
//! experiments at thermal steady state; the simulator therefore supports
//! both a transient mode (for reproducing Fig. 11-style behaviour) and a
//! steady-state mode in which throttle factors are fixed at their
//! equilibrium values.

use serde::{Deserialize, Serialize};

use crate::processor::ProcessorKind;

/// Thermal parameters for one processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Ambient / idle temperature in °C.
    pub ambient_c: f64,
    /// Heating rate while busy, in °C per millisecond of busy time.
    pub heat_per_ms: f64,
    /// Newton-cooling coefficient per millisecond towards ambient.
    pub cool_coeff: f64,
    /// Temperature above which the processor throttles, in °C.
    pub throttle_c: f64,
    /// Multiplicative rate factor applied while throttled.
    pub throttle_factor: f64,
}

impl ThermalSpec {
    /// Default parameters per processor kind, calibrated so that the CPU
    /// clusters reach their throttle point under sustained load while the
    /// GPU/NPU equilibrate below theirs (Appendix B).
    pub fn for_kind(kind: ProcessorKind) -> Self {
        match kind {
            ProcessorKind::CpuBig => ThermalSpec {
                ambient_c: 35.0,
                heat_per_ms: 0.020,
                cool_coeff: 0.0004,
                throttle_c: 60.0,
                throttle_factor: 0.80,
            },
            ProcessorKind::CpuSmall => ThermalSpec {
                ambient_c: 35.0,
                heat_per_ms: 0.012,
                cool_coeff: 0.0004,
                throttle_c: 60.0,
                throttle_factor: 0.85,
            },
            ProcessorKind::Gpu => ThermalSpec {
                ambient_c: 35.0,
                heat_per_ms: 0.006,
                cool_coeff: 0.0005,
                throttle_c: 50.0,
                throttle_factor: 0.90,
            },
            ProcessorKind::Npu => ThermalSpec {
                ambient_c: 35.0,
                heat_per_ms: 0.005,
                cool_coeff: 0.0005,
                throttle_c: 50.0,
                throttle_factor: 0.92,
            },
        }
    }

    /// The steady-state temperature under 100% duty cycle:
    /// `ambient + heat_per_ms / cool_coeff`.
    pub fn steady_state_c(&self) -> f64 {
        self.ambient_c + self.heat_per_ms / self.cool_coeff
    }

    /// Whether this processor throttles at thermal steady state under
    /// continuous load.
    pub fn throttles_at_steady_state(&self) -> bool {
        self.steady_state_c() > self.throttle_c
    }
}

/// How the engine treats temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ThermalMode {
    /// Temperatures are ignored; no processor ever throttles.
    Disabled,
    /// Temperatures evolve during the run from ambient (transient ramp-up,
    /// as in Fig. 11's continuous-inference experiment).
    Transient,
    /// The paper's evaluation condition: every processor is pinned at its
    /// steady-state temperature, so throttle factors are constant.
    #[default]
    SteadyState,
}

/// Runtime thermal state of one processor.
#[derive(Debug, Clone)]
pub struct ThermalState {
    spec: ThermalSpec,
    mode: ThermalMode,
    temp_c: f64,
}

impl ThermalState {
    /// Creates the state for a processor with the given spec and mode.
    pub fn new(spec: ThermalSpec, mode: ThermalMode) -> Self {
        let temp_c = match mode {
            ThermalMode::Disabled | ThermalMode::Transient => spec.ambient_c,
            ThermalMode::SteadyState => spec.steady_state_c(),
        };
        ThermalState { spec, mode, temp_c }
    }

    /// Current temperature in °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Advances the temperature by `dt_ms`, with the processor busy or
    /// idle. No-op in [`ThermalMode::Disabled`] and
    /// [`ThermalMode::SteadyState`].
    pub fn advance(&mut self, dt_ms: f64, busy: bool) {
        if self.mode != ThermalMode::Transient {
            return;
        }
        let heat = if busy { self.spec.heat_per_ms } else { 0.0 };
        // Explicit Euler step of dT/dt = heat - cool*(T - ambient); the
        // engine's event granularity keeps dt small relative to the time
        // constants involved.
        let d_temp = heat - self.spec.cool_coeff * (self.temp_c - self.spec.ambient_c);
        self.temp_c = (self.temp_c + d_temp * dt_ms).max(self.spec.ambient_c);
    }

    /// Multiplicative progress-rate factor from the current temperature.
    pub fn rate_factor(&self) -> f64 {
        match self.mode {
            ThermalMode::Disabled => 1.0,
            _ => {
                if self.temp_c > self.spec.throttle_c {
                    self.spec.throttle_factor
                } else {
                    1.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_throttles_at_steady_state_but_npu_does_not() {
        assert!(ThermalSpec::for_kind(ProcessorKind::CpuBig).throttles_at_steady_state());
        assert!(!ThermalSpec::for_kind(ProcessorKind::Npu).throttles_at_steady_state());
        assert!(!ThermalSpec::for_kind(ProcessorKind::Gpu).throttles_at_steady_state());
    }

    #[test]
    fn steady_state_mode_pins_temperature() {
        let spec = ThermalSpec::for_kind(ProcessorKind::CpuBig);
        let expected = spec.steady_state_c();
        let mut st = ThermalState::new(spec, ThermalMode::SteadyState);
        assert_eq!(st.temp_c(), expected);
        st.advance(10_000.0, true);
        assert_eq!(st.temp_c(), expected, "steady state never moves");
        assert!(st.rate_factor() < 1.0, "hot CPU is throttled");
    }

    #[test]
    fn transient_mode_heats_under_load_and_cools_when_idle() {
        let spec = ThermalSpec::for_kind(ProcessorKind::CpuBig);
        let mut st = ThermalState::new(spec.clone(), ThermalMode::Transient);
        assert_eq!(st.rate_factor(), 1.0, "starts cold");
        for _ in 0..2_000 {
            st.advance(1.0, true);
        }
        let hot = st.temp_c();
        assert!(hot > spec.ambient_c + 20.0, "sustained load heats up");
        for _ in 0..20_000 {
            st.advance(1.0, false);
        }
        assert!(st.temp_c() < hot, "idling cools down");
    }

    #[test]
    fn disabled_mode_never_throttles() {
        let spec = ThermalSpec::for_kind(ProcessorKind::CpuBig);
        let mut st = ThermalState::new(spec, ThermalMode::Disabled);
        st.advance(100_000.0, true);
        assert_eq!(st.rate_factor(), 1.0);
    }
}
