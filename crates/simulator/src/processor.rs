//! Processor models: heterogeneous compute units on a mobile SoC.
//!
//! The paper's system model (Sec. IV) considers four processor classes
//! ordered by processing power: `NPU ≫ CPU Big ≥ GPU ≫ CPU Small`. The
//! GPU and NPU are indivisible units; the CPU clusters may optionally be
//! split into sub-cluster partitions to reproduce the intra-cluster
//! contention study of Fig. 10.

use serde::{Deserialize, Serialize};

/// Identifier of a processor within one [`crate::soc::SocSpec`].
///
/// Values are indices into the SoC's processor table; they are only
/// meaningful relative to the SoC they were obtained from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId(pub usize);

impl ProcessorId {
    /// Returns the raw index of the processor within the SoC table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The architectural class of a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcessorKind {
    /// Performance ("Big") CPU cluster, e.g. Cortex-A76/A77/A78.
    CpuBig,
    /// Efficiency ("Small/LITTLE") CPU cluster, e.g. Cortex-A55.
    CpuSmall,
    /// Embedded GPU driven through OpenCL, e.g. Mali-G76 or Adreno 650.
    Gpu,
    /// Neural processing unit with restricted operator support,
    /// e.g. the Kirin 990 DaVinci NPU.
    Npu,
}

impl ProcessorKind {
    /// All processor kinds, in descending order of typical processing
    /// power per the paper's system model.
    pub const ALL: [ProcessorKind; 4] = [
        ProcessorKind::Npu,
        ProcessorKind::CpuBig,
        ProcessorKind::Gpu,
        ProcessorKind::CpuSmall,
    ];

    /// Whether this processor is a CPU cluster (Big or Small).
    pub fn is_cpu(self) -> bool {
        matches!(self, ProcessorKind::CpuBig | ProcessorKind::CpuSmall)
    }

    /// Short display label used in traces and experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ProcessorKind::CpuBig => "CPU_B",
            ProcessorKind::CpuSmall => "CPU_S",
            ProcessorKind::Gpu => "GPU",
            ProcessorKind::Npu => "NPU",
        }
    }
}

impl std::fmt::Display for ProcessorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of one processor on the SoC.
///
/// Fields are public in the C-struct spirit: the spec is passive
/// configuration data consumed by the engine and the cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// Human-readable name, unique within the SoC (e.g. `"CPU_B"`).
    pub name: String,
    /// Architectural class.
    pub kind: ProcessorKind,
    /// Number of cores aggregated into this unit.
    pub cores: u32,
    /// Nominal clock in GHz.
    pub clock_ghz: f64,
    /// Peak sustained throughput in GFLOP/s for well-suited kernels.
    pub peak_gflops: f64,
    /// Sustained memory bandwidth share in GB/s under solo execution.
    pub mem_bandwidth_gbps: f64,
    /// Last-level private cache (L2) size in KiB; determines whether a
    /// layer's working set spills to DRAM.
    pub l2_kib: u32,
    /// Fixed per-kernel dispatch overhead in milliseconds (large for the
    /// OpenCL GPU, small for CPUs, moderate for the NPU driver stack).
    pub kernel_overhead_ms: f64,
    /// Cluster tag: processors sharing a tag share an L2/cluster fabric and
    /// suffer the severe intra-cluster contention of Fig. 10. `None` for
    /// units with a dedicated path (GPU, NPU).
    pub cluster: Option<u8>,
}

impl ProcessorSpec {
    /// Creates a spec with the given identity and throughput and neutral
    /// defaults for the remaining fields.
    pub fn new(name: impl Into<String>, kind: ProcessorKind, peak_gflops: f64) -> Self {
        ProcessorSpec {
            name: name.into(),
            kind,
            cores: 1,
            clock_ghz: 2.0,
            peak_gflops,
            mem_bandwidth_gbps: 10.0,
            l2_kib: 512,
            kernel_overhead_ms: 0.01,
            cluster: None,
        }
    }

    /// Relative processing-power rank (lower is faster), following the
    /// paper's ordering `NPU ≫ CPU Big ≥ GPU ≫ CPU Small`. Used to arrange
    /// pipeline stages from fast to slow.
    pub fn power_rank(&self) -> usize {
        match self.kind {
            ProcessorKind::Npu => 0,
            ProcessorKind::CpuBig => 1,
            ProcessorKind::Gpu => 2,
            ProcessorKind::CpuSmall => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_ordering_matches_paper_power_ordering() {
        let ranks: Vec<usize> = ProcessorKind::ALL
            .iter()
            .map(|&k| ProcessorSpec::new("x", k, 1.0).power_rank())
            .collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ProcessorKind::CpuBig.label(), "CPU_B");
        assert_eq!(ProcessorKind::Npu.to_string(), "NPU");
    }

    #[test]
    fn is_cpu_distinguishes_clusters_from_accelerators() {
        assert!(ProcessorKind::CpuBig.is_cpu());
        assert!(ProcessorKind::CpuSmall.is_cpu());
        assert!(!ProcessorKind::Gpu.is_cpu());
        assert!(!ProcessorKind::Npu.is_cpu());
    }

    #[test]
    fn processor_id_display() {
        assert_eq!(ProcessorId(2).to_string(), "P2");
        assert_eq!(ProcessorId(2).index(), 2);
    }
}
