//! Deterministic fault injection for the engine.
//!
//! A [`FaultInjector`] scripts faults against a simulation run:
//! processor dropout at a given instant, thermal-throttle rate
//! multipliers over an interval, and transient task failures at a
//! fraction of a task's solo work. [`Simulation::run_faulted`] consumes
//! the script and returns a [`FaultOutcome`] — the completed subset of
//! spans plus a typed record of every task the faults killed — instead
//! of the all-or-nothing [`Trace`] of a fault-free run.
//!
//! Faults are visible in the event log as [`EngineEvent::ProcessorDown`],
//! [`EngineEvent::Throttle`] and [`EngineEvent::TaskFailed`] events, and
//! throttle multipliers are folded into the `thermal_factor` of the
//! `Rate` events the engine already emits — so the replay reconciliation
//! in [`crate::audit`] integrates the *faulted* rates exactly.
//!
//! [`FaultSpec`] is the user-facing scenario atom: the CLI grammar
//! (`drop:NPU@25,throttle:CPU_B@10..60x0.5,flaky:0x2,mispredict:1.6`)
//! parses into a list of specs via [`parse_fault_specs`]. Dropouts and
//! throttles compile directly into an injector; transient failures and
//! cost mispredictions are interpreted by the recovery layer in
//! `h2p-core`, which owns request identity and the cost model.
//!
//! [`Simulation::run_faulted`]: crate::engine::Simulation::run_faulted
//! [`Trace`]: crate::timeline::Trace
//! [`EngineEvent::ProcessorDown`]: crate::engine::EngineEvent::ProcessorDown
//! [`EngineEvent::Throttle`]: crate::engine::EngineEvent::Throttle
//! [`EngineEvent::TaskFailed`]: crate::engine::EngineEvent::TaskFailed

use std::collections::BTreeMap;

use crate::memory::MemorySample;
use crate::processor::ProcessorId;
use crate::soc::SocSpec;
use crate::timeline::{Span, Trace};

/// Throttle factors below this floor are clamped up so a throttled
/// processor always makes *some* progress — a zero rate with no other
/// pending event would hang the engine, and the never-hang guarantee
/// outranks modelling a fully stopped clock (use a dropout for that).
pub const MIN_THROTTLE_FACTOR: f64 = 0.05;

/// Why an injected fault killed a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The task itself failed mid-execution (crash, bad output).
    Transient,
    /// The processor running the task dropped out.
    Dropout,
}

impl FaultKind {
    /// Stable lowercase identifier used in JSON event lines.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Dropout => "dropout",
        }
    }
}

/// One task an injected fault aborted mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedTask {
    /// Task id (submission index).
    pub task: usize,
    /// Processor the task was running on when it died.
    pub processor: ProcessorId,
    /// Simulation time of the abort in ms.
    pub at_ms: f64,
    /// What killed it.
    pub kind: FaultKind,
}

/// Result of a faulted simulation run: the completed subset of spans
/// plus a typed record of everything the faults prevented.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// Per-task span, indexed by task id; `None` for tasks that failed
    /// or never ran.
    pub spans: Vec<Option<Span>>,
    /// Tasks aborted mid-execution by an injected fault.
    pub failed: Vec<FailedTask>,
    /// Tasks that never started: dependencies failed, or their
    /// processor was down (sorted by task id).
    pub orphaned: Vec<usize>,
    /// Simulation time at which the engine halted (last completion, or
    /// the instant it ran out of runnable work).
    pub halt_ms: f64,
    /// Per-processor down flag at halt time.
    pub down: Vec<bool>,
    /// Memory-pressure samples up to the halt.
    pub memory: Vec<MemorySample>,
    /// Number of processors on the SoC.
    pub processor_count: usize,
}

impl FaultOutcome {
    /// True when every task completed — the faults (if any) cost time
    /// but no work.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.orphaned.is_empty() && self.spans.iter().all(Option::is_some)
    }

    /// Number of tasks that ran to completion.
    pub fn completed_count(&self) -> usize {
        self.spans.iter().filter(|s| s.is_some()).count()
    }

    /// Builds a [`Trace`] over the completed subset of spans. Span task
    /// ids keep their original submission indices, so the trace is
    /// *not* audit-shaped against the original task list — use
    /// [`crate::audit::audit_faulted`] for that.
    pub fn completed_trace(&self) -> Trace {
        Trace {
            spans: self.spans.iter().flatten().cloned().collect(),
            memory: self.memory.clone(),
            processor_count: self.processor_count,
        }
    }

    /// Request indices this outcome impacted — every request owning a
    /// failed or orphaned task (sorted, deduplicated), resolved through
    /// the lowering labels via [`crate::engine::request_of_label`].
    /// These are the requests a recovery round must replan; tasks with
    /// auxiliary labels carry no request and are skipped.
    pub fn impacted_requests(&self, tasks: &[crate::engine::TaskSpec]) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .failed
            .iter()
            .map(|f| f.task)
            .chain(self.orphaned.iter().copied())
            .filter_map(|t| {
                tasks
                    .get(t)
                    .and_then(crate::engine::TaskSpec::request_index)
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A compiled, deterministic fault script against one simulation run.
///
/// All times are simulation milliseconds. The injector is immutable
/// during the run; the engine queries it at every event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultInjector {
    /// Per-processor dropout instant, if scripted.
    down_at: Vec<Option<f64>>,
    /// Per-processor throttle intervals `(from_ms, until_ms, factor)`.
    throttles: Vec<Vec<(f64, f64, f64)>>,
    /// Per-task transient-failure point as a fraction of solo work.
    fail_at: BTreeMap<usize, f64>,
}

impl FaultInjector {
    /// Creates an empty script for an SoC with `processors` processors.
    pub fn new(processors: usize) -> Self {
        FaultInjector {
            down_at: vec![None; processors],
            throttles: vec![Vec::new(); processors],
            fail_at: BTreeMap::new(),
        }
    }

    /// Number of processors this script was compiled against.
    pub fn processor_count(&self) -> usize {
        self.down_at.len()
    }

    /// True when the script contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.down_at.iter().all(Option::is_none)
            && self.throttles.iter().all(Vec::is_empty)
            && self.fail_at.is_empty()
    }

    /// Scripts a permanent dropout of `processor` at `at_ms` (builder
    /// style). An earlier scripted dropout for the same processor wins.
    pub fn dropout(mut self, processor: ProcessorId, at_ms: f64) -> Self {
        let at_ms = at_ms.max(0.0);
        if let Some(slot) = self.down_at.get_mut(processor.index()) {
            *slot = Some(slot.map_or(at_ms, |prev: f64| prev.min(at_ms)));
        }
        self
    }

    /// Scripts a rate multiplier `factor` on `processor` over
    /// `[from_ms, until_ms)` (builder style). The factor is clamped to
    /// `[MIN_THROTTLE_FACTOR, 1.0]`; overlapping intervals multiply.
    pub fn throttle(
        mut self,
        processor: ProcessorId,
        from_ms: f64,
        until_ms: f64,
        factor: f64,
    ) -> Self {
        let from_ms = from_ms.max(0.0);
        if let Some(list) = self.throttles.get_mut(processor.index()) {
            if until_ms > from_ms {
                list.push((from_ms, until_ms, factor.clamp(MIN_THROTTLE_FACTOR, 1.0)));
            }
        }
        self
    }

    /// Scripts a transient failure of task `task` once it has executed
    /// `fraction` of its solo work (builder style). The fraction is
    /// clamped to `[0.0, 0.99]` so a failure always fires strictly
    /// before completion.
    pub fn fail_task(mut self, task: usize, fraction: f64) -> Self {
        self.fail_at.insert(task, fraction.clamp(0.0, 0.99));
        self
    }

    /// Dropout instant scripted for processor `p`, if any.
    pub fn down_at(&self, p: usize) -> Option<f64> {
        self.down_at.get(p).copied().flatten()
    }

    /// Combined fault throttle factor on processor `p` at time `t`
    /// (product of all active intervals, floored at
    /// [`MIN_THROTTLE_FACTOR`]).
    pub fn throttle_factor(&self, p: usize, t: f64) -> f64 {
        let Some(list) = self.throttles.get(p) else {
            return 1.0;
        };
        let factor: f64 = list
            .iter()
            .filter(|&&(from, until, _)| t >= from && t < until)
            .map(|&(_, _, f)| f)
            .product();
        factor.max(MIN_THROTTLE_FACTOR)
    }

    /// Transient-failure point for `task` as a fraction of solo work.
    pub fn fail_fraction(&self, task: usize) -> Option<f64> {
        self.fail_at.get(&task).copied()
    }

    /// Earliest scripted fault boundary strictly after `t`: a dropout
    /// instant or a throttle interval edge. The engine folds this into
    /// its next-event time so rate changes land exactly on boundaries.
    pub fn next_boundary_after(&self, t: f64) -> Option<f64> {
        let mut next: Option<f64> = None;
        let mut consider = |b: f64| {
            if b > t + 1e-9 && next.is_none_or(|n| b < n) {
                next = Some(b);
            }
        };
        for at in self.down_at.iter().flatten() {
            consider(*at);
        }
        for list in &self.throttles {
            for &(from, until, _) in list {
                consider(from);
                consider(until);
            }
        }
        next
    }
}

/// One user-facing fault scenario atom, as parsed from the CLI
/// `--faults` grammar. Dropouts and throttles compile into a
/// [`FaultInjector`]; transient failures and cost mispredictions are
/// interpreted by the recovery layer, which owns request identity and
/// the cost model.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// `drop:<PROC>@<t>` — processor drops out permanently at `at_ms`.
    ProcessorDropout {
        /// Processor that drops.
        processor: ProcessorId,
        /// Dropout instant in ms.
        at_ms: f64,
    },
    /// `throttle:<PROC>@<from>..<until>x<factor>` — rate multiplier
    /// over an interval.
    ThermalThrottle {
        /// Processor being throttled.
        processor: ProcessorId,
        /// Interval start in ms.
        from_ms: f64,
        /// Interval end in ms.
        until_ms: f64,
        /// Rate multiplier in `(0, 1]`.
        factor: f64,
    },
    /// `flaky:<request>x<count>` — the request's final task fails
    /// transiently `failures` times before succeeding.
    TransientFailure {
        /// Request index.
        request: usize,
        /// Number of consecutive failures before success.
        failures: u32,
    },
    /// `mispredict:<scale>` — true task durations are `scale` times the
    /// cost model's prediction.
    CostMisprediction {
        /// Multiplicative error on every solo duration.
        scale: f64,
    },
}

/// Compiles the dropout/throttle subset of `specs` into an injector
/// for `soc`. Transient failures and mispredictions are skipped — they
/// are recovery-layer concerns.
pub fn compile_injector(specs: &[FaultSpec], soc: &SocSpec) -> FaultInjector {
    let mut inj = FaultInjector::new(soc.processors.len());
    for spec in specs {
        match *spec {
            FaultSpec::ProcessorDropout { processor, at_ms } => {
                inj = inj.dropout(processor, at_ms);
            }
            FaultSpec::ThermalThrottle {
                processor,
                from_ms,
                until_ms,
                factor,
            } => {
                inj = inj.throttle(processor, from_ms, until_ms, factor);
            }
            FaultSpec::TransientFailure { .. } | FaultSpec::CostMisprediction { .. } => {}
        }
    }
    inj
}

/// Parses the comma-separated CLI fault grammar against `soc`:
///
/// ```text
/// drop:<PROC>@<t>                      processor dropout at time t
/// throttle:<PROC>@<from>..<until>x<f>  rate multiplier f over [from, until)
/// flaky:<request>x<count>              transient failures of a request
/// mispredict:<scale>                   cost-model misprediction factor
/// ```
///
/// `<PROC>` is a processor name from the SoC (e.g. `NPU`, `CPU_B`).
///
/// # Errors
///
/// Returns a human-readable message naming the offending clause on any
/// syntax error, unknown processor, or non-finite/out-of-range number.
pub fn parse_fault_specs(spec: &str, soc: &SocSpec) -> Result<Vec<FaultSpec>, String> {
    let mut out = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let (kind, rest) = clause
            .split_once(':')
            .ok_or_else(|| format!("fault clause `{clause}` is missing `:`"))?;
        match kind {
            "drop" => {
                let (name, at) = rest
                    .split_once('@')
                    .ok_or_else(|| format!("drop clause `{clause}` needs `<PROC>@<t>`"))?;
                let processor = lookup_proc(soc, name, clause)?;
                let at_ms = finite_num(at, clause)?;
                if at_ms < 0.0 {
                    return Err(format!("drop clause `{clause}` has negative time"));
                }
                out.push(FaultSpec::ProcessorDropout { processor, at_ms });
            }
            "throttle" => {
                let (name, window) = rest
                    .split_once('@')
                    .ok_or_else(|| format!("throttle clause `{clause}` needs `<PROC>@<from>..<until>x<factor>`"))?;
                let processor = lookup_proc(soc, name, clause)?;
                let (range, factor) = window
                    .split_once('x')
                    .ok_or_else(|| format!("throttle clause `{clause}` is missing `x<factor>`"))?;
                let (from, until) = range
                    .split_once("..")
                    .ok_or_else(|| format!("throttle clause `{clause}` is missing `<from>..<until>`"))?;
                let from_ms = finite_num(from, clause)?;
                let until_ms = finite_num(until, clause)?;
                let factor = finite_num(factor, clause)?;
                if from_ms < 0.0 || until_ms <= from_ms {
                    return Err(format!("throttle clause `{clause}` has an empty or negative interval"));
                }
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(format!("throttle clause `{clause}` needs a factor in (0, 1]"));
                }
                out.push(FaultSpec::ThermalThrottle {
                    processor,
                    from_ms,
                    until_ms,
                    factor,
                });
            }
            "flaky" => {
                let (req, count) = rest
                    .split_once('x')
                    .ok_or_else(|| format!("flaky clause `{clause}` needs `<request>x<count>`"))?;
                let request: usize = req
                    .trim()
                    .parse()
                    .map_err(|_| format!("flaky clause `{clause}` has a bad request index"))?;
                let failures: u32 = count
                    .trim()
                    .parse()
                    .map_err(|_| format!("flaky clause `{clause}` has a bad failure count"))?;
                out.push(FaultSpec::TransientFailure { request, failures });
            }
            "mispredict" => {
                let scale = finite_num(rest, clause)?;
                if scale <= 0.0 {
                    return Err(format!("mispredict clause `{clause}` needs a positive scale"));
                }
                out.push(FaultSpec::CostMisprediction { scale });
            }
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` in `{clause}` (expected drop, throttle, flaky or mispredict)"
                ))
            }
        }
    }
    if out.is_empty() {
        return Err("fault spec is empty".to_owned());
    }
    Ok(out)
}

fn lookup_proc(soc: &SocSpec, name: &str, clause: &str) -> Result<ProcessorId, String> {
    soc.processor_by_name(name.trim()).ok_or_else(|| {
        let known: Vec<&str> = soc.processors.iter().map(|p| p.name.as_str()).collect();
        format!(
            "unknown processor `{}` in `{clause}` (SoC has {})",
            name.trim(),
            known.join(", ")
        )
    })
}

fn finite_num(text: &str, clause: &str) -> Result<f64, String> {
    let v: f64 = text
        .trim()
        .parse()
        .map_err(|_| format!("bad number `{}` in `{clause}`", text.trim()))?;
    if !v.is_finite() {
        return Err(format!("non-finite number `{}` in `{clause}`", text.trim()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc() -> SocSpec {
        SocSpec::kirin_990()
    }

    #[test]
    fn throttle_factor_multiplies_and_floors() {
        let inj = FaultInjector::new(2)
            .throttle(ProcessorId(0), 10.0, 20.0, 0.5)
            .throttle(ProcessorId(0), 15.0, 25.0, 0.2);
        assert!((inj.throttle_factor(0, 5.0) - 1.0).abs() < 1e-12);
        assert!((inj.throttle_factor(0, 12.0) - 0.5).abs() < 1e-12);
        // Overlap multiplies but never drops below the floor.
        assert!((inj.throttle_factor(0, 17.0) - 0.1f64.max(MIN_THROTTLE_FACTOR)).abs() < 1e-12);
        assert!((inj.throttle_factor(0, 22.0) - 0.2).abs() < 1e-12);
        assert!((inj.throttle_factor(1, 17.0) - 1.0).abs() < 1e-12);
        // Interval end is exclusive.
        assert!((inj.throttle_factor(0, 25.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundaries_enumerate_in_order() {
        let inj = FaultInjector::new(2)
            .dropout(ProcessorId(1), 30.0)
            .throttle(ProcessorId(0), 10.0, 20.0, 0.5);
        assert_eq!(inj.next_boundary_after(0.0), Some(10.0));
        assert_eq!(inj.next_boundary_after(10.0), Some(20.0));
        assert_eq!(inj.next_boundary_after(20.0), Some(30.0));
        assert_eq!(inj.next_boundary_after(30.0), None);
    }

    #[test]
    fn earliest_dropout_wins() {
        let inj = FaultInjector::new(1)
            .dropout(ProcessorId(0), 50.0)
            .dropout(ProcessorId(0), 20.0);
        assert_eq!(inj.down_at(0), Some(20.0));
    }

    #[test]
    fn fail_fraction_clamps_below_completion() {
        let inj = FaultInjector::new(1).fail_task(3, 1.5);
        assert_eq!(inj.fail_fraction(3), Some(0.99));
        assert_eq!(inj.fail_fraction(4), None);
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let soc = soc();
        let specs = parse_fault_specs(
            "drop:NPU@25, throttle:CPU_B@10..60x0.5, flaky:0x2, mispredict:1.6",
            &soc,
        )
        .expect("parses");
        assert_eq!(specs.len(), 4);
        assert!(matches!(specs[0], FaultSpec::ProcessorDropout { at_ms, .. } if at_ms == 25.0));
        assert!(matches!(
            specs[1],
            FaultSpec::ThermalThrottle { from_ms, until_ms, factor, .. }
                if from_ms == 10.0 && until_ms == 60.0 && factor == 0.5
        ));
        assert!(matches!(
            specs[2],
            FaultSpec::TransientFailure {
                request: 0,
                failures: 2
            }
        ));
        assert!(matches!(specs[3], FaultSpec::CostMisprediction { scale } if scale == 1.6));
    }

    #[test]
    fn parse_rejects_garbage_with_named_clause() {
        let soc = soc();
        for bad in [
            "",
            "drop:NPU",
            "drop:XPU@10",
            "drop:NPU@NaN",
            "drop:NPU@-5",
            "throttle:NPU@10..5x0.5",
            "throttle:NPU@10..60x0",
            "throttle:NPU@10..60x1.5",
            "flaky:ax2",
            "flaky:0xb",
            "mispredict:0",
            "mispredict:inf",
            "quux:1",
        ] {
            let err = parse_fault_specs(bad, &soc).expect_err(bad);
            assert!(!err.is_empty(), "{bad}");
        }
    }

    #[test]
    fn compile_injector_ignores_recovery_level_faults() {
        let soc = soc();
        let specs = parse_fault_specs("flaky:0x2,mispredict:1.6", &soc).expect("parses");
        let inj = compile_injector(&specs, &soc);
        assert!(inj.is_empty());
        let specs = parse_fault_specs("drop:NPU@25", &soc).expect("parses");
        let inj = compile_injector(&specs, &soc);
        assert!(!inj.is_empty());
        assert_eq!(inj.processor_count(), soc.processors.len());
    }
}
