// Integration tests may unwrap/expect freely: a panic here is a test
// failure, not a library defect.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property-based invariants of the discrete-event engine: physical
//! sanity (no task finishes faster than its solo time; one task per
//! processor at a time), conservation (ledger drains; every task runs
//! exactly once), and monotonicity (removing interference never slows
//! anything down).

use proptest::prelude::*;

use h2p_simulator::engine::{Simulation, TaskSpec};
use h2p_simulator::faults::FaultInjector;
use h2p_simulator::interference::CouplingMatrix;
use h2p_simulator::thermal::ThermalMode;
use h2p_simulator::{ProcessorId, SocSpec};

/// Deterministically derives a task set from a compact spec vector.
fn build(soc: &SocSpec, specs: &[(usize, u64, u64, bool)]) -> Simulation {
    let mut sim = Simulation::new(soc.clone());
    let mut prev = None;
    for (i, &(proc, tenth_ms, intensity_pct, chain)) in specs.iter().enumerate() {
        let mut t = TaskSpec::new(
            format!("t{i}"),
            ProcessorId(proc % soc.processors.len()),
            tenth_ms as f64 / 10.0,
        )
        .intensity((intensity_pct % 150) as f64 / 100.0);
        if chain {
            if let Some(p) = prev {
                t = t.after(p);
            }
        }
        prev = Some(sim.add_task(t));
    }
    sim
}

fn quiet_kirin() -> SocSpec {
    let mut soc = SocSpec::kirin_990();
    soc.thermal_mode = ThermalMode::Disabled;
    soc
}

/// Pinned regression from `engine_properties.proptest-regressions`: a
/// seven-task mix with one long NPU chain and an unchained GPU task that
/// once tripped the interference-removal bound. The shrunken spec vector
/// is re-run explicitly against every engine invariant the properties
/// below check, independent of the generator.
#[test]
fn engine_regression_pinned_seven_task_mix() {
    let specs: Vec<(usize, u64, u64, bool)> = vec![
        (2, 274, 43, false),
        (1, 1, 10, true),
        (0, 4, 10, true),
        (0, 19, 10, false),
        (3, 101, 10, true),
        (3, 152, 10, true),
        (1, 4, 10, true),
    ];
    let contended = quiet_kirin();
    let trace = build(&contended, &specs).run().expect("acyclic");
    assert_eq!(trace.spans.len(), specs.len(), "every task runs once");
    for s in &trace.spans {
        assert!(s.duration_ms() >= s.solo_ms - 1e-9);
    }
    // One task per processor at a time.
    for p in 0..contended.processors.len() {
        let mut spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.processor == ProcessorId(p))
            .collect();
        spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
        for w in spans.windows(2) {
            assert!(w[1].start_ms >= w[0].end_ms - 1e-9);
        }
    }
    // Chain edges are honored.
    for (i, &(_, _, _, chain)) in specs.iter().enumerate() {
        if chain && i > 0 {
            let before = trace.span(i - 1).expect("ran");
            let after = trace.span(i).expect("ran");
            assert!(after.start_ms >= before.end_ms - 1e-9);
        }
    }
    // Removing interference stays within the Graham list-scheduling
    // bound and no quiet task exceeds its solo time.
    let mut quiet = contended.clone();
    quiet.coupling = CouplingMatrix::none();
    let without = build(&quiet, &specs).run().expect("runs");
    assert!(without.makespan_ms() <= trace.makespan_ms() * 2.0 + 1e-6);
    for s in &without.spans {
        assert!(s.duration_ms() <= s.solo_ms + 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn no_task_beats_its_solo_time(
        specs in prop::collection::vec((0usize..4, 1u64..400, 0u64..150, prop::bool::ANY), 1..16),
    ) {
        let soc = quiet_kirin();
        let trace = build(&soc, &specs).run().expect("acyclic");
        prop_assert_eq!(trace.spans.len(), specs.len(), "every task runs once");
        for s in &trace.spans {
            prop_assert!(
                s.duration_ms() >= s.solo_ms - 1e-9,
                "{} finished in {} < solo {}",
                s.label,
                s.duration_ms(),
                s.solo_ms
            );
            prop_assert!(s.slowdown() >= -1e-9);
        }
    }

    #[test]
    fn processors_run_one_task_at_a_time(
        specs in prop::collection::vec((0usize..4, 1u64..300, 0u64..150, prop::bool::ANY), 1..16),
    ) {
        let soc = quiet_kirin();
        let trace = build(&soc, &specs).run().expect("acyclic");
        for p in 0..soc.processors.len() {
            let mut spans: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| s.processor == ProcessorId(p))
                .collect();
            spans.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
            for w in spans.windows(2) {
                prop_assert!(
                    w[1].start_ms >= w[0].end_ms - 1e-9,
                    "overlap on processor {p}: {:?} then {:?}",
                    (w[0].start_ms, w[0].end_ms),
                    (w[1].start_ms, w[1].end_ms)
                );
            }
        }
    }

    #[test]
    fn removing_interference_rarely_hurts(
        specs in prop::collection::vec((0usize..4, 1u64..300, 10u64..150, prop::bool::ANY), 2..14),
    ) {
        let contended = quiet_kirin();
        let mut quiet = contended.clone();
        quiet.coupling = CouplingMatrix::none();
        let with = build(&contended, &specs).run().expect("runs");
        let without = build(&quiet, &specs).run().expect("runs");
        // Removing interference speeds every *task* up, but
        // non-preemptive FIFO list scheduling is subject to Graham
        // anomalies: a task finishing earlier can reorder ready queues
        // and lengthen the makespan (verified by construction in the
        // engine tests). The provable bound for list scheduling is a
        // factor of 2.
        prop_assert!(
            without.makespan_ms() <= with.makespan_ms() * 2.0 + 1e-6,
            "quiet {} beyond the Graham bound of contended {}",
            without.makespan_ms(),
            with.makespan_ms()
        );
        // Total busy time (work actually executed) strictly benefits:
        // without interference no task takes longer than its solo time.
        for s in &without.spans {
            prop_assert!(s.duration_ms() <= s.solo_ms + 1e-6);
        }
    }

    #[test]
    fn dependencies_are_respected(
        specs in prop::collection::vec((0usize..4, 1u64..300, 0u64..150, prop::bool::ANY), 2..16),
    ) {
        let soc = quiet_kirin();
        let trace = build(&soc, &specs).run().expect("acyclic");
        // Chained tasks (chain=true) must start after the previous task in
        // the chain ends.
        let mut prev: Option<usize> = None;
        for (i, &(_, _, _, chain)) in specs.iter().enumerate() {
            if chain {
                if let Some(p) = prev {
                    let before = trace.span(p).expect("ran");
                    let after = trace.span(i).expect("ran");
                    prop_assert!(after.start_ms >= before.end_ms - 1e-9);
                }
            }
            prev = Some(i);
        }
    }

    #[test]
    fn engine_traces_always_audit_clean(
        specs in prop::collection::vec((0usize..4, 1u64..300, 0u64..150, prop::bool::ANY), 1..16),
        steady_state in prop::bool::ANY,
    ) {
        // The audit layer re-derives every engine contract independently;
        // a trace the engine produced must never trip it, with or
        // without thermal throttling.
        let mut soc = SocSpec::kirin_990();
        if !steady_state {
            soc.thermal_mode = ThermalMode::Disabled;
        }
        let sim = build(&soc, &specs);
        let tasks = sim.tasks().to_vec();
        let trace = sim.run().expect("acyclic");
        let report = h2p_simulator::audit::audit(&soc, &tasks, &trace);
        prop_assert!(report.is_clean(), "audit violations:\n{report}");
    }

    #[test]
    fn throttled_traces_pass_every_audit_family_and_replay(
        specs in prop::collection::vec((0usize..4, 1u64..300, 0u64..150, prop::bool::ANY), 1..14),
        throttles in prop::collection::vec(
            (0usize..4, 0u64..2000, 1u64..3000, 10u64..100),
            1..4,
        ),
    ) {
        // Injected thermal throttles slow work down but never destroy
        // it: the run still completes every task, and the faulted audit
        // — all eight contract families (shape, exclusivity, releases,
        // dependencies, FIFO, the too-fast floor, bubble accounting,
        // memory ledger) plus the exact event-log replay — stays clean.
        let soc = quiet_kirin();
        let sim = build(&soc, &specs);
        let tasks = sim.tasks().to_vec();
        let mut inj = FaultInjector::new(soc.processors.len());
        for &(p, from_tenth, len_tenth, pct) in &throttles {
            let from = from_tenth as f64 / 10.0;
            inj = inj.throttle(
                ProcessorId(p % soc.processors.len()),
                from,
                from + len_tenth as f64 / 10.0,
                pct as f64 / 100.0,
            );
        }
        let (outcome, events) = sim.run_faulted(&inj).expect("acyclic");
        prop_assert!(
            outcome.is_complete(),
            "throttling costs time, never work: {} of {} completed",
            outcome.completed_count(),
            tasks.len()
        );
        let report = h2p_simulator::audit::audit_faulted(&soc, &tasks, &events, &outcome);
        prop_assert!(report.is_clean(), "audit violations:\n{report:?}");
        // The replay reconciliation independently reconstructs every
        // span from the logged piecewise rates.
        let spans = h2p_simulator::audit::replay(tasks.len(), &events).expect("replayable log");
        for (i, replayed) in spans.iter().enumerate() {
            let r = replayed.as_ref().expect("every task replays a finish");
            let actual = outcome.spans[i].as_ref().expect("completed");
            prop_assert!((r.start_ms - actual.start_ms).abs() < 1e-6);
            prop_assert!((r.end_ms - actual.end_ms).abs() < 1e-6);
            prop_assert!((r.integrated_ms - tasks[i].solo_ms).abs() < 1e-6);
        }
    }

    #[test]
    fn memory_trace_is_consistent(
        specs in prop::collection::vec(
            (0usize..4, 1u64..200, 0u64..150, prop::bool::ANY),
            1..12,
        ),
        footprint in 1u64..500_000_000u64,
    ) {
        let soc = quiet_kirin();
        let mut sim = Simulation::new(soc.clone());
        for (i, &(proc, tenth_ms, _, _)) in specs.iter().enumerate() {
            sim.add_task(
                TaskSpec::new(format!("t{i}"), ProcessorId(proc % 4), tenth_ms as f64 / 10.0)
                    .footprint(footprint / (i as u64 + 1)),
            );
        }
        let trace = sim.run().expect("runs");
        // Allocation never exceeds the sum of all footprints; final
        // sample has everything released.
        let total: u64 = (0..specs.len()).map(|i| footprint / (i as u64 + 1)).sum();
        for s in &trace.memory {
            prop_assert!(s.allocated_bytes <= total);
        }
        prop_assert_eq!(trace.memory.last().expect("samples").allocated_bytes, 0);
    }
}
