//! # h2p-baselines
//!
//! From-scratch reimplementations of the scheduling *policies* the paper
//! compares against, all executing on the same [`h2p_simulator`] substrate
//! so the comparison isolates the scheduling decisions:
//!
//! * [`mnn_serial`] — vanilla MNN v2.6.0: CPU-centric serial execution on
//!   the Big cores.
//! * [`pipe_it`] — Pipe-it adapted as in the paper's evaluation: a
//!   CPU-only Big/Small two-stage pipeline with DP core partitioning.
//! * [`band`] — Band: greedy fastest-supported-processor subgraph mapping
//!   with NPU operator fallback and no pipeline planning.
//! * [`exhaustive`] / [`annealing`] — the Fig. 8 ablation searchers over
//!   the vertical arrangement (request order).
//!
//! The "No C/T" ablation is [`hetero2pipe::PlannerConfig::no_ct`] and is
//! exposed here through [`Scheme::NoCt`].

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod annealing;
pub mod band;
pub mod dart;
pub mod exhaustive;
pub mod mnn_serial;
pub mod pipe_it;

use h2p_models::graph::ModelGraph;
use h2p_simulator::soc::SocSpec;
use hetero2pipe::error::PlanError;
use hetero2pipe::executor::{self, ExecutionReport, LoweredPlan};
use hetero2pipe::planner::{Planner, PlannerConfig};

/// The schemes compared in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Vanilla MNN: serial execution on the CPU Big cores.
    MnnSerial,
    /// Pipe-it: CPU-only Big/Small pipeline.
    PipeIt,
    /// Band: greedy heterogeneous mapping with operator fallback.
    Band,
    /// DART: data-parallel whole-model dispatch over CPU/GPU workers.
    Dart,
    /// Hetero²Pipe without contention mitigation / tail optimization.
    NoCt,
    /// The full Hetero²Pipe planner.
    Hetero2Pipe,
}

impl Scheme {
    /// All schemes in the paper's Fig. 7 ordering.
    pub const ALL: [Scheme; 6] = [
        Scheme::MnnSerial,
        Scheme::PipeIt,
        Scheme::Dart,
        Scheme::Band,
        Scheme::NoCt,
        Scheme::Hetero2Pipe,
    ];

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::MnnSerial => "MNN",
            Scheme::PipeIt => "Pipe-it",
            Scheme::Band => "Band",
            Scheme::Dart => "DART",
            Scheme::NoCt => "H2P (No C/T)",
            Scheme::Hetero2Pipe => "Hetero2Pipe",
        }
    }

    /// Plans `requests` under this scheme and lowers the result onto a
    /// fresh simulation of `soc` without running it.
    ///
    /// Every scheme flows through [`LoweredPlan`], so all of them share
    /// the executor's pre-execution static lint and (in debug builds)
    /// the post-execution trace audit — the task graphs a baseline
    /// produces can be inspected, linted and event-logged exactly like
    /// the planner's own.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if planning fails.
    pub fn lower(self, soc: &SocSpec, requests: &[ModelGraph]) -> Result<LoweredPlan, PlanError> {
        match self {
            Scheme::MnnSerial => mnn_serial::lower(soc, requests),
            Scheme::PipeIt => executor::lower(&pipe_it::plan(soc, requests)?, soc),
            Scheme::Band => band::lower(soc, requests),
            Scheme::Dart => dart::lower(soc, requests),
            Scheme::NoCt => {
                let planner = Planner::with_config(soc, PlannerConfig::no_ct())?;
                planner.plan(requests)?.lower(soc)
            }
            Scheme::Hetero2Pipe => {
                let planner = Planner::new(soc)?;
                planner.plan(requests)?.lower(soc)
            }
        }
    }

    /// Plans and executes `requests` on `soc` under this scheme.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if planning or simulation fails.
    pub fn run(self, soc: &SocSpec, requests: &[ModelGraph]) -> Result<ExecutionReport, PlanError> {
        self.lower(soc, requests)?.execute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;

    fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
        ids.iter().map(|m| m.graph()).collect()
    }

    #[test]
    fn every_scheme_completes_a_mixed_workload() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[
            ModelId::ResNet50,
            ModelId::SqueezeNet,
            ModelId::Bert,
            ModelId::MobileNetV2,
        ]);
        for scheme in Scheme::ALL {
            let r = scheme.run(&soc, &reqs).unwrap_or_else(|e| {
                panic!("{} failed: {e}", scheme.name());
            });
            assert!(r.makespan_ms > 0.0, "{}", scheme.name());
            assert_eq!(r.request_latency_ms.len(), reqs.len(), "{}", scheme.name());
        }
    }

    #[test]
    fn every_scheme_lowers_to_a_lint_clean_task_graph() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[ModelId::YoloV4, ModelId::MobileNetV2, ModelId::Bert]);
        for scheme in Scheme::ALL {
            let lowered = scheme.lower(&soc, &reqs).unwrap_or_else(|e| {
                panic!("{} failed to lower: {e}", scheme.name());
            });
            let diags = lowered.lint();
            assert!(diags.is_clean(), "{}: {diags}", scheme.name());
        }
    }

    #[test]
    fn every_scheme_produces_an_audit_clean_trace() {
        // The trace-audit gate extended to the baselines: every scheme's
        // executed trace must satisfy the simulator contracts, exactly
        // like the planner's own (`h2p trace --scheme X --audit` asserts
        // the same in scripts/ci.sh).
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[ModelId::Bert, ModelId::YoloV4, ModelId::MobileNetV2]);
        for scheme in Scheme::ALL {
            let lowered = scheme.lower(&soc, &reqs).unwrap_or_else(|e| {
                panic!("{} failed to lower: {e}", scheme.name());
            });
            let tasks = lowered.simulation().tasks().to_vec();
            let (report, _events) = lowered.execute_logged().unwrap_or_else(|e| {
                panic!("{} failed to execute: {e}", scheme.name());
            });
            let audit = h2p_simulator::audit::audit(&soc, &tasks, &report.trace);
            assert!(audit.is_clean(), "{}: {audit}", scheme.name());
        }
    }

    #[test]
    fn hetero2pipe_beats_serial_mnn_substantially() {
        // The paper's headline: 4.2x average speedup vs MNN, up to 8.8x
        // on Kirin 990. Require at least 2x on a friendly mix.
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[
            ModelId::ResNet50,
            ModelId::Vgg16,
            ModelId::MobileNetV2,
            ModelId::InceptionV4,
            ModelId::GoogLeNet,
            ModelId::AlexNet,
        ]);
        let mnn = Scheme::MnnSerial.run(&soc, &reqs).unwrap();
        let h2p = Scheme::Hetero2Pipe.run(&soc, &reqs).unwrap();
        let speedup = mnn.makespan_ms / h2p.makespan_ms;
        assert!(speedup > 2.0, "speedup only {speedup:.2}x");
    }
}
