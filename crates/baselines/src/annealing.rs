//! Simulated-annealing search over the vertical arrangement (Fig. 8a's
//! meta-heuristic comparator).
//!
//! Same search space as [`crate::exhaustive`] — request orderings with
//! fixed horizontal partitions — explored by simulated annealing with a
//! geometric cooling schedule and pairwise-swap neighbourhood. The paper
//! shows Hetero²Pipe outperforms this meta-heuristic at much lower
//! complexity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use h2p_models::graph::ModelGraph;
use h2p_simulator::soc::SocSpec;
use hetero2pipe::error::PlanError;

use crate::exhaustive::{base_plan, evaluate_order, realize, SearchOutcome};

/// Tuning parameters for the annealer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingParams {
    /// Iterations (neighbour evaluations).
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial estimate.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor applied each iteration.
    pub cooling: f64,
}

impl Default for AnnealingParams {
    fn default() -> Self {
        AnnealingParams {
            iterations: 400,
            initial_temp_frac: 0.10,
            cooling: 0.99,
        }
    }
}

/// Runs simulated annealing over request orderings with the given seed.
///
/// # Errors
///
/// Returns [`PlanError`] if planning or execution fails.
pub fn run(
    soc: &SocSpec,
    requests: &[ModelGraph],
    seed: u64,
    params: AnnealingParams,
) -> Result<SearchOutcome, PlanError> {
    let (base, estimator) = base_plan(soc, requests)?;
    let n = requests.len();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut order: Vec<usize> = (0..n).collect();
    let mut energy = evaluate_order(&base, &estimator, &order);
    let mut best_order = order.clone();
    let mut best = energy;
    let mut temp = energy * params.initial_temp_frac;
    let mut evaluated = 1usize;

    if n > 1 {
        for _ in 0..params.iterations {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            order.swap(a, b);
            let e = evaluate_order(&base, &estimator, &order);
            evaluated += 1;
            let accept = e <= energy || {
                let d = (e - energy) / temp.max(1e-9);
                rng.gen::<f64>() < (-d).exp()
            };
            if accept {
                energy = e;
                if e < best {
                    best = e;
                    best_order = order.clone();
                }
            } else {
                order.swap(a, b); // revert
            }
            temp *= params.cooling;
        }
    }

    let report = realize(&base, &estimator, &best_order, soc)?;
    Ok(SearchOutcome {
        report,
        best_order,
        best_estimate_ms: best,
        evaluated,
        complete: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;

    fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
        ids.iter().map(|m| m.graph()).collect()
    }

    #[test]
    fn annealing_never_beats_exhaustive() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[
            ModelId::Bert,
            ModelId::SqueezeNet,
            ModelId::ResNet50,
            ModelId::MobileNetV2,
        ]);
        let ex = crate::exhaustive::run(&soc, &reqs, 100_000).unwrap();
        let sa = run(&soc, &reqs, 7, AnnealingParams::default()).unwrap();
        assert!(sa.best_estimate_ms >= ex.best_estimate_ms - 1e-9);
    }

    #[test]
    fn annealing_improves_or_matches_identity_order() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[
            ModelId::SqueezeNet,
            ModelId::GoogLeNet,
            ModelId::Vgg16,
            ModelId::Bert,
            ModelId::MobileNetV2,
        ]);
        let (base, est) = base_plan(&soc, &reqs).unwrap();
        let identity: Vec<usize> = (0..reqs.len()).collect();
        let id_e = evaluate_order(&base, &est, &identity);
        let sa = run(&soc, &reqs, 1, AnnealingParams::default()).unwrap();
        assert!(sa.best_estimate_ms <= id_e + 1e-9);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[ModelId::Bert, ModelId::SqueezeNet, ModelId::Vit]);
        let a = run(&soc, &reqs, 42, AnnealingParams::default()).unwrap();
        let b = run(&soc, &reqs, 42, AnnealingParams::default()).unwrap();
        assert_eq!(a.best_order, b.best_order);
        assert_eq!(a.best_estimate_ms, b.best_estimate_ms);
    }

    #[test]
    fn single_request_is_trivial() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[ModelId::ResNet50]);
        let sa = run(&soc, &reqs, 0, AnnealingParams::default()).unwrap();
        assert_eq!(sa.best_order, vec![0]);
        assert_eq!(sa.evaluated, 1);
    }
}
