//! Pipe-it baseline: CPU-only Big/Small pipeline.
//!
//! Pipe-it pipelines DNN inference across CPU core clusters only. As in
//! the paper's evaluation, we adapt it to heterogeneous DNNs and use the
//! per-cluster granularity (all four Big cores as stage 1, all four Small
//! cores as stage 2) — the paper's Fig. 10 shows finer in-cluster splits
//! suffer up to 70% intra-cluster slowdown, so the cluster split is the
//! "fastest core combination". Each model is partitioned with the same DP
//! used by Hetero²Pipe's horizontal step, but there is no NPU/GPU, no
//! contention mitigation and no vertical alignment.

use h2p_models::graph::ModelGraph;
use h2p_simulator::processor::ProcessorKind;
use h2p_simulator::soc::SocSpec;
use hetero2pipe::error::PlanError;
use hetero2pipe::estimate::Estimator;
use hetero2pipe::executor::{self, ExecutionReport};
use hetero2pipe::partition::min_max_partition;
use hetero2pipe::plan::{PipelinePlan, RequestPlan};

/// Builds the Big→Small CPU pipeline plan without executing it.
///
/// # Errors
///
/// Returns [`PlanError`] if the SoC lacks CPU clusters or a model cannot
/// be partitioned.
pub fn plan(soc: &SocSpec, requests: &[ModelGraph]) -> Result<PipelinePlan, PlanError> {
    if requests.is_empty() {
        return Err(PlanError::EmptyRequestSet);
    }
    let big = soc
        .processor_by_kind(ProcessorKind::CpuBig)
        .ok_or(PlanError::NoCpu)?;
    let small = soc
        .processor_by_kind(ProcessorKind::CpuSmall)
        .ok_or(PlanError::NoCpu)?;
    let estimator = Estimator::new(soc)?;
    let cost = estimator.cost();
    let procs = vec![big, small];

    let mut plans = Vec::with_capacity(requests.len());
    for (idx, graph) in requests.iter().enumerate() {
        // Two-stage DP partition over Big → Small (CPUs support all ops).
        let ctx = estimator.context(graph, &procs, vec![0, 1]);
        let k = ctx.stage_count().min(graph.len());
        let ctx = if k < 2 {
            estimator.context(graph, &procs, vec![0])
        } else {
            ctx
        };
        let p = min_max_partition(graph.len(), ctx.stage_count(), |a, i, j| {
            ctx.stage_cost(cost, a, i, j)
        })
        .ok_or_else(|| PlanError::NoFeasiblePipeline {
            model: graph.name().to_owned(),
        })?;
        let stages = ctx
            .build_stages(cost, &p.splits, procs.len())
            .ok_or_else(|| PlanError::NoFeasiblePipeline {
                model: graph.name().to_owned(),
            })?;
        plans.push(RequestPlan {
            request: idx,
            model: graph.name().to_owned(),
            stages,
            intensity: estimator.predict_intensity(graph),
            class: estimator.classify(graph),
        });
    }
    Ok(PipelinePlan {
        procs,
        requests: plans,
    })
}

/// Plans and executes `requests` as a Big→Small CPU pipeline.
///
/// # Errors
///
/// Returns [`PlanError`] if the SoC lacks CPU clusters or simulation
/// fails.
pub fn run(soc: &SocSpec, requests: &[ModelGraph]) -> Result<ExecutionReport, PlanError> {
    executor::execute(&plan(soc, requests)?, soc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;

    #[test]
    fn uses_only_cpu_clusters() {
        let soc = SocSpec::kirin_990();
        let reqs = vec![ModelId::ResNet50.graph(), ModelId::Vgg16.graph()];
        let r = run(&soc, &reqs).unwrap();
        let big = soc.processor_by_kind(ProcessorKind::CpuBig).unwrap();
        let small = soc.processor_by_kind(ProcessorKind::CpuSmall).unwrap();
        assert!(r
            .trace
            .spans
            .iter()
            .all(|s| s.processor == big || s.processor == small));
    }

    #[test]
    fn pipelining_beats_pure_serial_on_long_request_streams() {
        // Two-stage Big/Small pipelining pays off in steady state: the
        // pipeline fill cost amortizes over a long enough stream.
        let soc = SocSpec::kirin_990();
        let reqs: Vec<ModelGraph> = vec![ModelId::ResNet50.graph(); 10];
        let pipe = run(&soc, &reqs).unwrap();
        let serial = crate::mnn_serial::run(&soc, &reqs).unwrap();
        assert!(
            pipe.makespan_ms < serial.makespan_ms,
            "pipe {} vs serial {}",
            pipe.makespan_ms,
            serial.makespan_ms
        );
    }

    #[test]
    fn single_layer_models_fall_back_to_one_stage() {
        use h2p_models::layer::{Layer, OpKind};
        let soc = SocSpec::kirin_990();
        let g = ModelGraph::new(
            "tiny",
            1024,
            vec![Layer::new("only", OpKind::Conv, 1e8, 1024, 1024, 4096)],
        );
        let r = run(&soc, &[g]).unwrap();
        assert_eq!(r.trace.spans.len(), 1);
    }
}
