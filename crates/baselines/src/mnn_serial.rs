//! Vanilla MNN v2.6.0 baseline: CPU-centric serial execution.
//!
//! "Since the CPU still outperforms the embedded GPU in most mobile
//! consumer devices, this represents the vanilla CPU-centric
//! implementation on the Big cores" — every request runs whole-model on
//! the CPU Big cluster, one after another (Fig. 2a's accumulating
//! queueing delay).

use h2p_models::cost::CostModel;
use h2p_models::graph::{LayerRange, ModelGraph};
use h2p_simulator::engine::{Simulation, TaskId, TaskSpec};
use h2p_simulator::processor::ProcessorKind;
use h2p_simulator::soc::SocSpec;
use hetero2pipe::error::PlanError;
use hetero2pipe::executor::{ExecutionReport, LoweredPlan};

/// Lowers `requests` to a serial CPU-Big task chain without running it.
///
/// # Errors
///
/// Returns [`PlanError::NoCpu`] if the SoC lacks a big CPU cluster.
pub fn lower(soc: &SocSpec, requests: &[ModelGraph]) -> Result<LoweredPlan, PlanError> {
    if requests.is_empty() {
        return Err(PlanError::EmptyRequestSet);
    }
    let big = soc
        .processor_by_kind(ProcessorKind::CpuBig)
        .ok_or(PlanError::NoCpu)?;
    let cost = CostModel::new(soc);
    let mut sim = Simulation::new(soc.clone());
    let mut final_tasks: Vec<Option<TaskId>> = Vec::with_capacity(requests.len());
    let mut seen = std::collections::HashSet::new();
    for (idx, graph) in requests.iter().enumerate() {
        let whole = LayerRange::new(0, graph.len() - 1);
        let ms = cost.slice_latency_ms(graph, whole, big).ok_or_else(|| {
            PlanError::NoFeasiblePipeline {
                model: graph.name().to_owned(),
            }
        })?;
        let upload = hetero2pipe::executor::staging_ms(
            &mut seen,
            (graph.name().to_owned(), big.index(), 0, graph.len() - 1),
            (graph.footprint_bytes() as f64 * cost.footprint_scale()) as u64,
        );
        let bw = cost.slice_bandwidth_gbps(graph, whole, big).unwrap_or(0.0);
        let id = sim.add_task(
            TaskSpec::new(format!("{}#{idx}", graph.name()), big, ms + upload)
                .intensity(bw / h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS)
                .bandwidth(bw)
                .footprint((graph.footprint_bytes() as f64 * cost.footprint_scale()) as u64),
        );
        final_tasks.push(Some(id));
    }
    Ok(LoweredPlan::from_parts(sim, final_tasks, requests.len()))
}

/// Executes `requests` serially on the CPU Big cores.
///
/// # Errors
///
/// Returns [`PlanError::NoCpu`] if the SoC lacks a big CPU cluster, or
/// [`PlanError::Simulation`] if the simulation fails.
pub fn run(soc: &SocSpec, requests: &[ModelGraph]) -> Result<ExecutionReport, PlanError> {
    lower(soc, requests)?.execute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;

    #[test]
    fn serial_latency_accumulates() {
        // Fig. 2(a): queueing delay accumulates with serial execution.
        let soc = SocSpec::kirin_990();
        let reqs: Vec<ModelGraph> = vec![ModelId::ResNet50.graph(); 3];
        let r = run(&soc, &reqs).unwrap();
        let l = &r.request_latency_ms;
        assert!(
            l[0] < l[1] && l[1] < l[2],
            "latencies must accumulate: {l:?}"
        );
        // Uniform models: equal spacing.
        let d1 = l[1] - l[0];
        let d2 = l[2] - l[1];
        assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn only_the_big_cpu_is_used() {
        let soc = SocSpec::kirin_990();
        let big = soc.processor_by_kind(ProcessorKind::CpuBig).unwrap();
        let reqs = vec![ModelId::SqueezeNet.graph(), ModelId::Bert.graph()];
        let r = run(&soc, &reqs).unwrap();
        assert!(r.trace.spans.iter().all(|s| s.processor == big));
    }

    #[test]
    fn empty_request_set_is_rejected() {
        let soc = SocSpec::kirin_990();
        assert_eq!(run(&soc, &[]).unwrap_err(), PlanError::EmptyRequestSet);
    }
}
