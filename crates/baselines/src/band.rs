//! Band baseline (MobiSys '22): coordinated multi-DNN inference via
//! greedy subgraph-to-processor mapping with operator fallback.
//!
//! Band "prioritizes model inference on high-performance processors based
//! on operator supportability, and falls back to secondary ones for
//! unsupported operators ... through dynamic processor switching", but
//! "does not purposely optimize pipelines". We reproduce that policy:
//!
//! 1. Each model is cut into maximal subgraphs at NPU-supportability
//!    boundaries (the fallback points).
//! 2. Each subgraph greedily picks the processor minimizing its estimated
//!    finish time — current estimated availability + copy + execution —
//!    among the processors supporting it.
//! 3. No re-ordering, no stage balancing, no bubble optimization.

use h2p_models::cost::CostModel;
use h2p_models::graph::{LayerRange, ModelGraph};
use h2p_simulator::engine::{Simulation, TaskId, TaskSpec};
use h2p_simulator::processor::ProcessorId;
use h2p_simulator::soc::SocSpec;
use hetero2pipe::error::PlanError;
use hetero2pipe::executor::{ExecutionReport, LoweredPlan};

/// Cuts `graph` into maximal runs of uniform NPU supportability.
fn fallback_segments(graph: &ModelGraph) -> Vec<LayerRange> {
    let mut segments = Vec::new();
    let mut start = 0usize;
    let mut cur = graph.layers()[0].op.npu_supported();
    for (i, layer) in graph.layers().iter().enumerate().skip(1) {
        let s = layer.op.npu_supported();
        if s != cur {
            segments.push(LayerRange::new(start, i - 1));
            start = i;
            cur = s;
        }
    }
    segments.push(LayerRange::new(start, graph.len() - 1));
    segments
}

/// Lowers `requests` to Band's greedy task graph without running it.
///
/// # Errors
///
/// Returns [`PlanError`] if a segment cannot run anywhere.
pub fn lower(soc: &SocSpec, requests: &[ModelGraph]) -> Result<LoweredPlan, PlanError> {
    if requests.is_empty() {
        return Err(PlanError::EmptyRequestSet);
    }
    let cost = CostModel::new(soc);
    let procs: Vec<ProcessorId> = soc.processors_by_power();
    // Estimated availability per processor (planner-side view).
    let mut avail = vec![0.0f64; soc.processors.len()];
    let mut sim = Simulation::new(soc.clone());
    let mut final_tasks: Vec<Option<TaskId>> = vec![None; requests.len()];
    // First-touch weight staging: Band's dynamic processor switching means
    // a repeat request whose segment lands on a *different* processor must
    // re-stage its weights there — the memory churn the paper criticizes.
    let mut seen: std::collections::HashSet<(String, usize, usize, usize)> =
        std::collections::HashSet::new();

    for (idx, graph) in requests.iter().enumerate() {
        let mut prev_task: Option<TaskId> = None;
        let mut prev_proc: Option<ProcessorId> = None;
        let mut ready = 0.0f64; // estimated time the segment's input is ready
        for seg in fallback_segments(graph) {
            // Greedy choice: earliest estimated finish among supported
            // processors (power order breaks ties toward the NPU).
            let mut best: Option<(ProcessorId, f64, f64, f64)> = None;
            for &p in &procs {
                let Some(exec) = cost.slice_latency_ms(graph, seg, p) else {
                    continue;
                };
                let copy = match prev_proc {
                    Some(q) => cost.copy_ms(graph.slice_input_bytes(seg), q, p),
                    None => 0.0,
                };
                let start = avail[p.index()].max(ready);
                let finish = start + copy + exec;
                if best.as_ref().is_none_or(|b| finish < b.1 - 1e-12) {
                    best = Some((p, finish, exec, copy));
                }
            }
            let (p, finish, exec, copy) = best.ok_or_else(|| PlanError::NoFeasiblePipeline {
                model: graph.name().to_owned(),
            })?;
            avail[p.index()] = finish;
            ready = finish;
            let bw = cost.slice_bandwidth_gbps(graph, seg, p).unwrap_or(0.0);
            let footprint = ((graph.slice_weight_bytes(seg)
                + graph.slice_input_bytes(seg)
                + graph.boundary_bytes(seg.last)) as f64
                * cost.footprint_scale()) as u64;
            let upload = hetero2pipe::executor::staging_ms(
                &mut seen,
                (graph.name().to_owned(), p.index(), seg.first, seg.last),
                footprint,
            );
            let mut spec = TaskSpec::new(
                format!("{}#{idx}@{}", graph.name(), seg),
                p,
                exec + copy + upload,
            )
            .intensity(bw / h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS)
            .bandwidth(bw)
            .footprint(footprint);
            if let Some(t) = prev_task {
                spec = spec.after(t);
            }
            let id = sim.add_task(spec);
            prev_task = Some(id);
            prev_proc = Some(p);
        }
        final_tasks[idx] = prev_task;
    }

    Ok(LoweredPlan::from_parts(sim, final_tasks, requests.len()))
}

/// Plans and executes `requests` under Band's greedy policy.
///
/// # Errors
///
/// Returns [`PlanError`] if a segment cannot run anywhere or simulation
/// fails.
pub fn run(soc: &SocSpec, requests: &[ModelGraph]) -> Result<ExecutionReport, PlanError> {
    lower(soc, requests)?.execute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;
    use h2p_simulator::processor::ProcessorKind;

    #[test]
    fn npu_supported_model_lands_on_the_npu() {
        let soc = SocSpec::kirin_990();
        let npu = soc.processor_by_kind(ProcessorKind::Npu).unwrap();
        let r = run(&soc, &[ModelId::ResNet50.graph()]).unwrap();
        assert!(r.trace.spans.iter().any(|s| s.processor == npu));
    }

    #[test]
    fn yolo_segments_fall_back_around_mish() {
        let g = ModelId::YoloV4.graph();
        let segs = fallback_segments(&g);
        assert!(segs.len() > 3, "YOLOv4 alternates supported/unsupported");
        // Segments tile the model contiguously.
        assert_eq!(segs[0].first, 0);
        for w in segs.windows(2) {
            assert_eq!(w[0].last + 1, w[1].first);
        }
        assert_eq!(segs.last().unwrap().last, g.len() - 1);
    }

    #[test]
    fn fallback_models_occupy_multiple_processors() {
        // YOLOv4's Mish/upsample segments cannot run on the NPU, so Band
        // is forced into dynamic processor switching.
        let soc = SocSpec::kirin_990();
        let reqs: Vec<ModelGraph> = vec![ModelId::YoloV4.graph(); 2];
        let r = run(&soc, &reqs).unwrap();
        let used: std::collections::HashSet<_> =
            r.trace.spans.iter().map(|s| s.processor).collect();
        assert!(used.len() >= 2, "fallback must spread across processors");
    }

    #[test]
    fn npu_monopolizes_short_queues_then_overflows() {
        // With a short queue of NPU-friendly models, greedy keeps
        // everything on the (~4x faster) NPU; once the queue grows long
        // enough, waiting for the NPU loses to an idle CPU/GPU and the
        // greedy overflows.
        let soc = SocSpec::kirin_990();
        let npu = soc.processor_by_kind(ProcessorKind::Npu).unwrap();
        let short: Vec<ModelGraph> = vec![ModelId::ResNet50.graph(); 2];
        let r = run(&soc, &short).unwrap();
        assert!(r.trace.spans.iter().all(|s| s.processor == npu));
        let long: Vec<ModelGraph> = vec![ModelId::ResNet50.graph(); 8];
        let r = run(&soc, &long).unwrap();
        assert!(
            !r.trace.spans.iter().all(|s| s.processor == npu),
            "long queues must overflow to other processors"
        );
    }

    #[test]
    fn band_beats_serial_mnn() {
        let soc = SocSpec::kirin_990();
        let reqs: Vec<ModelGraph> = vec![
            ModelId::ResNet50.graph(),
            ModelId::InceptionV4.graph(),
            ModelId::Vgg16.graph(),
        ];
        let band = run(&soc, &reqs).unwrap();
        let mnn = crate::mnn_serial::run(&soc, &reqs).unwrap();
        assert!(band.makespan_ms < mnn.makespan_ms);
    }

    #[test]
    fn works_without_an_npu() {
        let soc = SocSpec::snapdragon_870();
        let r = run(&soc, &[ModelId::Bert.graph(), ModelId::ResNet50.graph()]).unwrap();
        assert_eq!(r.request_latency_ms.len(), 2);
    }
}
