//! Exhaustive search over the vertical arrangement (Fig. 8a reference).
//!
//! With horizontal partitions fixed (the same DP output Hetero²Pipe
//! uses), the remaining vertical choice is the request order. This module
//! enumerates every permutation, evaluates each with the same
//! work-stealing alignment the planner applies, and realizes the best
//! one. Factorial cost — usable only for the small request sets of the
//! ablation study, which is exactly its role in the paper: Hetero²Pipe's
//! polynomial-time plan lands within a few percent of this optimum.

use h2p_models::graph::ModelGraph;
use h2p_simulator::soc::SocSpec;
use hetero2pipe::error::PlanError;
use hetero2pipe::estimate::Estimator;
use hetero2pipe::executor::{self, ExecutionReport};
use hetero2pipe::plan::PipelinePlan;
use hetero2pipe::planner::{PlannedPipeline, Planner, PlannerConfig};
use hetero2pipe::worksteal;

/// Result of a vertical-arrangement search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Execution report of the best arrangement found.
    pub report: ExecutionReport,
    /// The winning order (positions → original request indices).
    pub best_order: Vec<usize>,
    /// Estimated makespan of the winning arrangement.
    pub best_estimate_ms: f64,
    /// Number of arrangements evaluated.
    pub evaluated: usize,
    /// Whether the search space was covered completely.
    pub complete: bool,
}

/// Builds the horizontal-only plan shared by every arrangement.
pub(crate) fn base_plan(
    soc: &SocSpec,
    requests: &[ModelGraph],
) -> Result<(PlannedPipeline, Estimator), PlanError> {
    let cfg = PlannerConfig {
        contention_mitigation: false,
        work_stealing: false,
        tail_optimization: false,
        ..PlannerConfig::default()
    };
    let planner = Planner::with_config(soc, cfg)?;
    let planned = planner.plan(requests)?;
    let estimator = planner.estimator().clone();
    Ok((planned, estimator))
}

/// Estimated makespan of one arrangement: permute the base plan's
/// requests, apply work stealing, and read the column-sum estimate.
pub(crate) fn evaluate_order(
    base: &PlannedPipeline,
    estimator: &Estimator,
    order: &[usize],
) -> f64 {
    let mut plan = PipelinePlan {
        procs: base.plan.procs.clone(),
        requests: order
            .iter()
            .map(|&i| base.plan.requests[i].clone())
            .collect(),
    };
    let mut ctxs = base.contexts.clone();
    worksteal::align_by_stealing(&mut plan, &ctxs, estimator.cost());
    worksteal::optimize_tail(&mut plan, &mut ctxs, estimator);
    plan.estimated_makespan_contention_ms(estimator.cost().soc())
}

/// Realizes an arrangement end to end: stealing + tail optimization +
/// simulator execution.
pub(crate) fn realize(
    base: &PlannedPipeline,
    estimator: &Estimator,
    order: &[usize],
    soc: &SocSpec,
) -> Result<ExecutionReport, PlanError> {
    let mut plan = PipelinePlan {
        procs: base.plan.procs.clone(),
        requests: order
            .iter()
            .map(|&i| base.plan.requests[i].clone())
            .collect(),
    };
    let mut ctxs = base.contexts.clone();
    worksteal::align_by_stealing(&mut plan, &ctxs, estimator.cost());
    worksteal::optimize_tail(&mut plan, &mut ctxs, estimator);
    executor::execute(&plan, soc)
}

/// How candidate arrangements are scored during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evaluation {
    /// The planner's synchronous-column makespan estimate — cheap, and
    /// the same information polynomial-time planners have.
    Estimate,
    /// Full simulated execution — the oracle the paper's exhaustive
    /// search has when it measures every candidate on the device.
    Simulated,
}

/// Exhaustively searches request orderings, evaluating at most
/// `max_permutations` (set it above `n!` for a complete search).
///
/// # Errors
///
/// Returns [`PlanError`] if planning or execution fails.
pub fn run(
    soc: &SocSpec,
    requests: &[ModelGraph],
    max_permutations: usize,
) -> Result<SearchOutcome, PlanError> {
    run_with(soc, requests, max_permutations, Evaluation::Estimate)
}

/// Exhaustive search with an explicit evaluation mode; see [`Evaluation`].
///
/// # Errors
///
/// Returns [`PlanError`] if planning or execution fails.
pub fn run_with(
    soc: &SocSpec,
    requests: &[ModelGraph],
    max_permutations: usize,
    evaluation: Evaluation,
) -> Result<SearchOutcome, PlanError> {
    let (base, estimator) = base_plan(soc, requests)?;
    let n = requests.len();
    let score = |order: &[usize]| -> Result<f64, PlanError> {
        Ok(match evaluation {
            Evaluation::Estimate => evaluate_order(&base, &estimator, order),
            Evaluation::Simulated => realize(&base, &estimator, order, soc)?.makespan_ms,
        })
    };
    let mut order: Vec<usize> = (0..n).collect();
    let mut best_order = order.clone();
    let mut best = score(&order)?;
    let mut evaluated = 1usize;
    let mut complete = true;

    // Heap's algorithm for permutations.
    let mut c = vec![0usize; n];
    let mut i = 0usize;
    while i < n {
        if evaluated >= max_permutations {
            complete = false;
            break;
        }
        if c[i] < i {
            if i.is_multiple_of(2) {
                order.swap(0, i);
            } else {
                order.swap(c[i], i);
            }
            let e = score(&order)?;
            evaluated += 1;
            if e < best {
                best = e;
                best_order = order.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }

    let report = realize(&base, &estimator, &best_order, soc)?;
    Ok(SearchOutcome {
        report,
        best_order,
        best_estimate_ms: best,
        evaluated,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;

    fn graphs(ids: &[ModelId]) -> Vec<ModelGraph> {
        ids.iter().map(|m| m.graph()).collect()
    }

    #[test]
    fn covers_all_permutations_of_small_sets() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[ModelId::SqueezeNet, ModelId::ResNet50, ModelId::Bert]);
        let out = run(&soc, &reqs, 1000).unwrap();
        assert!(out.complete);
        assert_eq!(out.evaluated, 6, "3! orderings");
        let mut sorted = out.best_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn exhaustive_is_at_least_as_good_as_identity_order() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[
            ModelId::Bert,
            ModelId::SqueezeNet,
            ModelId::Vgg16,
            ModelId::MobileNetV2,
        ]);
        let (base, est) = base_plan(&soc, &reqs).unwrap();
        let identity: Vec<usize> = (0..reqs.len()).collect();
        let id_est = evaluate_order(&base, &est, &identity);
        let out = run(&soc, &reqs, 10_000).unwrap();
        assert!(out.best_estimate_ms <= id_est + 1e-9);
    }

    #[test]
    fn permutation_cap_truncates_search() {
        let soc = SocSpec::kirin_990();
        let reqs = graphs(&[
            ModelId::SqueezeNet,
            ModelId::ResNet50,
            ModelId::Bert,
            ModelId::AlexNet,
        ]);
        let out = run(&soc, &reqs, 5).unwrap();
        assert!(!out.complete);
        assert_eq!(out.evaluated, 5);
    }
}
