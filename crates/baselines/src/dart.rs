//! DART baseline (RTSS '19): pipelined data-parallel CPU/GPU scheduling.
//!
//! DART distributes whole inference requests across CPU and GPU worker
//! queues (data parallelism between requests rather than model
//! parallelism within one), without NPU support, model heterogeneity
//! awareness or contention modeling (Table I). We reproduce the policy as
//! shortest-estimated-queue dispatch of whole models over the CPU Big
//! cluster and the GPU.

use h2p_models::cost::CostModel;
use h2p_models::graph::{LayerRange, ModelGraph};
use h2p_simulator::engine::{Simulation, TaskId, TaskSpec};
use h2p_simulator::processor::ProcessorKind;
use h2p_simulator::soc::SocSpec;
use hetero2pipe::error::PlanError;
use hetero2pipe::executor::{ExecutionReport, LoweredPlan};

/// Lowers `requests` to DART's two-worker task graph without running it.
///
/// # Errors
///
/// Returns [`PlanError`] if the SoC lacks a CPU or GPU.
pub fn lower(soc: &SocSpec, requests: &[ModelGraph]) -> Result<LoweredPlan, PlanError> {
    if requests.is_empty() {
        return Err(PlanError::EmptyRequestSet);
    }
    let big = soc
        .processor_by_kind(ProcessorKind::CpuBig)
        .ok_or(PlanError::NoCpu)?;
    let gpu = soc
        .processor_by_kind(ProcessorKind::Gpu)
        .ok_or(PlanError::NoCpu)?;
    let workers = [big, gpu];
    let cost = CostModel::new(soc);
    let mut avail = [0.0f64; 2];
    let mut sim = Simulation::new(soc.clone());
    let mut final_tasks: Vec<Option<TaskId>> = vec![None; requests.len()];
    let mut seen = std::collections::HashSet::new();

    for (idx, graph) in requests.iter().enumerate() {
        let whole = LayerRange::new(0, graph.len() - 1);
        // Dispatch to the worker with the earliest estimated finish.
        let mut best = 0usize;
        let mut best_finish = f64::INFINITY;
        let mut best_ms = 0.0;
        for (w, &p) in workers.iter().enumerate() {
            let ms = cost.slice_latency_ms(graph, whole, p).ok_or_else(|| {
                PlanError::NoFeasiblePipeline {
                    model: graph.name().to_owned(),
                }
            })?;
            let finish = avail[w] + ms;
            if finish < best_finish {
                best_finish = finish;
                best = w;
                best_ms = ms;
            }
        }
        avail[best] = best_finish;
        let p = workers[best];
        let footprint = (graph.footprint_bytes() as f64 * cost.footprint_scale()) as u64;
        let upload = hetero2pipe::executor::staging_ms(
            &mut seen,
            (graph.name().to_owned(), p.index(), 0, graph.len() - 1),
            footprint,
        );
        let bw = cost.slice_bandwidth_gbps(graph, whole, p).unwrap_or(0.0);
        let id = sim.add_task(
            TaskSpec::new(format!("{}#{idx}", graph.name()), p, best_ms + upload)
                .intensity(bw / h2p_contention::counters::REFERENCE_BANDWIDTH_GBPS)
                .bandwidth(bw)
                .footprint(footprint),
        );
        final_tasks[idx] = Some(id);
    }

    Ok(LoweredPlan::from_parts(sim, final_tasks, requests.len()))
}

/// Plans and executes `requests` under DART's data-parallel policy.
///
/// # Errors
///
/// Returns [`PlanError`] if the SoC lacks a CPU or GPU, or simulation
/// fails.
pub fn run(soc: &SocSpec, requests: &[ModelGraph]) -> Result<ExecutionReport, PlanError> {
    lower(soc, requests)?.execute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_models::zoo::ModelId;

    #[test]
    fn dart_uses_both_cpu_and_gpu() {
        let soc = SocSpec::kirin_990();
        let reqs: Vec<ModelGraph> = vec![ModelId::ResNet50.graph(); 4];
        let r = run(&soc, &reqs).unwrap();
        let used: std::collections::HashSet<_> =
            r.trace.spans.iter().map(|s| s.processor).collect();
        assert_eq!(used.len(), 2, "whole models spread over CPU_B and GPU");
    }

    #[test]
    fn dart_beats_serial_but_trails_hetero2pipe() {
        let soc = SocSpec::kirin_990();
        let reqs: Vec<ModelGraph> = [
            ModelId::ResNet50,
            ModelId::InceptionV4,
            ModelId::Vgg16,
            ModelId::GoogLeNet,
            ModelId::AlexNet,
            ModelId::MobileNetV2,
        ]
        .iter()
        .map(|m| m.graph())
        .collect();
        let dart = run(&soc, &reqs).unwrap();
        let serial = crate::mnn_serial::run(&soc, &reqs).unwrap();
        let h2p = crate::Scheme::Hetero2Pipe.run(&soc, &reqs).unwrap();
        assert!(
            dart.makespan_ms < serial.makespan_ms,
            "two workers beat one"
        );
        assert!(
            h2p.makespan_ms < dart.makespan_ms,
            "the NPU-aware pipeline must beat CPU/GPU data parallelism: {} vs {}",
            h2p.makespan_ms,
            dart.makespan_ms
        );
    }

    #[test]
    fn dart_requires_a_gpu() {
        let mut soc = SocSpec::kirin_990();
        soc.processors.retain(|p| p.kind != ProcessorKind::Gpu);
        assert!(run(&soc, &[ModelId::ResNet50.graph()]).is_err());
    }
}
