//! # h2p-serve
//!
//! An overload-robust serving front-end for the Hetero²Pipe planner:
//! a *deterministic virtual-time* loop that ingests a seeded request
//! stream and drives it through admission control, per-QoS-class
//! queueing, lightweight-model batching, incremental window planning,
//! and (under chaos) the recovery machinery — while guaranteeing that
//! no request ever leaves the system silently.
//!
//! The paper's planner assumes well-formed batches; a production-scale
//! deployment must instead stay correct when offered more load than
//! the SoC can absorb. The pieces:
//!
//! * **Admission control** ([`admission`]) — per-class token buckets
//!   and queue depth limits derived from calibration-time capacity
//!   estimates ([`h2p_telemetry::analytics::SloSummary`] over the
//!   zoo's solo latencies).
//! * **Backpressure** — every refusal is a typed
//!   [`RejectReason`] (`QueueFull`, `DeadlineInfeasible`, `Shedding`)
//!   surfaced as a [`ServeOutcome::Rejected`] and a `reject` lifecycle
//!   event; there are no silent drops.
//! * **Deadline-aware load shedding** ([`queue`]) — queued requests
//!   whose remaining slack can no longer cover their solo critical
//!   path are evicted oldest-lowest-class first, each with a typed
//!   [`ServeOutcome::Shed`] and a `shed` lifecycle event.
//! * **Bounded retry/timeout/backoff** — transiently failed dispatches
//!   retry on the shared
//!   [`hetero2pipe::recovery::RecoveryPolicy::backoff_ms`] schedule,
//!   at most `max_retries` times, then degrade with a typed reason.
//!
//! Everything is virtual-time: the clock is the simulator's, all
//! randomness flows from explicit seeds, and a run at a fixed seed is
//! bit-identical (determinism lint H2P011). The robustness invariants
//! — exactly one typed terminal outcome per request, bounded queue
//! depth, bounded retries, a causally valid lifecycle stream — are
//! re-checked after every run by [`ServeReport::verify_invariants`]
//! and explored concurrently by the `h2p-check` admit/shed model.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod sweep;

pub use admission::{AdmissionControl, Calibration};
pub use loadgen::{generate_arrivals, Arrival};
pub use queue::{AdmitQueue, QueuedRequest};
pub use server::{
    OutcomeCounts, RejectReason, RequestRecord, ServeConfig, ServeOutcome, ServeReport, Server,
};
pub use sweep::{sweep, SweepPoint};

pub use h2p_telemetry::lifecycle::QosClass;

/// QoS class a request serves, by model compute size: small models are
/// interactive traffic, mid-size standard, heavyweights batch. Shared
/// by the serving loop and the `h2p` report pipeline so both sides
/// classify a model identically.
pub fn qos_class(flops: f64) -> QosClass {
    if flops < 2e9 {
        QosClass::Interactive
    } else if flops < 15e9 {
        QosClass::Standard
    } else {
        QosClass::Batch
    }
}

/// Deadline slack per class, as a multiple of the request's solo
/// (zero-contention) service time. Interactive requests get the
/// tightest envelope, batch the loosest.
pub fn slo_multiplier(class: QosClass) -> f64 {
    match class {
        QosClass::Interactive => 2.0,
        QosClass::Standard => 3.0,
        QosClass::Batch => 5.0,
    }
}

/// Dense index of a [`QosClass`] into per-class arrays, in
/// [`QosClass::ALL`] order.
pub fn class_index(class: QosClass) -> usize {
    match class {
        QosClass::Interactive => 0,
        QosClass::Standard => 1,
        QosClass::Batch => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_classes_partition_the_flops_axis() {
        assert_eq!(qos_class(1e9), QosClass::Interactive);
        assert_eq!(qos_class(5e9), QosClass::Standard);
        assert_eq!(qos_class(40e9), QosClass::Batch);
        for (i, c) in QosClass::ALL.iter().enumerate() {
            assert_eq!(class_index(*c), i);
        }
        assert!(slo_multiplier(QosClass::Interactive) < slo_multiplier(QosClass::Batch));
    }
}
