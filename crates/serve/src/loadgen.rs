//! Seeded open-loop load generation.
//!
//! Arrivals are an open-loop stream at a target QPS: inter-arrival
//! gaps are the mean gap `1000/qps` ms scaled by a uniform jitter in
//! `[0.5, 1.5)`, models drawn uniformly from the zoo. Everything flows
//! from the explicit seed, so a stream at a fixed `(seed, qps, n)` is
//! bit-identical across runs and hosts — the property the `ci.sh`
//! determinism gate asserts end-to-end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use h2p_models::zoo::ModelId;

/// One generated request arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Stable request id: the arrival index.
    pub id: usize,
    /// The model the request wants an inference from.
    pub model: ModelId,
    /// Arrival instant on the virtual clock, in ms.
    pub arrival_ms: f64,
}

/// Generates `n` arrivals at a mean rate of `qps` requests per second.
/// Arrival times are strictly increasing (gaps are bounded below by
/// half the mean gap), so the stream needs no sorting.
///
/// # Panics
///
/// Panics if `qps` is not strictly positive and finite.
pub fn generate_arrivals(seed: u64, qps: f64, n: usize) -> Vec<Arrival> {
    assert!(
        qps > 0.0 && qps.is_finite(),
        "qps must be positive and finite, got {qps}"
    );
    let mean_gap_ms = 1000.0 / qps;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|id| {
            t += mean_gap_ms * rng.gen_range(0.5..1.5);
            Arrival {
                id,
                model: ModelId::ALL[rng.gen_range(0..ModelId::ALL.len())],
                arrival_ms: t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_seed_deterministic_and_increasing() {
        let a = generate_arrivals(7, 50.0, 64);
        let b = generate_arrivals(7, 50.0, 64);
        assert_eq!(a, b);
        assert_ne!(a, generate_arrivals(8, 50.0, 64));
        for w in a.windows(2) {
            assert!(w[1].arrival_ms > w[0].arrival_ms);
        }
        // Mean rate lands near the target: 64 requests at 50 qps span
        // roughly 1.28 s of virtual time.
        let span = a[a.len() - 1].arrival_ms;
        assert!((800.0..1800.0).contains(&span), "{span}");
    }

    #[test]
    fn higher_qps_compresses_the_stream() {
        let slow = generate_arrivals(1, 10.0, 32);
        let fast = generate_arrivals(1, 1000.0, 32);
        assert!(fast[31].arrival_ms < slow[31].arrival_ms);
    }
}
