//! The deterministic virtual-time serving loop.
//!
//! One [`Server`] binds a planner, a calibration, and a dispatch
//! window to an SoC; each [`Server::run`] plays a seeded arrival
//! stream through admission → queue → shed → batch → plan → execute,
//! entirely on the virtual clock. The loop is single-threaded and
//! event-driven: the executor is busy for the makespan of each
//! dispatched batch, arrivals that land during a busy interval are
//! admitted at their own timestamps against the queue state the
//! executor left behind, and shedding runs at every dispatch instant
//! before the next batch is cut.
//!
//! Every request ends in exactly one typed [`ServeOutcome`]; the run
//! re-checks that (and the queue/retry bounds and the lifecycle
//! grammar) in [`ServeReport::verify_invariants`].

use h2p_models::zoo::ModelId;
use h2p_simulator::soc::SocSpec;
use h2p_telemetry::analytics::{LatencyProfile, SloEntry, SloSummary};
use h2p_telemetry::lifecycle::{
    validate, LifecycleEvent, LifecycleLog, LifecycleStage, QosClass, RequestId, TraceId,
};
use hetero2pipe::batching::{coalesce, graphs_for_groups};
use hetero2pipe::error::PlanError;
use hetero2pipe::online::OnlinePlanner;
use hetero2pipe::planner::Planner;
use hetero2pipe::recovery::{chaos_faults, run_with_recovery, RecoveryOutcome, RecoveryPolicy};

use crate::admission::{AdmissionControl, Calibration};
use crate::class_index;
use crate::loadgen::{generate_arrivals, Arrival};
use crate::queue::{AdmitQueue, QueuedRequest};

/// Tolerance when comparing latencies against deadlines.
const DEADLINE_EPS: f64 = 1e-9;

/// Typed backpressure: why admission turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The request's class queue is at its depth limit.
    QueueFull,
    /// The backlog estimate says the deadline cannot be met even if
    /// admitted now.
    DeadlineInfeasible,
    /// The class token bucket is empty: offered rate exceeds the
    /// class's sustainable service rate.
    Shedding,
}

impl RejectReason {
    /// Stable lowercase tag used in lifecycle reasons and reports.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineInfeasible => "deadline_infeasible",
            RejectReason::Shedding => "shedding",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The one typed terminal outcome every generated request reaches.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// Completed within its deadline; end-to-end latency from arrival.
    Complete { latency_ms: f64 },
    /// Completed, but after its deadline.
    TimedOut { latency_ms: f64, deadline_ms: f64 },
    /// Admitted but abandoned with a typed reason (execution faults
    /// exhausted recovery, or the dispatch itself failed repeatedly).
    Degraded { reason: String },
    /// Turned away by admission control; never admitted.
    Rejected { reason: RejectReason },
    /// Admitted, then evicted by deadline-aware load shedding after
    /// waiting `waited_ms` in the queue.
    Shed { waited_ms: f64 },
}

impl ServeOutcome {
    /// Stable lowercase tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeOutcome::Complete { .. } => "complete",
            ServeOutcome::TimedOut { .. } => "timed_out",
            ServeOutcome::Degraded { .. } => "degraded",
            ServeOutcome::Rejected { .. } => "rejected",
            ServeOutcome::Shed { .. } => "shed",
        }
    }
}

/// One request's full story: identity, class, deadline basis, and the
/// typed terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    pub id: usize,
    pub model: ModelId,
    pub class: QosClass,
    pub arrival_ms: f64,
    /// Calibration solo estimate (the shedding threshold).
    pub solo_ms: f64,
    /// Deadline relative to arrival.
    pub deadline_ms: f64,
    pub outcome: ServeOutcome,
}

/// Outcome tally across one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    pub complete: usize,
    pub timed_out: usize,
    pub degraded: usize,
    pub rejected_queue_full: usize,
    pub rejected_deadline_infeasible: usize,
    pub rejected_shedding: usize,
    pub shed: usize,
}

impl OutcomeCounts {
    fn tally(records: &[RequestRecord]) -> Self {
        let mut c = OutcomeCounts::default();
        for r in records {
            match &r.outcome {
                ServeOutcome::Complete { .. } => c.complete += 1,
                ServeOutcome::TimedOut { .. } => c.timed_out += 1,
                ServeOutcome::Degraded { .. } => c.degraded += 1,
                ServeOutcome::Rejected { reason } => match reason {
                    RejectReason::QueueFull => c.rejected_queue_full += 1,
                    RejectReason::DeadlineInfeasible => c.rejected_deadline_infeasible += 1,
                    RejectReason::Shedding => c.rejected_shedding += 1,
                },
                ServeOutcome::Shed { .. } => c.shed += 1,
            }
        }
        c
    }

    /// All rejections, across reasons.
    pub fn rejected(&self) -> usize {
        self.rejected_queue_full + self.rejected_deadline_infeasible + self.rejected_shedding
    }

    /// Every terminal outcome; equals the generated request count when
    /// no request was lost.
    pub fn total(&self) -> usize {
        self.complete + self.timed_out + self.degraded + self.rejected() + self.shed
    }

    /// Fraction of offered requests turned away (rejected or shed).
    pub fn rejection_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.rejected() + self.shed) as f64 / self.total() as f64
        }
    }

    /// Fraction of requests with deadlines that missed them (timed out
    /// or never finished after admission).
    pub fn deadline_miss_rate(&self) -> f64 {
        let admitted = self.complete + self.timed_out + self.degraded + self.shed;
        if admitted == 0 {
            0.0
        } else {
            (self.timed_out + self.degraded + self.shed) as f64 / admitted as f64
        }
    }
}

/// One serve run's parameters. The seed drives *all* randomness
/// (arrival stream and chaos fault scripts); two runs with the same
/// config produce bit-identical reports.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Offered load, requests per second of virtual time.
    pub qps: f64,
    /// Number of generated requests.
    pub requests: usize,
    pub seed: u64,
    /// Batching cap for adjacent identical lightweight models.
    pub max_batch: u32,
    /// Inject seeded faults and execute through the recovery runner.
    pub chaos: bool,
    /// Retry/backoff/deadline budgets, shared with the recovery layer.
    pub policy: RecoveryPolicy,
    /// SLO error budget for the report's burn-rate accounting.
    pub slo_budget: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            qps: 50.0,
            requests: 64,
            seed: 42,
            max_batch: 8,
            chaos: false,
            policy: RecoveryPolicy::default(),
            slo_budget: SloSummary::DEFAULT_BUDGET,
        }
    }
}

/// Everything a serve run produced, plus the bounds it ran under so
/// [`ServeReport::verify_invariants`] is self-contained.
#[derive(Debug, Clone)]
pub struct ServeReport {
    pub qps: f64,
    pub seed: u64,
    pub chaos: bool,
    pub window: usize,
    /// Run-level trace id over the generated model stream.
    pub trace: TraceId,
    /// One record per generated request, in arrival order.
    pub records: Vec<RequestRecord>,
    pub counts: OutcomeCounts,
    /// End-to-end latency profile over served requests (complete and
    /// timed-out); `None` when nothing was served.
    pub latency: Option<LatencyProfile>,
    /// Per-class SLO accounting over admitted requests.
    pub slo: Vec<SloSummary>,
    /// Queue depth limits the run enforced, per class.
    pub queue_limits: [usize; 3],
    /// High-water total queue depth observed.
    pub max_queue_depth: usize,
    /// High-water per-class queue depths observed.
    pub max_class_depth: [usize; 3],
    /// Deepest dispatch retry chain used.
    pub max_dispatch_retries: usize,
    /// The configured retry bound those chains must respect.
    pub retry_limit: usize,
    /// Number of batches dispatched.
    pub dispatches: usize,
    /// Virtual-time horizon: the last recorded event instant.
    pub horizon_ms: f64,
    /// Served (complete + timed-out) requests per second of horizon.
    pub served_per_sec: f64,
    /// The full lifecycle stream (admit/reject/shed/plan/window/
    /// execute/recover/degrade/complete), seq-ordered.
    pub lifecycle: Vec<LifecycleEvent>,
    /// Accounting anomalies observed while the run recorded outcomes
    /// (always empty unless the loop itself is broken).
    pub anomalies: Vec<String>,
}

impl ServeReport {
    /// Renders the lifecycle stream as event-log JSONL lines (the
    /// format `h2p report --from` ingests).
    pub fn json_event_lines(&self) -> Vec<String> {
        self.lifecycle
            .iter()
            .map(LifecycleEvent::json_line)
            .collect()
    }

    /// Re-checks the robustness invariants from the recorded evidence:
    ///
    /// 1. every generated request reached exactly one typed terminal
    ///    outcome (no silent loss, no double accounting);
    /// 2. the lifecycle stream validates against the causal grammar,
    ///    and each request carries exactly one terminal event whose
    ///    kind matches its outcome;
    /// 3. observed queue depths never exceeded the configured limits;
    /// 4. dispatch retry chains stayed within the retry bound;
    /// 5. completions beat their deadlines and timeouts missed theirs.
    ///
    /// Returns human-readable violations; empty means the run upheld
    /// every invariant.
    pub fn verify_invariants(&self) -> Vec<String> {
        let mut v: Vec<String> = self.anomalies.clone();
        if self.counts.total() != self.records.len() {
            v.push(format!(
                "outcome tally {} != generated requests {}",
                self.counts.total(),
                self.records.len()
            ));
        }
        for violation in validate(&self.lifecycle) {
            v.push(format!("lifecycle: {violation}"));
        }
        let mut terminals = vec![0usize; self.records.len()];
        for e in &self.lifecycle {
            if e.stage.is_terminal() {
                if let Some(t) = terminals.get_mut(e.request.0) {
                    *t += 1;
                } else {
                    v.push(format!("lifecycle names unknown request {}", e.request));
                }
            }
        }
        for (r, &t) in self.records.iter().zip(&terminals) {
            if t != 1 {
                v.push(format!(
                    "request {} has {t} terminal lifecycle events (outcome {})",
                    r.id,
                    r.outcome.kind()
                ));
            }
        }
        for (c, (&seen, &limit)) in self
            .max_class_depth
            .iter()
            .zip(&self.queue_limits)
            .enumerate()
        {
            if seen > limit {
                v.push(format!(
                    "class {c} queue depth reached {seen}, limit {limit}"
                ));
            }
        }
        let total_limit: usize = self.queue_limits.iter().sum();
        if self.max_queue_depth > total_limit {
            v.push(format!(
                "total queue depth reached {}, limit {total_limit}",
                self.max_queue_depth
            ));
        }
        if self.max_dispatch_retries > self.retry_limit {
            v.push(format!(
                "dispatch retries reached {}, bound {}",
                self.max_dispatch_retries, self.retry_limit
            ));
        }
        for r in &self.records {
            match &r.outcome {
                ServeOutcome::Complete { latency_ms }
                    if *latency_ms > r.deadline_ms + DEADLINE_EPS =>
                {
                    v.push(format!(
                        "request {} completed late ({latency_ms:.3} ms > deadline {:.3} ms) but was not marked timed out",
                        r.id, r.deadline_ms
                    ));
                }
                ServeOutcome::TimedOut {
                    latency_ms,
                    deadline_ms,
                } if *latency_ms <= *deadline_ms + DEADLINE_EPS => {
                    v.push(format!(
                        "request {} marked timed out but met its deadline",
                        r.id
                    ));
                }
                _ => {}
            }
        }
        v
    }
}

/// Outcome of executing one dispatched batch group.
enum GroupResult {
    Done { latency_ms: f64 },
    Failed { reason: String },
}

/// Records a terminal outcome exactly once; a second write is an
/// accounting anomaly, reported instead of silently overwriting.
fn set_outcome(
    outcomes: &mut [Option<ServeOutcome>],
    anomalies: &mut Vec<String>,
    id: usize,
    outcome: ServeOutcome,
) {
    match outcomes.get_mut(id) {
        Some(slot @ None) => *slot = Some(outcome),
        Some(Some(prev)) => anomalies.push(format!(
            "request {id} received a second terminal outcome {} after {}",
            outcome.kind(),
            prev.kind()
        )),
        None => anomalies.push(format!("terminal outcome for unknown request {id}")),
    }
}

/// A serving front-end bound to one SoC: the online planner (with its
/// window-plan cache shared across runs), the calibration, and the
/// dispatch window.
pub struct Server {
    online: OnlinePlanner,
    calibration: Calibration,
    window: usize,
}

impl Server {
    /// Builds a server over `soc` dispatching batches of up to
    /// `window` requests (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the planner cannot be constructed for
    /// `soc`.
    pub fn new(soc: &SocSpec, window: usize) -> Result<Self, PlanError> {
        let window = window.max(1);
        let online = OnlinePlanner::new(Planner::new(soc)?, window);
        let mut calibration = Calibration::new(soc);
        // Measured calibration pass: execute each zoo model alone once
        // and replace the roofline solo estimate with the simulator's
        // makespan, so the deadlines admission derives are achievable
        // by a solo run. This also pre-warms the window-plan cache
        // with every single-model window.
        for id in ModelId::ALL {
            let planned = online.plan_incremental(&[id.graph()])?;
            let exec = planned.execute(soc)?;
            calibration.refine_solo(id, exec.makespan_ms);
        }
        Ok(Server {
            online,
            calibration,
            window,
        })
    }

    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    pub fn window(&self) -> usize {
        self.window
    }

    /// Plays one seeded arrival stream through the serving loop.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] only for structural failures the retry
    /// loop cannot absorb (e.g. the simulator rejecting a lowered
    /// graph); load-induced failures are typed outcomes, not errors.
    pub fn run(&self, cfg: &ServeConfig) -> Result<ServeReport, PlanError> {
        let arrivals = generate_arrivals(cfg.seed, cfg.qps, cfg.requests);
        let trace = TraceId::of_names(arrivals.iter().map(|a| a.model.name()));
        let mut admission = AdmissionControl::new(&self.calibration, self.window, cfg.slo_budget);
        let queue = AdmitQueue::new(admission.limits());
        let lifecycle = LifecycleLog::new();
        let mut outcomes: Vec<Option<ServeOutcome>> = vec![None; arrivals.len()];
        let mut anomalies: Vec<String> = Vec::new();

        let mut idle_at = 0.0f64;
        let mut next = 0usize;
        let mut dispatches = 0usize;
        let mut max_dispatch_retries = 0usize;

        while next < arrivals.len() || !queue.is_empty() {
            // Admit everything that arrived while the executor was
            // busy, at each request's own arrival instant.
            while next < arrivals.len() && arrivals[next].arrival_ms <= idle_at {
                self.admit(
                    &arrivals[next],
                    idle_at,
                    &mut admission,
                    &queue,
                    trace,
                    &lifecycle,
                    &mut outcomes,
                    &mut anomalies,
                );
                next += 1;
            }
            if queue.is_empty() {
                let Some(a) = arrivals.get(next) else { break };
                // Idle: jump the clock to the next arrival.
                idle_at = a.arrival_ms;
                continue;
            }
            let now = idle_at;
            // Shed before cutting the batch: evict queued requests
            // whose remaining slack no longer covers their solo path.
            for q in queue.shed_expired(now) {
                lifecycle.record(
                    trace,
                    RequestId(q.id),
                    now,
                    LifecycleStage::Shed {
                        reason: "slack_below_solo".to_owned(),
                    },
                );
                set_outcome(
                    &mut outcomes,
                    &mut anomalies,
                    q.id,
                    ServeOutcome::Shed {
                        waited_ms: now - q.arrival_ms,
                    },
                );
            }
            let batch = queue.pop_batch(self.window);
            if batch.is_empty() {
                continue;
            }
            dispatches += 1;
            idle_at = self.dispatch(
                &batch,
                now,
                cfg,
                dispatches,
                trace,
                &lifecycle,
                &mut outcomes,
                &mut anomalies,
                &mut max_dispatch_retries,
            )?;
        }

        let (max_queue_depth, max_class_depth) = queue.high_water();
        let records: Vec<RequestRecord> = arrivals
            .iter()
            .zip(outcomes)
            .map(|(a, o)| {
                let outcome = match o {
                    Some(o) => o,
                    None => {
                        anomalies.push(format!("request {} has no terminal outcome", a.id));
                        ServeOutcome::Degraded {
                            reason: "unaccounted".to_owned(),
                        }
                    }
                };
                RequestRecord {
                    id: a.id,
                    model: a.model,
                    class: self.calibration.class(a.model),
                    arrival_ms: a.arrival_ms,
                    solo_ms: self.calibration.solo_ms(a.model),
                    deadline_ms: self.calibration.deadline_ms(a.model),
                    outcome,
                }
            })
            .collect();
        let counts = OutcomeCounts::tally(&records);
        let served: Vec<f64> = records
            .iter()
            .filter_map(|r| match &r.outcome {
                ServeOutcome::Complete { latency_ms }
                | ServeOutcome::TimedOut { latency_ms, .. } => Some(*latency_ms),
                _ => None,
            })
            .collect();
        let slo_entries: Vec<SloEntry> = records
            .iter()
            .filter_map(|r| match &r.outcome {
                ServeOutcome::Rejected { .. } => None,
                ServeOutcome::Complete { latency_ms }
                | ServeOutcome::TimedOut { latency_ms, .. } => Some(SloEntry {
                    class: r.class,
                    latency_ms: Some(*latency_ms),
                    deadline_ms: Some(r.deadline_ms),
                }),
                ServeOutcome::Degraded { .. } | ServeOutcome::Shed { .. } => Some(SloEntry {
                    class: r.class,
                    latency_ms: None,
                    deadline_ms: Some(r.deadline_ms),
                }),
            })
            .collect();
        let events = lifecycle.records();
        let horizon_ms = events
            .iter()
            .map(|e| e.at_ms)
            .fold(0.0f64, f64::max)
            .max(arrivals.last().map_or(0.0, |a| a.arrival_ms));
        let served_per_sec = if horizon_ms > 0.0 {
            served.len() as f64 / (horizon_ms / 1000.0)
        } else {
            0.0
        };
        Ok(ServeReport {
            qps: cfg.qps,
            seed: cfg.seed,
            chaos: cfg.chaos,
            window: self.window,
            trace,
            counts,
            latency: LatencyProfile::compute(&served),
            slo: SloSummary::compute(&slo_entries, cfg.slo_budget),
            queue_limits: queue.limits(),
            max_queue_depth,
            max_class_depth,
            max_dispatch_retries,
            retry_limit: cfg.policy.max_retries,
            dispatches,
            horizon_ms,
            served_per_sec,
            lifecycle: events,
            anomalies,
            records,
        })
    }

    /// Admission decision for one arrival, at its arrival instant.
    /// Checks run cheapest-structural first: depth limit, then
    /// deadline feasibility against the backlog estimate, then the
    /// class token bucket.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        a: &Arrival,
        idle_at: f64,
        admission: &mut AdmissionControl,
        queue: &AdmitQueue,
        trace: TraceId,
        lifecycle: &LifecycleLog,
        outcomes: &mut [Option<ServeOutcome>],
        anomalies: &mut Vec<String>,
    ) {
        let now = a.arrival_ms;
        let class = self.calibration.class(a.model);
        let solo = self.calibration.solo_ms(a.model);
        let deadline = self.calibration.deadline_ms(a.model);
        let reject = |reason: RejectReason,
                      outcomes: &mut [Option<ServeOutcome>],
                      anomalies: &mut Vec<String>| {
            lifecycle.record(
                trace,
                RequestId(a.id),
                now,
                LifecycleStage::Reject {
                    reason: reason.name().to_owned(),
                },
            );
            set_outcome(outcomes, anomalies, a.id, ServeOutcome::Rejected { reason });
        };
        if queue.class_depth(class) >= queue.limits()[class_index(class)] {
            reject(RejectReason::QueueFull, outcomes, anomalies);
            return;
        }
        let busy_wait = (idle_at - now).max(0.0);
        let predicted = busy_wait + queue.backlog_solo_ms() + solo;
        if predicted > deadline {
            reject(RejectReason::DeadlineInfeasible, outcomes, anomalies);
            return;
        }
        if !admission.try_take_token(class, now) {
            reject(RejectReason::Shedding, outcomes, anomalies);
            return;
        }
        match queue.try_admit(QueuedRequest {
            id: a.id,
            model: a.model,
            class,
            arrival_ms: now,
            solo_ms: solo,
            deadline_ms: deadline,
        }) {
            Ok(()) => {
                lifecycle.record(trace, RequestId(a.id), now, LifecycleStage::Admit);
            }
            Err(_) => reject(RejectReason::QueueFull, outcomes, anomalies),
        }
    }

    /// Executes one batch at `start0`, retrying whole-dispatch
    /// failures on the recovery backoff schedule up to the policy's
    /// retry bound. Returns the instant the executor becomes idle.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        batch: &[QueuedRequest],
        start0: f64,
        cfg: &ServeConfig,
        dispatch_idx: usize,
        trace: TraceId,
        lifecycle: &LifecycleLog,
        outcomes: &mut [Option<ServeOutcome>],
        anomalies: &mut Vec<String>,
        max_dispatch_retries: &mut usize,
    ) -> Result<f64, PlanError> {
        let ids: Vec<ModelId> = batch.iter().map(|q| q.model).collect();
        let groups = coalesce(&ids, cfg.max_batch);
        let graphs = graphs_for_groups(&groups);
        for q in batch {
            lifecycle.record(trace, RequestId(q.id), start0, LifecycleStage::Plan);
            lifecycle.record(
                trace,
                RequestId(q.id),
                start0,
                LifecycleStage::Window {
                    window: dispatch_idx,
                },
            );
        }
        let mut attempt = 0usize;
        let mut start = start0;
        loop {
            let executed = if cfg.chaos {
                self.execute_chaos(&graphs, cfg, dispatch_idx)
            } else {
                self.execute_planned(&graphs)
            };
            match executed {
                Ok((results, busy_ms)) => {
                    let mut member = 0usize;
                    for (group, result) in groups.iter().zip(&results) {
                        for _ in 0..group.batch {
                            let q = &batch[member];
                            member += 1;
                            lifecycle.record(
                                trace,
                                RequestId(q.id),
                                start,
                                LifecycleStage::Execute,
                            );
                            match result {
                                GroupResult::Done { latency_ms } => {
                                    let finish = start + latency_ms;
                                    let e2e = finish - q.arrival_ms;
                                    lifecycle.record(
                                        trace,
                                        RequestId(q.id),
                                        finish,
                                        LifecycleStage::Complete { latency_ms: e2e },
                                    );
                                    let outcome = if e2e > q.deadline_ms + DEADLINE_EPS {
                                        ServeOutcome::TimedOut {
                                            latency_ms: e2e,
                                            deadline_ms: q.deadline_ms,
                                        }
                                    } else {
                                        ServeOutcome::Complete { latency_ms: e2e }
                                    };
                                    set_outcome(outcomes, anomalies, q.id, outcome);
                                }
                                GroupResult::Failed { reason } => {
                                    lifecycle.record(
                                        trace,
                                        RequestId(q.id),
                                        start + busy_ms,
                                        LifecycleStage::Degrade {
                                            reason: reason.clone(),
                                        },
                                    );
                                    set_outcome(
                                        outcomes,
                                        anomalies,
                                        q.id,
                                        ServeOutcome::Degraded {
                                            reason: reason.clone(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                    return Ok(start + busy_ms);
                }
                Err(e) if attempt < cfg.policy.max_retries => {
                    attempt += 1;
                    *max_dispatch_retries = (*max_dispatch_retries).max(attempt);
                    let delay = cfg.policy.backoff_ms(attempt);
                    for q in batch {
                        lifecycle.record(
                            trace,
                            RequestId(q.id),
                            start,
                            LifecycleStage::Recover { round: attempt },
                        );
                    }
                    let _ = e;
                    start += delay;
                }
                Err(e) => {
                    let reason = format!("dispatch_failed: {e}");
                    for q in batch {
                        lifecycle.record(
                            trace,
                            RequestId(q.id),
                            start,
                            LifecycleStage::Degrade {
                                reason: reason.clone(),
                            },
                        );
                        set_outcome(
                            outcomes,
                            anomalies,
                            q.id,
                            ServeOutcome::Degraded {
                                reason: reason.clone(),
                            },
                        );
                    }
                    return Ok(start);
                }
            }
        }
    }

    /// Fault-free execution: incremental window planning, then the
    /// contention simulator.
    fn execute_planned(
        &self,
        graphs: &[h2p_models::graph::ModelGraph],
    ) -> Result<(Vec<GroupResult>, f64), PlanError> {
        let planned = self.online.plan_incremental(graphs)?;
        let exec = planned.execute(self.online.planner().soc())?;
        let results = exec
            .request_latency_ms
            .iter()
            .map(|&l| GroupResult::Done { latency_ms: l })
            .collect();
        Ok((results, exec.makespan_ms))
    }

    /// Chaos execution: a seeded fault script per dispatch, run
    /// through the recovery machinery. Per-group completion latencies
    /// come from the recovery runner's own lifecycle records; groups
    /// the runner could not finish degrade with the typed outcome.
    fn execute_chaos(
        &self,
        graphs: &[h2p_models::graph::ModelGraph],
        cfg: &ServeConfig,
        dispatch_idx: usize,
    ) -> Result<(Vec<GroupResult>, f64), PlanError> {
        let planner = self.online.planner();
        let fault_seed = cfg
            .seed
            .wrapping_add((dispatch_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let faults = chaos_faults(planner.soc(), graphs.len(), fault_seed);
        let telemetry = planner.telemetry();
        telemetry.lifecycle.clear();
        let report = run_with_recovery(planner, graphs, &faults, &cfg.policy)?;
        let mut group_latency: Vec<Option<f64>> = vec![None; graphs.len()];
        for e in telemetry.lifecycle.records() {
            if let LifecycleStage::Complete { latency_ms } = e.stage {
                if let Some(slot) = group_latency.get_mut(e.request.0) {
                    *slot = Some(latency_ms);
                }
            }
        }
        let reason = match &report.outcome {
            RecoveryOutcome::Recovered => "recovery_incomplete".to_owned(),
            RecoveryOutcome::Degraded(e) => format!("{e}"),
        };
        let results = report
            .completed
            .iter()
            .zip(&group_latency)
            .map(|(&done, latency)| {
                if done {
                    GroupResult::Done {
                        latency_ms: latency.unwrap_or(report.elapsed_ms),
                    }
                } else {
                    GroupResult::Failed {
                        reason: reason.clone(),
                    }
                }
            })
            .collect();
        Ok((results, report.elapsed_ms.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(&SocSpec::kirin_990(), 4).expect("planner builds")
    }

    #[test]
    fn light_load_completes_everything_with_clean_invariants() {
        let srv = server();
        // Sparse enough that every request is served alone: no
        // busy-wait, so admission never has grounds to refuse.
        let cfg = ServeConfig {
            qps: 0.2,
            requests: 12,
            ..ServeConfig::default()
        };
        let report = srv.run(&cfg).expect("runs");
        assert_eq!(report.counts.total(), 12);
        assert_eq!(report.counts.rejected(), 0, "{:?}", report.counts);
        assert_eq!(
            report.counts.complete + report.counts.timed_out,
            12,
            "{:?}",
            report.counts
        );
        let violations = report.verify_invariants();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(report.latency.is_some());
        assert!(report.served_per_sec > 0.0);
    }

    #[test]
    fn overload_rejects_with_typed_reasons_and_stays_bounded() {
        let srv = server();
        let cfg = ServeConfig {
            qps: 5000.0,
            requests: 48,
            ..ServeConfig::default()
        };
        let report = srv.run(&cfg).expect("runs");
        assert_eq!(report.counts.total(), 48);
        assert!(
            report.counts.rejected() + report.counts.shed > 0,
            "overload must engage backpressure: {:?}",
            report.counts
        );
        let violations = report.verify_invariants();
        assert!(violations.is_empty(), "{violations:?}");
        // Queue depth stayed within the admission-derived limits.
        assert!(report.max_queue_depth <= report.queue_limits.iter().sum::<usize>());
    }

    #[test]
    fn runs_are_bit_identical_at_fixed_seed() {
        let srv = server();
        let cfg = ServeConfig {
            qps: 300.0,
            requests: 24,
            ..ServeConfig::default()
        };
        let a = srv.run(&cfg).expect("runs");
        let b = srv.run(&cfg).expect("runs");
        assert_eq!(a.records, b.records);
        assert_eq!(a.json_event_lines(), b.json_event_lines());
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn chaos_runs_keep_every_outcome_typed() {
        let srv = server();
        let cfg = ServeConfig {
            qps: 100.0,
            requests: 16,
            chaos: true,
            ..ServeConfig::default()
        };
        let report = srv.run(&cfg).expect("runs");
        assert_eq!(report.counts.total(), 16);
        let violations = report.verify_invariants();
        assert!(violations.is_empty(), "{violations:?}");
        // Chaos must not manufacture untyped losses: every request is
        // complete, timed out, degraded, rejected, or shed.
        assert_eq!(
            report.counts.complete
                + report.counts.timed_out
                + report.counts.degraded
                + report.counts.rejected()
                + report.counts.shed,
            16
        );
    }
}
