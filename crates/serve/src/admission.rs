//! Admission control derived from calibration-time capacity estimates.
//!
//! At startup the server calibrates against the model zoo: every
//! model's solo (zero-contention) latency is the minimum over
//! processors of the roofline cost model's whole-graph estimate. From
//! those solos, per-class service-time profiles
//! ([`LatencyProfile`]) and a baseline SLO feasibility summary
//! ([`SloSummary`] over entries whose latency is the solo time and
//! whose deadline is the class SLO envelope) yield the two admission
//! knobs:
//!
//! * **Token buckets** — class `c` refills at `1 / p50_c` tokens per
//!   ms, the rate at which the SoC could serve class `c` even if it
//!   did nothing else. Offered load beyond that rate is turned away
//!   with [`RejectReason::Shedding`] before it can build unbounded
//!   queue.
//! * **Queue depth limits** — a class whose SLO envelope is
//!   `slo_multiplier(c) × solo` can tolerate a queue wait of at most
//!   `(multiplier − 1) × solo`, i.e. `multiplier − 1` service times;
//!   scaled by the dispatch window (the drain quantum) that gives
//!   `limit_c = max(2, (multiplier − 1) × window)`. A class whose
//!   calibration summary already burns its error budget at solo
//!   latencies (`burn_rate > 1`) gets the floor limit — queueing it
//!   deeper could never meet the SLO anyway.
//!
//! [`RejectReason`]: crate::RejectReason

use h2p_models::cost::CostModel;
use h2p_models::zoo::ModelId;
use h2p_simulator::processor::ProcessorId;
use h2p_simulator::soc::SocSpec;
use h2p_telemetry::analytics::{LatencyProfile, SloEntry, SloSummary};
use h2p_telemetry::lifecycle::QosClass;

use crate::{class_index, qos_class, slo_multiplier};

/// Per-model solo latency estimates over the zoo, computed once per
/// SoC from the roofline cost model.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Solo latency per model, parallel to [`ModelId::ALL`].
    solo_ms: Vec<f64>,
    /// QoS class per model, parallel to [`ModelId::ALL`].
    class: Vec<QosClass>,
}

impl Calibration {
    /// Calibrates against `soc`: each model's solo latency is the
    /// fastest single-processor placement the cost model admits
    /// (processors that cannot run some operator are skipped).
    pub fn new(soc: &SocSpec) -> Self {
        let cost = CostModel::new(soc);
        let mut solo_ms = Vec::with_capacity(ModelId::ALL.len());
        let mut class = Vec::with_capacity(ModelId::ALL.len());
        for id in ModelId::ALL {
            let graph = id.graph();
            let best = (0..soc.processors.len())
                .filter_map(|p| cost.model_latency_ms(&graph, ProcessorId(p)))
                .fold(f64::INFINITY, f64::min);
            // Every SoC has a big CPU cluster that supports all
            // operators, so `best` is finite; the fallback keeps the
            // math total anyway.
            solo_ms.push(if best.is_finite() { best } else { 1.0 });
            class.push(qos_class(graph.total_flops()));
        }
        Calibration { solo_ms, class }
    }

    /// Replaces `model`'s solo estimate with a measured value (e.g. a
    /// solo execution makespan from the simulator), keeping its class.
    /// Deadlines derived from measured solos are achievable by
    /// construction; the roofline estimate ignores pipeline fill and
    /// fan-out overhead and can undershoot. Non-finite or non-positive
    /// measurements are ignored.
    pub fn refine_solo(&mut self, model: ModelId, measured_ms: f64) {
        if let Some(i) = ModelId::ALL.iter().position(|&m| m == model) {
            if measured_ms.is_finite() && measured_ms > 0.0 {
                self.solo_ms[i] = measured_ms;
            }
        }
    }

    /// Solo latency estimate for `model`, ms.
    pub fn solo_ms(&self, model: ModelId) -> f64 {
        ModelId::ALL
            .iter()
            .position(|&m| m == model)
            .map_or(1.0, |i| self.solo_ms[i])
    }

    /// QoS class of `model`, by compute size.
    pub fn class(&self, model: ModelId) -> QosClass {
        ModelId::ALL
            .iter()
            .position(|&m| m == model)
            .map_or(QosClass::Standard, |i| self.class[i])
    }

    /// Deadline for one request of `model`, relative to its arrival:
    /// the class SLO envelope over the solo estimate.
    pub fn deadline_ms(&self, model: ModelId) -> f64 {
        slo_multiplier(self.class(model)) * self.solo_ms(model)
    }

    /// Median solo service time per class, in [`QosClass::ALL`] order.
    /// A class with no zoo models falls back to the overall median.
    pub fn class_p50_ms(&self) -> [f64; 3] {
        let overall = LatencyProfile::compute(&self.solo_ms).map_or(1.0, |p| p.p50_ms);
        let mut out = [overall; 3];
        for (slot, qc) in out.iter_mut().zip(QosClass::ALL) {
            let mine: Vec<f64> = self
                .solo_ms
                .iter()
                .zip(&self.class)
                .filter(|(_, c)| **c == qc)
                .map(|(s, _)| *s)
                .collect();
            if let Some(p) = LatencyProfile::compute(&mine) {
                *slot = p.p50_ms;
            }
        }
        out
    }

    /// Baseline SLO summary at calibration: one entry per zoo model
    /// with its solo latency against its class envelope. A class
    /// already burning budget here cannot absorb any queueing delay.
    pub fn slo_baseline(&self, budget: f64) -> Vec<SloSummary> {
        let entries: Vec<SloEntry> = self
            .solo_ms
            .iter()
            .zip(&self.class)
            .map(|(&solo, &class)| SloEntry {
                class,
                latency_ms: Some(solo),
                deadline_ms: Some(slo_multiplier(class) * solo),
            })
            .collect();
        SloSummary::compute(&entries, budget)
    }
}

/// One class's token bucket: refills continuously on the virtual
/// clock, capped at `burst`.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    rate_per_ms: f64,
    burst: f64,
    tokens: f64,
    last_ms: f64,
}

impl TokenBucket {
    fn refill(&mut self, now_ms: f64) {
        if now_ms > self.last_ms {
            self.tokens =
                (self.tokens + (now_ms - self.last_ms) * self.rate_per_ms).min(self.burst);
            self.last_ms = now_ms;
        }
    }

    fn try_take(&mut self, now_ms: f64) -> bool {
        self.refill(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The admission policy: per-class token buckets plus the derived
/// queue depth limits (consumed by [`crate::AdmitQueue`]).
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    buckets: [TokenBucket; 3],
    limits: [usize; 3],
    class_p50_ms: [f64; 3],
}

impl AdmissionControl {
    /// Derives the policy from a calibration, the dispatch window
    /// (batch drain quantum), and the SLO error budget.
    pub fn new(cal: &Calibration, window: usize, budget: f64) -> Self {
        let class_p50_ms = cal.class_p50_ms();
        let baseline = cal.slo_baseline(budget);
        let mut limits = [2usize; 3];
        let mut buckets = [TokenBucket {
            rate_per_ms: 1.0,
            burst: 1.0,
            tokens: 1.0,
            last_ms: 0.0,
        }; 3];
        for (i, qc) in QosClass::ALL.iter().enumerate() {
            let infeasible = baseline.iter().any(|s| s.class == *qc && s.burn_rate > 1.0);
            let slack_services = (slo_multiplier(*qc) - 1.0).max(0.0);
            limits[i] = if infeasible {
                2
            } else {
                ((slack_services * window as f64) as usize).max(2)
            };
            let rate = 1.0 / class_p50_ms[i].max(1e-9);
            buckets[i] = TokenBucket {
                rate_per_ms: rate,
                burst: limits[i] as f64,
                tokens: limits[i] as f64,
                last_ms: 0.0,
            };
        }
        AdmissionControl {
            buckets,
            limits,
            class_p50_ms,
        }
    }

    /// Per-class queue depth limits, in [`QosClass::ALL`] order.
    pub fn limits(&self) -> [usize; 3] {
        self.limits
    }

    /// Median calibration service time per class.
    pub fn class_p50_ms(&self) -> [f64; 3] {
        self.class_p50_ms
    }

    /// Takes one admission token for `class` at `now_ms`. `false`
    /// means the class's offered rate exceeds its sustainable service
    /// rate — the caller rejects with [`crate::RejectReason::Shedding`].
    pub fn try_take_token(&mut self, class: QosClass, now_ms: f64) -> bool {
        self.buckets[class_index(class)].try_take(now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_orders_solo_times_by_model_size() {
        let soc = SocSpec::kirin_990();
        let cal = Calibration::new(&soc);
        // A heavyweight model takes longer solo than a lightweight one.
        assert!(cal.solo_ms(ModelId::Vgg16) > cal.solo_ms(ModelId::SqueezeNet));
        assert!(cal.solo_ms(ModelId::SqueezeNet) > 0.0);
        // Deadlines scale the solo by the class envelope.
        let d = cal.deadline_ms(ModelId::SqueezeNet);
        let solo = cal.solo_ms(ModelId::SqueezeNet);
        assert!((d / solo - slo_multiplier(cal.class(ModelId::SqueezeNet))).abs() < 1e-9);
    }

    #[test]
    fn admission_limits_follow_the_slo_envelope() {
        let soc = SocSpec::kirin_990();
        let cal = Calibration::new(&soc);
        let ac = AdmissionControl::new(&cal, 4, SloSummary::DEFAULT_BUDGET);
        let limits = ac.limits();
        // Looser envelopes tolerate deeper queues: batch >= standard
        // >= interactive, and every limit respects the floor of 2.
        assert!(limits[2] >= limits[1] && limits[1] >= limits[0]);
        assert!(limits.iter().all(|&l| l >= 2));
        // Baseline calibration meets its own envelopes (no burn).
        assert!(cal
            .slo_baseline(SloSummary::DEFAULT_BUDGET)
            .iter()
            .all(|s| s.misses == 0));
    }

    #[test]
    fn token_bucket_throttles_then_refills() {
        let soc = SocSpec::kirin_990();
        let cal = Calibration::new(&soc);
        let mut ac = AdmissionControl::new(&cal, 4, SloSummary::DEFAULT_BUDGET);
        let p50 = ac.class_p50_ms()[0];
        // Drain the interactive burst at t=0.
        let mut taken = 0;
        while ac.try_take_token(QosClass::Interactive, 0.0) {
            taken += 1;
            assert!(taken < 10_000, "bucket never empties");
        }
        assert!(taken >= 2);
        assert!(!ac.try_take_token(QosClass::Interactive, 0.0));
        // After one service time the bucket has earned a token back.
        assert!(ac.try_take_token(QosClass::Interactive, p50 * 1.01));
    }
}
