//! The admission queue: bounded per-QoS-class depths, arrival-order
//! dispatch, and deadline-aware shedding.
//!
//! All state lives behind one [`hetero2pipe::sync::Mutex`], so under
//! `cfg(feature = "model-check")` every operation is a yield point of
//! the controlled scheduler and the `h2p-check` `serve_admit_shed`
//! model can exhaustively interleave a concurrent admitter against a
//! concurrent shedder. The serving loop itself is single-threaded; the
//! model check proves the queue's accounting invariants (depth never
//! exceeds its limit, every admitted entry leaves exactly once, the
//! per-class counters always sum to the entry count) hold under *any*
//! interleaving, not just the one the loop happens to produce.

use std::sync::PoisonError;

use h2p_models::zoo::ModelId;
use h2p_telemetry::lifecycle::QosClass;
use hetero2pipe::sync::Mutex;

use crate::class_index;

/// One admitted, queued request awaiting dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Stable request id (arrival index).
    pub id: usize,
    pub model: ModelId,
    pub class: QosClass,
    /// Arrival instant, ms.
    pub arrival_ms: f64,
    /// Solo (zero-contention) critical path, ms — the calibration
    /// estimate shedding compares remaining slack against.
    pub solo_ms: f64,
    /// Deadline relative to arrival, ms.
    pub deadline_ms: f64,
}

impl QueuedRequest {
    /// Remaining slack at `now`: time left until the absolute deadline.
    pub fn slack_ms(&self, now_ms: f64) -> f64 {
        self.arrival_ms + self.deadline_ms - now_ms
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Queued entries in arrival order.
    entries: Vec<QueuedRequest>,
    /// Current depth per class, always `== entries` partitioned.
    depth: [usize; 3],
    /// High-water marks for the bounded-depth invariant report.
    max_total: usize,
    max_class: [usize; 3],
}

/// Bounded multi-class admission queue. `limits` caps each class's
/// depth; [`AdmitQueue::try_admit`] refuses (returning the request to
/// the caller) rather than ever growing past a limit.
#[derive(Debug)]
pub struct AdmitQueue {
    limits: [usize; 3],
    inner: Mutex<Inner>,
}

impl AdmitQueue {
    pub fn new(limits: [usize; 3]) -> Self {
        AdmitQueue {
            limits,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Per-class depth limits, in [`QosClass::ALL`] order.
    pub fn limits(&self) -> [usize; 3] {
        self.limits
    }

    fn lock(&self) -> impl std::ops::DerefMut<Target = Inner> + '_ {
        // The queue holds plain data; a panic while the lock was held
        // cannot leave it logically corrupt, so poisoning is cleared.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current depth of one class.
    pub fn class_depth(&self, class: QosClass) -> usize {
        self.lock().depth[class_index(class)]
    }

    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of queued solo times — the backlog estimate admission uses
    /// to predict whether a new request could still meet its deadline.
    pub fn backlog_solo_ms(&self) -> f64 {
        self.lock().entries.iter().map(|q| q.solo_ms).sum()
    }

    /// Admits `req` if its class has depth headroom; otherwise returns
    /// it to the caller (the caller records the typed rejection — the
    /// queue never drops anything silently).
    pub fn try_admit(&self, req: QueuedRequest) -> Result<(), QueuedRequest> {
        let mut inner = self.lock();
        let c = class_index(req.class);
        if inner.depth[c] >= self.limits[c] {
            return Err(req);
        }
        inner.depth[c] += 1;
        inner.entries.push(req);
        let total = inner.entries.len();
        inner.max_total = inner.max_total.max(total);
        inner.max_class[c] = inner.max_class[c].max(inner.depth[c]);
        debug_assert!(inner.depth[c] <= self.limits[c]);
        Ok(())
    }

    /// Evicts every queued request whose remaining slack at `now_ms`
    /// is below its solo critical path — it could not finish on time
    /// even if dispatched alone, immediately. Returns the evicted
    /// requests oldest-lowest-class first (batch before standard
    /// before interactive, arrival order within a class), the order
    /// their `shed` lifecycle events are recorded in.
    pub fn shed_expired(&self, now_ms: f64) -> Vec<QueuedRequest> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        let mut shed = Vec::new();
        for class in QosClass::ALL.iter().rev() {
            let c = class_index(*class);
            let mut kept = Vec::with_capacity(inner.entries.len());
            for q in inner.entries.drain(..) {
                if q.class == *class && q.slack_ms(now_ms) < q.solo_ms {
                    inner.depth[c] -= 1;
                    shed.push(q);
                } else {
                    kept.push(q);
                }
            }
            inner.entries = kept;
        }
        shed
    }

    /// Pops up to `max` requests in arrival order for dispatch.
    pub fn pop_batch(&self, max: usize) -> Vec<QueuedRequest> {
        let mut inner = self.lock();
        let take = max.min(inner.entries.len());
        let batch: Vec<QueuedRequest> = inner.entries.drain(..take).collect();
        for q in &batch {
            inner.depth[class_index(q.class)] -= 1;
        }
        batch
    }

    /// High-water marks observed so far: `(max total depth, max depth
    /// per class)`.
    pub fn high_water(&self) -> (usize, [usize; 3]) {
        let inner = self.lock();
        (inner.max_total, inner.max_class)
    }

    /// Internal-consistency check for the model checker: the per-class
    /// counters must partition the entry list and respect the limits.
    /// Returns a description of the first inconsistency, if any.
    pub fn check_consistency(&self) -> Option<String> {
        let inner = self.lock();
        let mut counted = [0usize; 3];
        for q in &inner.entries {
            counted[class_index(q.class)] += 1;
        }
        if counted != inner.depth {
            return Some(format!(
                "class counters {:?} disagree with entries {counted:?}",
                inner.depth
            ));
        }
        for (c, (&d, &l)) in inner.depth.iter().zip(&self.limits).enumerate() {
            if d > l {
                return Some(format!("class {c} depth {d} exceeds limit {l}"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, class: QosClass, arrival: f64, solo: f64, deadline: f64) -> QueuedRequest {
        QueuedRequest {
            id,
            model: ModelId::SqueezeNet,
            class,
            arrival_ms: arrival,
            solo_ms: solo,
            deadline_ms: deadline,
        }
    }

    #[test]
    fn admission_respects_per_class_limits() {
        let q = AdmitQueue::new([1, 2, 1]);
        assert!(q
            .try_admit(req(0, QosClass::Interactive, 0.0, 1.0, 10.0))
            .is_ok());
        // Interactive is full; standard still has room.
        let back = q
            .try_admit(req(1, QosClass::Interactive, 1.0, 1.0, 10.0))
            .expect_err("full");
        assert_eq!(back.id, 1);
        assert!(q
            .try_admit(req(2, QosClass::Standard, 2.0, 1.0, 10.0))
            .is_ok());
        assert_eq!(q.len(), 2);
        assert_eq!(q.class_depth(QosClass::Interactive), 1);
        assert!(q.check_consistency().is_none());
        let (max_total, max_class) = q.high_water();
        assert_eq!(max_total, 2);
        assert_eq!(max_class, [1, 1, 0]);
    }

    #[test]
    fn shedding_evicts_slackless_requests_lowest_class_first() {
        let q = AdmitQueue::new([4, 4, 4]);
        // Interactive with no slack left, batch with no slack, standard healthy.
        q.try_admit(req(0, QosClass::Interactive, 0.0, 5.0, 6.0))
            .unwrap();
        q.try_admit(req(1, QosClass::Batch, 0.0, 5.0, 6.0)).unwrap();
        q.try_admit(req(2, QosClass::Standard, 0.0, 1.0, 100.0))
            .unwrap();
        q.try_admit(req(3, QosClass::Batch, 1.0, 5.0, 6.0)).unwrap();
        let shed = q.shed_expired(4.0);
        // slack(0) = 2 < 5, slack(1) = 2 < 5, slack(3) = 3 < 5; batch
        // evicted before interactive, oldest first.
        assert_eq!(shed.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3, 0]);
        assert_eq!(q.len(), 1);
        assert!(q.check_consistency().is_none());
        // Dispatch order is arrival order.
        let batch = q.pop_batch(8);
        assert_eq!(batch[0].id, 2);
        assert!(q.is_empty());
    }
}
