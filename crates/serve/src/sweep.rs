//! QPS sweeps: drive one server through a ladder of offered loads to
//! trace the saturation behaviour — p50/p99 latency, deadline-miss and
//! rejection rates as functions of offered QPS.
//!
//! The sweep reuses a single [`Server`], so the online planner's
//! window-plan cache warms on the first point and every later point
//! replans only windows it has not seen — the same amortisation the
//! serving loop itself relies on.

use hetero2pipe::error::PlanError;

use crate::server::{ServeConfig, ServeReport, Server};

/// One sweep point: the offered load and the full run report at it.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub qps: f64,
    pub report: ServeReport,
}

/// Runs `base` at `steps` offered loads linearly spaced over
/// `[lo, hi]` (inclusive; a single step runs at `lo`). Every point
/// uses the same seed, so the whole sweep is deterministic.
///
/// # Errors
///
/// Returns the first structural [`PlanError`] any point hits.
///
/// # Panics
///
/// Panics if `steps == 0`, `lo` is not positive finite, or `hi < lo`.
pub fn sweep(
    server: &Server,
    base: &ServeConfig,
    lo: f64,
    hi: f64,
    steps: usize,
) -> Result<Vec<SweepPoint>, PlanError> {
    assert!(steps > 0, "sweep needs at least one step");
    assert!(
        lo > 0.0 && lo.is_finite() && hi >= lo && hi.is_finite(),
        "sweep range must satisfy 0 < lo <= hi, got {lo}..{hi}"
    );
    let mut points = Vec::with_capacity(steps);
    for i in 0..steps {
        let qps = if steps == 1 {
            lo
        } else {
            lo + (hi - lo) * i as f64 / (steps - 1) as f64
        };
        let cfg = ServeConfig {
            qps,
            ..base.clone()
        };
        points.push(SweepPoint {
            qps,
            report: server.run(&cfg)?,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_simulator::soc::SocSpec;

    #[test]
    fn sweep_spaces_points_and_saturates_at_the_top() {
        let server = Server::new(&SocSpec::kirin_990(), 4).expect("planner builds");
        let base = ServeConfig {
            requests: 24,
            ..ServeConfig::default()
        };
        let points = sweep(&server, &base, 10.0, 4000.0, 4).expect("sweep runs");
        assert_eq!(points.len(), 4);
        assert!((points[0].qps - 10.0).abs() < 1e-9);
        assert!((points[3].qps - 4000.0).abs() < 1e-9);
        for w in points.windows(2) {
            assert!(w[1].qps > w[0].qps);
        }
        // Every point upholds the invariants; the top of the ladder
        // engages backpressure.
        for p in &points {
            let v = p.report.verify_invariants();
            assert!(v.is_empty(), "qps {}: {v:?}", p.qps);
        }
        let top = &points[3].report.counts;
        assert!(top.rejected() + top.shed > 0, "{top:?}");
    }
}
