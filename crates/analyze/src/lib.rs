//! # h2p-analyze
//!
//! Static plan verifier for the Hetero²Pipe reproduction: pre-execution
//! analysis of pipeline plans and lowered task graphs, with typed
//! diagnostics and machine-readable JSON output.
//!
//! The suite has two verification layers:
//!
//! * **Static** (this crate, surfaced as `h2p lint`) — checks a plan
//!   *before* anything runs: layer coverage, slot/processor feasibility,
//!   memory budget, DAG sanity, contention-window invariants, and a
//!   bound analysis that brackets the claimed makespan with a
//!   synchronous lower bound and a worst-case contention upper bound.
//! * **Dynamic** (`h2p_simulator::audit`, surfaced as
//!   `h2p trace --audit`) — re-validates a finished trace against the
//!   engine's execution contracts.
//!
//! Entry points: [`lint_plan`] over the analyzer IR ([`PlanIr`]),
//! [`lint_tasks`] over a lowered `&[TaskSpec]` graph, and the
//! [`mutate`] corruption harness that backs `h2p lint --corrupt`.
//!
//! The crate sits below the planner in the dependency graph so that the
//! planner can gate on it in debug builds; the planner crate owns the
//! `PipelinePlan → PlanIr` conversion.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod checks;
pub mod diag;
pub mod ir;
pub mod mutate;
pub mod source;
pub mod tasks;

pub use checks::lint_plan;
pub use diag::{DiagCode, Diagnostic, Diagnostics, Severity};
pub use ir::{PlanIr, RequestIr, RunIr, StageIr};
pub use mutate::{apply, Mutation, SourceMutation};
pub use source::{lint_source, lint_workspace};
pub use tasks::{lint_tasks, lint_tasks_available};
