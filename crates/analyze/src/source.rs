//! Source-level determinism lints (`h2p lint --source`).
//!
//! A line-based static pass over the workspace's library sources that
//! flags constructs known to make plans or recovery decisions
//! nondeterministic:
//!
//! * **H2P010** — iteration over a `HashMap`/`HashSet`: hash order is
//!   randomized per process, so anything the loop feeds can differ
//!   between runs.
//! * **H2P011** — wall-clock reads (`Instant::now`, `SystemTime::…`) in
//!   planning paths; plans must be pure functions of their inputs.
//!   Telemetry and bench crates are exempt (measuring time is their
//!   job).
//! * **H2P012** — a float reduction (`sum`/`product`/`fold`/`reduce`)
//!   driven by an unordered hash iteration: float addition is not
//!   associative, so the result depends on iteration order. Takes
//!   precedence over H2P010 on the same line.
//! * **H2P013** — unseeded RNG (`thread_rng`, `from_entropy`,
//!   `rand::random`): unreplayable randomness in library code.
//!
//! Findings can be waived inline with an allowlist annotation that
//! **must** carry a justification:
//!
//! ```text
//! // h2p-lint: allow(H2P011) — phase timing is telemetry-only
//! ```
//!
//! placed on the offending line or the line directly above it. An
//! annotation without a justification is itself an error — the waiver
//! is the reviewable artifact, not a mute button.
//!
//! The pass is deliberately heuristic (no parser in the workspace): it
//! strips comments and string-literal bodies before matching, tracks
//! identifiers declared with hash-container types per file, and skips
//! each file's `#[cfg(test)]` tail. Entry points: [`lint_workspace`]
//! for the whole repo and [`lint_source`] for one file's text (the
//! unit-test and mutant surface).

use crate::diag::{DiagCode, Diagnostic, Diagnostics};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// Every needle below is assembled with `concat!` from split halves so
// the scanner's own source never contains a contiguous hazard token —
// otherwise `h2p lint --source` would flag the lint itself.
const HASH_MAP: &str = concat!("Hash", "Map");
const HASH_SET: &str = concat!("Hash", "Set");
const ANNOT_MARKER: &str = concat!("h2p-", "lint:");
const ALLOW_OPEN: &str = concat!("all", "ow(");
const WALL_CLOCK: &[&str] = &[concat!("Instant", "::now"), concat!("System", "Time::")];
const UNSEEDED_RNG: &[&str] = &[
    concat!("thread_", "rng("),
    concat!("from_", "entropy("),
    concat!("rand::", "random"),
];
const ITER_METHODS: &[&str] = &[
    concat!(".it", "er()"),
    concat!(".ke", "ys()"),
    concat!(".val", "ues()"),
    concat!(".dra", "in("),
    concat!(".into_", "iter()"),
];
const REDUCTIONS: &[&str] = &[
    concat!(".su", "m()"),
    concat!(".prod", "uct()"),
    concat!(".fo", "ld("),
    concat!(".red", "uce("),
];

/// Crates (by directory name under `crates/`) exempt from the
/// wall-clock lint: their whole purpose is measuring real time.
const WALL_CLOCK_EXEMPT: &[&str] = &["telemetry", "bench"];

/// One parsed `h2p-lint: allow(H2P0xx)` annotation.
struct Allow {
    /// Line index (0-based) the waiver applies to.
    target: usize,
    /// Source line the annotation itself sits on (1-based, for messages).
    at_line: usize,
    code: DiagCode,
    justified: bool,
}

/// Blanks comment text and string-literal bodies so hazard needles only
/// match real code. Keeps the line's length roughly stable (content is
/// replaced by spaces) so findings still quote a recognizable line.
fn sanitize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    let mut escaped = false;
    while let Some(c) = chars.next() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
                out.push('"');
                continue;
            }
            out.push(' ');
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            '\'' => {
                // Char literal (or lifetime — a lone quote). Swallow a
                // possible escaped/plain char followed by a closing
                // quote; otherwise treat as a lifetime tick.
                let mut clone = chars.clone();
                let body = clone.next();
                let close = if body == Some('\\') {
                    clone.next();
                    clone.next()
                } else {
                    clone.next()
                };
                if close == Some('\'') {
                    chars = clone;
                    out.push_str("' '");
                } else {
                    out.push('\'');
                }
            }
            '/' => {
                if chars.peek() == Some(&'/') {
                    break; // comment tail
                }
                out.push('/');
            }
            _ => out.push(c),
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extracts the identifier ending right before byte `end` (exclusive),
/// skipping trailing whitespace first.
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let head = line.get(..end)?.trim_end();
    let stop = head.rfind(|c: char| !is_ident_char(c)).map_or(0, |p| {
        p + head[p..].chars().next().map_or(1, char::len_utf8)
    });
    let ident = &head[stop..];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// Strips reference/lifetime/`mut` type prefixes so `m: &mut HashMap<…>`
/// still resolves to `m`: trailing `&`, `mut` and `'a` tokens are
/// removed from the text preceding the container name.
fn strip_type_prefix(before: &str) -> &str {
    let mut b = before.trim_end();
    loop {
        let t = b.trim_end();
        if let Some(s) = t.strip_suffix("mut") {
            if !s.chars().next_back().is_some_and(is_ident_char) {
                b = s;
                continue;
            }
        }
        if let Some(s) = t.strip_suffix('&') {
            b = s;
            continue;
        }
        // Lifetime token: `'a`
        if let Some(p) = t.rfind('\'') {
            let tail = &t[p + 1..];
            if !tail.is_empty() && tail.chars().all(is_ident_char) {
                b = &t[..p];
                continue;
            }
        }
        return t;
    }
}

/// Collects identifiers declared with a hash-container type in the
/// given (sanitized) lines: `name: HashMap<…>` (bindings, fields,
/// params) and `name = HashMap::new()`-style constructor bindings.
fn hash_idents(lines: &[String]) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in lines {
        for pat in [HASH_MAP, HASH_SET] {
            let mut from = 0;
            while let Some(rel) = line[from..].find(pat) {
                let pos = from + rel;
                from = pos + pat.len();
                // Word boundary on the left (don't match FooHashMap).
                if pos > 0 && line[..pos].chars().next_back().is_some_and(is_ident_char) {
                    continue;
                }
                let before = strip_type_prefix(&line[..pos]);
                let name = if before.ends_with(':') {
                    // `name: [&[mut]] HashMap<…>`
                    ident_ending_at(before, before.len() - 1)
                } else if before.ends_with('=') && !before.ends_with("==") {
                    // `name = HashMap::new()`
                    ident_ending_at(before, before.len() - 1)
                } else {
                    None
                };
                if let Some(n) = name {
                    if n != "mut" && n != "let" && n != "pub" {
                        idents.insert(n.to_owned());
                    }
                }
            }
        }
    }
    idents
}

/// True when `line` iterates one of the hash-typed identifiers:
/// `ident.iter()`-style method calls or a `for … in [&[mut ]]ident`
/// loop header.
fn iterates_hash(line: &str, idents: &BTreeSet<String>) -> bool {
    for ident in idents {
        for method in ITER_METHODS {
            let needle = format!("{ident}{method}");
            let mut from = 0;
            while let Some(rel) = line[from..].find(&needle) {
                let pos = from + rel;
                from = pos + needle.len();
                let bounded =
                    pos == 0 || !line[..pos].chars().next_back().is_some_and(is_ident_char);
                if bounded {
                    return true;
                }
            }
        }
        if let Some(for_pos) = line.find("for ") {
            if let Some(rel) = line[for_pos..].find(" in ") {
                let mut rest = line[for_pos + rel + 4..].trim_start();
                rest = rest.strip_prefix('&').unwrap_or(rest);
                rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                if rest.starts_with(ident.as_str())
                    && !rest[ident.len()..].starts_with(is_ident_char)
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Parses the `h2p-lint:` annotations in `lines` (raw, comments
/// intact). Returns the waivers plus diagnostics for annotations that
/// are malformed or missing their justification.
fn parse_annotations(label: &str, lines: &[&str]) -> (Vec<Allow>, Diagnostics) {
    let mut allows = Vec::new();
    let mut diags = Diagnostics::default();
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Doc comments only *document* the annotation syntax.
        if trimmed.starts_with("//!") || trimmed.starts_with("///") {
            continue;
        }
        let Some(mark) = raw.find(ANNOT_MARKER) else {
            continue;
        };
        let target = if raw.trim_start().starts_with("//") {
            // Comment-only line: the waiver applies to the next code
            // line (the annotation may wrap across comment lines).
            let mut t = i + 1;
            while t < lines.len() {
                let trimmed = lines[t].trim_start();
                if trimmed.is_empty() || trimmed.starts_with("//") {
                    t += 1;
                } else {
                    break;
                }
            }
            t
        } else {
            i // trailing comment waives its own line
        };
        let tail = &raw[mark + ANNOT_MARKER.len()..];
        let parsed = tail.trim_start().strip_prefix(ALLOW_OPEN).and_then(|t| {
            let close = t.find(')')?;
            let code = DiagCode::parse_code(&t[..close])?;
            Some((code, &t[close + 1..]))
        });
        let Some((code, after)) = parsed else {
            diags.push(Diagnostic::new(
                DiagCode::NondetIteration,
                format!(
                    "{label}:{}: malformed {ANNOT_MARKER} annotation \
                     (expected `{ANNOT_MARKER} {ALLOW_OPEN}H2P0xx) — why`): `{}`",
                    i + 1,
                    raw.trim()
                ),
            ));
            continue;
        };
        let justification = after
            .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
            .trim();
        let justified = !justification.is_empty();
        if !justified {
            diags.push(Diagnostic::new(
                code,
                format!(
                    "{label}:{}: allowlist annotation for {} lacks a justification \
                     — say why the waiver is sound",
                    i + 1,
                    code.code()
                ),
            ));
        }
        allows.push(Allow {
            target,
            at_line: i + 1,
            code,
            justified,
        });
    }
    (allows, diags)
}

/// Lints one file's text. `label` prefixes messages (usually the
/// repo-relative path), `crate_name` selects per-crate exemptions
/// (`telemetry`/`bench` skip the wall-clock lint).
pub fn lint_source(label: &str, crate_name: &str, text: &str) -> Diagnostics {
    let raw_lines: Vec<&str> = text.lines().collect();
    // Scan stops at the unit-test tail: test code may legitimately use
    // clocks and RNG.
    let test_start = raw_lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(raw_lines.len());
    let scanned = &raw_lines[..test_start];
    let sanitized: Vec<String> = scanned.iter().map(|l| sanitize(l)).collect();

    let (allows, mut diags) = parse_annotations(label, scanned);
    let idents = hash_idents(&sanitized);
    let wall_exempt = WALL_CLOCK_EXEMPT.contains(&crate_name);

    // An unjustified waiver still suppresses the underlying finding —
    // the missing-justification error (already pushed above) is the one
    // actionable report, and it fails the run on its own.
    let waived = |line_ix: usize, code: DiagCode| {
        allows.iter().any(|a| a.target == line_ix && a.code == code)
    };

    for (i, line) in sanitized.iter().enumerate() {
        let mut fired: Vec<(DiagCode, String)> = Vec::new();
        if UNSEEDED_RNG.iter().any(|p| line.contains(p)) {
            fired.push((
                DiagCode::UnseededRng,
                "unseeded RNG — seed it so runs replay".to_owned(),
            ));
        }
        if !wall_exempt && WALL_CLOCK.iter().any(|p| line.contains(p)) {
            fired.push((
                DiagCode::WallClock,
                "wall-clock read in a planning path".to_owned(),
            ));
        }
        if iterates_hash(line, &idents) {
            if REDUCTIONS.iter().any(|p| line.contains(p)) {
                // The reduction subsumes the plain iteration finding.
                fired.push((
                    DiagCode::UnorderedReduction,
                    "float reduction over an unordered hash iteration".to_owned(),
                ));
            } else {
                fired.push((
                    DiagCode::NondetIteration,
                    "iteration order of a hash container is nondeterministic".to_owned(),
                ));
            }
        }
        for (code, why) in fired {
            if waived(i, code) {
                continue;
            }
            diags.push(Diagnostic::new(
                code,
                format!("{label}:{}: {why}: `{}`", i + 1, raw_lines[i].trim()),
            ));
        }
    }

    // Waivers pointing at a line that fires nothing are stale — flag
    // them so annotations can't rot silently. (Unjustified ones were
    // already reported above.)
    for a in allows.iter().filter(|a| a.justified) {
        let target_fires = sanitized.get(a.target).is_some_and(|line| {
            match a.code {
                DiagCode::UnseededRng => UNSEEDED_RNG.iter().any(|p| line.contains(p)),
                DiagCode::WallClock => WALL_CLOCK.iter().any(|p| line.contains(p)),
                DiagCode::NondetIteration | DiagCode::UnorderedReduction => {
                    iterates_hash(line, &idents)
                }
                _ => true, // non-source codes: not ours to judge
            }
        });
        if !target_fires {
            diags.push(Diagnostic::new(
                a.code,
                format!(
                    "{label}:{}: stale allowlist annotation — {} does not fire on \
                     the waived line anymore",
                    a.at_line,
                    a.code.code()
                ),
            ));
        }
    }

    // One check family per lint class.
    for _ in 0..4 {
        diags.record_check();
    }
    diags
}

fn is_skipped_dir(name: &str) -> bool {
    matches!(name, "vendor" | "target" | "tests" | "benches" | ".git")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort(); // deterministic walk order
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if !is_skipped_dir(name) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The crate a workspace-relative path belongs to: `crates/<name>/…`
/// maps to `<name>`, everything else (the root `src/`) to `suite`.
fn crate_of(rel: &Path) -> &str {
    let mut parts = rel.iter().filter_map(|c| c.to_str());
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("suite"),
        _ => "suite",
    }
}

/// Lints every library source in the workspace rooted at `root`: the
/// root `src/` plus each `crates/*/src/`, skipping `vendor`, `target`,
/// `tests` and `benches` directories. Files are visited in sorted
/// order so output is stable.
pub fn lint_workspace(root: &Path) -> io::Result<Diagnostics> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            let member_src = member.join("src");
            if member_src.is_dir() {
                collect_rs(&member_src, &mut files)?;
            }
        }
    }
    let mut diags = Diagnostics::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let label = rel.display().to_string();
        let crate_name = crate_of(rel).to_owned();
        let text = fs::read_to_string(&path)?;
        diags.merge(lint_source(&label, &crate_name, &text));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test fixtures assemble hazard tokens with `concat!` purely so
    // this file stays clean under its own lint; the *strings fed to
    // `lint_source`* contain the contiguous hazards.

    fn codes(d: &Diagnostics) -> Vec<DiagCode> {
        d.diags.iter().map(|x| x.code).collect()
    }

    #[test]
    fn clean_file_is_clean() {
        let text = "pub fn add(a: u32, b: u32) -> u32 {\n    a + b\n}\n";
        let d = lint_source("x.rs", "core", text);
        assert!(d.is_clean(), "{d:?}");
        assert_eq!(d.checks, 4);
    }

    #[test]
    fn hash_iteration_fires_h2p010() {
        let text = concat!(
            "use std::collections::Hash",
            "Map;\n",
            "fn f(m: &Hash",
            "Map<u32, u32>) -> Vec<u32> {\n",
            "    let mut out = Vec::new();\n",
            "    for (k, _) in m { out.push(*k); }\n",
            "    out\n",
            "}\n",
        );
        let d = lint_source("x.rs", "core", text);
        assert_eq!(codes(&d), vec![DiagCode::NondetIteration], "{d:?}");
        assert!(d.diags[0].message.contains("x.rs:4"), "{d:?}");
    }

    #[test]
    fn method_iteration_and_self_fields_fire() {
        let text = concat!(
            "struct S { seen: Hash",
            "Set<u32> }\n",
            "impl S {\n",
            "    fn dump(&self) -> Vec<u32> {\n",
            "        self.seen.it",
            "er().copied().collect()\n",
            "    }\n",
            "}\n",
        );
        let d = lint_source("x.rs", "core", text);
        assert_eq!(codes(&d), vec![DiagCode::NondetIteration], "{d:?}");
    }

    #[test]
    fn wall_clock_fires_h2p011_except_in_telemetry() {
        let text = concat!("let t0 = std::time::Instant", "::now();\n");
        let d = lint_source("x.rs", "core", text);
        assert_eq!(codes(&d), vec![DiagCode::WallClock], "{d:?}");
        let t = lint_source("x.rs", "telemetry", text);
        assert!(t.is_clean(), "{t:?}");
        let b = lint_source("x.rs", "bench", text);
        assert!(b.is_clean(), "{b:?}");
    }

    #[test]
    fn hash_reduction_fires_h2p012_and_suppresses_h2p010() {
        let text = concat!(
            "let weights: Hash",
            "Map<u32, f64> = build();\n",
            "let total: f64 = weights.val",
            "ues().su",
            "m();\n",
        );
        let d = lint_source("x.rs", "core", text);
        assert_eq!(codes(&d), vec![DiagCode::UnorderedReduction], "{d:?}");
    }

    #[test]
    fn unseeded_rng_fires_h2p013() {
        let text = concat!("let mut rng = rand::thread_", "rng();\n");
        let d = lint_source("x.rs", "core", text);
        assert_eq!(codes(&d), vec![DiagCode::UnseededRng], "{d:?}");
    }

    #[test]
    fn justified_annotation_waives_preceding_and_same_line() {
        let preceding = concat!(
            "// h2p-",
            "lint: all",
            "ow(H2P011) — phase timing is telemetry-only\n",
            "let t0 = Instant",
            "::now();\n",
        );
        let d = lint_source("x.rs", "core", preceding);
        assert!(d.is_clean(), "{d:?}");
        let trailing = concat!(
            "let t0 = Instant",
            "::now(); ",
            "// h2p-",
            "lint: all",
            "ow(H2P011) — phase timing is telemetry-only\n",
        );
        let d = lint_source("x.rs", "core", trailing);
        assert!(d.is_clean(), "{d:?}");
    }

    #[test]
    fn unjustified_annotation_is_an_error() {
        let text = concat!(
            "// h2p-",
            "lint: all",
            "ow(H2P011)\n",
            "let t0 = Instant",
            "::now();\n",
        );
        let d = lint_source("x.rs", "core", text);
        assert_eq!(codes(&d), vec![DiagCode::WallClock], "{d:?}");
        assert!(
            d.diags[0].message.contains("lacks a justification"),
            "{d:?}"
        );
    }

    #[test]
    fn wrong_code_annotation_does_not_waive() {
        let text = concat!(
            "// h2p-",
            "lint: all",
            "ow(H2P013) — wrong code entirely\n",
            "let t0 = Instant",
            "::now();\n",
        );
        let d = lint_source("x.rs", "core", text);
        // The wall-clock finding still fires, and the H2P013 waiver is
        // reported stale (it waives nothing).
        assert_eq!(
            codes(&d),
            vec![DiagCode::WallClock, DiagCode::UnseededRng],
            "{d:?}"
        );
        assert!(d.diags[1].message.contains("stale"), "{d:?}");
    }

    #[test]
    fn malformed_annotation_is_an_error() {
        let text = concat!("// h2p-", "lint: suppress everything please\n");
        let d = lint_source("x.rs", "core", text);
        assert_eq!(d.diags.len(), 1, "{d:?}");
        assert!(d.diags[0].message.contains("malformed"), "{d:?}");
    }

    #[test]
    fn stale_annotation_is_an_error() {
        let text = concat!(
            "// h2p-",
            "lint: all",
            "ow(H2P011) — timing moved away\n",
            "let x = 1 + 1;\n",
        );
        let d = lint_source("x.rs", "core", text);
        assert_eq!(d.diags.len(), 1, "{d:?}");
        assert!(d.diags[0].message.contains("stale"), "{d:?}");
    }

    #[test]
    fn cfg_test_tail_is_skipped() {
        let text = concat!(
            "pub fn f() -> u32 { 1 }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let mut rng = rand::thread_",
            "rng(); }\n",
            "}\n",
        );
        let d = lint_source("x.rs", "core", text);
        assert!(d.is_clean(), "{d:?}");
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let text = concat!(
            "// mentions Instant",
            "::now in prose\n",
            "let s = \"Instant",
            "::now and thread_",
            "rng( in a string\";\n",
        );
        let d = lint_source("x.rs", "core", text);
        assert!(d.is_clean(), "{d:?}");
    }

    #[test]
    fn workspace_lint_runs_clean_on_this_repo() {
        // The repo root is two levels above this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let d = lint_workspace(&root).unwrap();
        let errs: Vec<&Diagnostic> = d
            .diags
            .iter()
            .filter(|x| x.severity >= crate::diag::Severity::Error)
            .collect();
        assert!(errs.is_empty(), "workspace must lint clean: {errs:#?}");
        assert!(d.checks > 40, "expected many files scanned: {}", d.checks);
    }
}
