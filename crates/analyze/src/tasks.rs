//! Static lint over lowered task graphs (`&[TaskSpec]`).
//!
//! Baseline schemes (MNN-serial, Band, DART) build task graphs directly
//! rather than going through a `PipelinePlan`, and the executor's
//! `LoweredPlan` holds one too. [`lint_tasks`] gives both the same
//! pre-execution verification surface the plan-level lint gives the
//! planner: processor indices valid, costs finite, dependencies
//! consistent with submission order, and footprints inside the ledger.

use h2p_simulator::engine::TaskSpec;
use h2p_simulator::soc::SocSpec;

use crate::diag::{DiagCode, Diagnostic, Diagnostics};

/// Lints a lowered task graph against `soc` without executing it.
pub fn lint_tasks(soc: &SocSpec, tasks: &[TaskSpec]) -> Diagnostics {
    let mut out = Diagnostics::default();

    out.record_check();
    if tasks.is_empty() {
        out.push(Diagnostic::new(
            DiagCode::EmptyPlan,
            "task graph contains no tasks",
        ));
        return out;
    }

    // Processor feasibility.
    out.record_check();
    let n_procs = soc.processors.len();
    for (i, t) in tasks.iter().enumerate() {
        if t.processor.index() >= n_procs {
            out.push(
                Diagnostic::new(
                    DiagCode::ProcFeasibility,
                    format!(
                        "task '{}' targets processor index {} but {} has {} processors",
                        t.label,
                        t.processor.index(),
                        soc.name,
                        n_procs
                    ),
                )
                .request(i),
            );
        }
    }

    // Finite, non-negative costs.
    out.record_check();
    for (i, t) in tasks.iter().enumerate() {
        for (what, v) in [
            ("solo time", t.solo_ms),
            ("intensity", t.intensity),
            ("sensitivity", t.sensitivity),
            ("bandwidth", t.bandwidth_gbps),
            ("release time", t.release_ms),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                out.push(
                    Diagnostic::new(
                        DiagCode::NonFiniteCost,
                        format!(
                            "task '{}': {what} {v} is not a finite non-negative number",
                            t.label
                        ),
                    )
                    .request(i),
                );
            }
        }
    }

    // DAG sanity: `Simulation::add_task` hands out ids in submission
    // order, so every dependency must point strictly backwards — a
    // forward or self edge can never be satisfied and deadlocks the run.
    out.record_check();
    for (i, t) in tasks.iter().enumerate() {
        for dep in &t.deps {
            if dep.index() >= i {
                out.push(
                    Diagnostic::new(
                        DiagCode::DagOrder,
                        format!(
                            "task '{}' (index {i}) depends on task index {} — dependencies must \
                             precede the task in submission order",
                            t.label,
                            dep.index()
                        ),
                    )
                    .request(i),
                );
            }
        }
    }

    // Memory budget: a single task whose footprint exceeds physical
    // capacity is guaranteed to page for its whole duration.
    out.record_check();
    let capacity = soc.memory.capacity_bytes;
    for (i, t) in tasks.iter().enumerate() {
        if t.footprint_bytes > capacity {
            let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
            out.push(
                Diagnostic::new(
                    DiagCode::MemoryBudget,
                    format!(
                        "task '{}' footprint {:.1} MB exceeds {} capacity {:.1} MB — it will \
                         page for its entire run",
                        t.label,
                        mb(t.footprint_bytes),
                        soc.name,
                        mb(capacity)
                    ),
                )
                .request(i),
            );
        }
    }

    out
}

/// Lints a lowered task graph against `soc` with an availability mask:
/// everything [`lint_tasks`] checks, plus H2P009 — no task may target a
/// processor marked unavailable in `down` (`down[p] == true` means
/// processor `p` has dropped out). Recovery replans run this instead of
/// [`lint_tasks`] so a plan that routes work onto a dead processor is
/// rejected before execution.
///
/// `down` is indexed by processor; indices beyond its length are
/// treated as available (their validity is already H2P003's job).
pub fn lint_tasks_available(soc: &SocSpec, tasks: &[TaskSpec], down: &[bool]) -> Diagnostics {
    let mut out = lint_tasks(soc, tasks);
    out.record_check();
    for (i, t) in tasks.iter().enumerate() {
        let p = t.processor.index();
        if down.get(p).copied().unwrap_or(false) {
            let name = soc
                .processors
                .get(p)
                .map_or_else(|| format!("processor {p}"), |spec| spec.name.clone());
            out.push(
                Diagnostic::new(
                    DiagCode::ProcessorDown,
                    format!(
                        "task '{}' targets {name}, which is marked unavailable",
                        t.label
                    ),
                )
                .request(i),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2p_simulator::engine::Simulation;
    use h2p_simulator::processor::ProcessorId;

    fn soc() -> SocSpec {
        SocSpec::kirin_990()
    }

    fn graph(soc: &SocSpec) -> Vec<TaskSpec> {
        let cpu = soc.processors_by_power()[0];
        let mut sim = Simulation::new(soc.clone());
        let a = sim.add_task(TaskSpec::new("a", cpu, 2.0));
        let mut b = TaskSpec::new("b", cpu, 3.0);
        b.deps.push(a);
        sim.add_task(b);
        sim.tasks().to_vec()
    }

    #[test]
    fn well_formed_graph_lints_clean() {
        let soc = soc();
        let d = lint_tasks(&soc, &graph(&soc));
        assert!(d.is_clean(), "{d}");
        assert_eq!(d.warn_count(), 0, "{d}");
        assert_eq!(d.checks, 5);
    }

    #[test]
    fn empty_graph_warns() {
        let d = lint_tasks(&soc(), &[]);
        assert!(d.is_clean());
        assert_eq!(d.diags[0].code, DiagCode::EmptyPlan);
    }

    #[test]
    fn out_of_range_processor_errors() {
        let soc = soc();
        let mut tasks = graph(&soc);
        tasks[0].processor = ProcessorId(42);
        let d = lint_tasks(&soc, &tasks);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::ProcFeasibility),
            "{d}"
        );
    }

    #[test]
    fn nan_and_negative_costs_error() {
        let soc = soc();
        let mut tasks = graph(&soc);
        tasks[0].solo_ms = f64::NAN;
        tasks[1].sensitivity = -1.0;
        let d = lint_tasks(&soc, &tasks);
        assert_eq!(
            d.diags
                .iter()
                .filter(|x| x.code == DiagCode::NonFiniteCost)
                .count(),
            2,
            "{d}"
        );
    }

    #[test]
    fn forward_dependency_errors() {
        let soc = soc();
        let mut tasks = graph(&soc);
        // Make task 0 depend on task 1: impossible under submission order.
        let dep = tasks[1].deps[0];
        tasks.swap(0, 1);
        tasks[0].deps = vec![dep];
        tasks[1].deps.clear();
        let d = lint_tasks(&soc, &tasks);
        assert!(d.diags.iter().any(|x| x.code == DiagCode::DagOrder), "{d}");
    }

    #[test]
    fn down_processor_fires_h2p009() {
        let soc = soc();
        let tasks = graph(&soc);
        let used = tasks[0].processor.index();
        let mut down = vec![false; soc.processors.len()];

        // All processors up: the extra check runs and stays clean.
        let d = lint_tasks_available(&soc, &tasks, &down);
        assert!(d.is_clean(), "{d}");
        assert_eq!(d.checks, 6);

        down[used] = true;
        let d = lint_tasks_available(&soc, &tasks, &down);
        assert!(!d.is_clean(), "{d}");
        assert_eq!(
            d.diags
                .iter()
                .filter(|x| x.code == DiagCode::ProcessorDown)
                .count(),
            2,
            "both tasks target the down processor: {d}"
        );

        // A short mask treats unlisted processors as available.
        let d = lint_tasks_available(&soc, &tasks, &[]);
        assert!(d.is_clean(), "{d}");
    }

    #[test]
    fn oversized_footprint_warns() {
        let soc = soc();
        let mut tasks = graph(&soc);
        tasks[0].footprint_bytes = soc.memory.capacity_bytes + 1;
        let d = lint_tasks(&soc, &tasks);
        assert!(d.is_clean(), "{d}");
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::MemoryBudget),
            "{d}"
        );
    }
}
