//! The analyzer's plan intermediate representation.
//!
//! `h2p-analyze` sits *below* the planner crate in the dependency graph
//! (the planner gates on it in debug builds), so it cannot consume the
//! planner's `PipelinePlan` directly. Instead it defines a small IR that
//! mirrors the plan structure and additionally carries the facts the
//! static checks need but the plan type does not record: per-request
//! layer counts, per-layer NPU supportability, the planner's *claimed*
//! makespan and bubble totals, and the weight-staging rate the executor
//! will charge. The planner crate owns the conversion.

use serde::{Deserialize, Serialize};

use h2p_contention::ContentionClass;
use h2p_models::graph::LayerRange;
use h2p_simulator::processor::ProcessorId;

/// One homogeneous sub-run of a stage (NPU operator fallback).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunIr {
    /// Layers of the run.
    pub range: LayerRange,
    /// Processor the run executes on.
    pub proc: ProcessorId,
    /// Run duration in ms, entry copies included.
    pub ms: f64,
}

/// One model slice mapped onto one pipeline slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageIr {
    /// The layer slice this stage executes.
    pub range: LayerRange,
    /// Processor the slice is pinned to.
    pub proc: ProcessorId,
    /// Estimated solo execution time in ms.
    pub exec_ms: f64,
    /// Estimated input-copy time in ms.
    pub copy_in_ms: f64,
    /// Emitted contention intensity while running.
    pub intensity: f64,
    /// Resident footprint in bytes.
    pub footprint_bytes: u64,
    /// Operator-fallback runs; empty for a homogeneous stage.
    pub runs: Vec<RunIr>,
}

impl StageIr {
    /// Total planned stage time (execution + input copy).
    pub fn total_ms(&self) -> f64 {
        self.exec_ms + self.copy_in_ms
    }
}

/// One request in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestIr {
    /// Original submission index.
    pub request: usize,
    /// Model name, for messages.
    pub model: String,
    /// Number of layers in the request's model graph.
    pub layer_count: usize,
    /// Per-layer NPU operator supportability, length `layer_count`.
    pub npu_supported: Vec<bool>,
    /// ℍ/𝕃 contention class.
    pub class: ContentionClass,
    /// One entry per pipeline slot (`None` = slot skipped).
    pub stages: Vec<Option<StageIr>>,
}

/// A complete plan in analyzer IR, plus the planner's claims about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanIr {
    /// Processors by pipeline slot, descending power order.
    pub procs: Vec<ProcessorId>,
    /// Requests in final execution order.
    pub requests: Vec<RequestIr>,
    /// The makespan the planner claims for this plan, in ms.
    pub claimed_makespan_ms: f64,
    /// The total bubble volume (Eq. 3 summed over columns) the planner
    /// claims, in ms.
    pub claimed_bubble_ms: f64,
    /// First-touch weight-staging rate the executor charges, GB/s.
    pub staging_gbps: f64,
}

impl PlanIr {
    /// Pipeline depth `K`.
    pub fn depth(&self) -> usize {
        self.procs.len()
    }

    /// Number of staggered columns, `|M| + K − 1` (0 when empty).
    pub fn column_count(&self) -> usize {
        if self.requests.is_empty() {
            0
        } else {
            self.requests.len() + self.depth().saturating_sub(1)
        }
    }

    /// The cells `(position, slot)` of column `j` that carry a stage.
    /// Mirrors the staggered execution rule `j = position + slot`.
    pub fn column_cells(&self, j: usize) -> Vec<(usize, usize)> {
        let mut cells = Vec::new();
        for slot in 0..self.depth() {
            if j < slot {
                continue;
            }
            let pos = j - slot;
            if pos >= self.requests.len() {
                continue;
            }
            if self.requests[pos]
                .stages
                .get(slot)
                .is_some_and(Option::is_some)
            {
                cells.push((pos, slot));
            }
        }
        cells
    }

    /// The stage at `(position, slot)`, if present and in bounds.
    pub fn stage(&self, pos: usize, slot: usize) -> Option<&StageIr> {
        self.requests
            .get(pos)
            .and_then(|r| r.stages.get(slot))
            .and_then(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(ms: f64) -> Option<StageIr> {
        Some(StageIr {
            range: LayerRange::new(0, 0),
            proc: ProcessorId(0),
            exec_ms: ms,
            copy_in_ms: 0.0,
            intensity: 0.0,
            footprint_bytes: 0,
            runs: Vec::new(),
        })
    }

    fn ir(times: &[&[f64]], k: usize) -> PlanIr {
        PlanIr {
            procs: (0..k).map(ProcessorId).collect(),
            requests: times
                .iter()
                .enumerate()
                .map(|(i, ts)| RequestIr {
                    request: i,
                    model: format!("m{i}"),
                    layer_count: 1,
                    npu_supported: vec![true],
                    class: ContentionClass::Low,
                    stages: ts.iter().map(|&t| stage(t)).collect(),
                })
                .collect(),
            claimed_makespan_ms: 0.0,
            claimed_bubble_ms: 0.0,
            staging_gbps: 2.0,
        }
    }

    #[test]
    fn column_cells_follow_the_stagger() {
        let p = ir(&[&[1.0, 2.0], &[3.0, 4.0]], 2);
        assert_eq!(p.column_count(), 3);
        assert_eq!(p.column_cells(0), vec![(0, 0)]);
        assert_eq!(p.column_cells(1), vec![(1, 0), (0, 1)]);
        assert_eq!(p.column_cells(2), vec![(1, 1)]);
    }

    #[test]
    fn empty_ir_has_no_columns() {
        let p = ir(&[], 3);
        assert_eq!(p.column_count(), 0);
        assert!(p.stage(0, 0).is_none());
    }
}
