//! Plan and source corruption harness.
//!
//! Each [`Mutation`] injects one class of structural damage into a
//! [`PlanIr`], chosen so that exactly one lint family is responsible for
//! catching it. The CLI's `h2p lint --corrupt` flag and the mutation
//! tests both drive [`apply`], so "the linter catches every corruption
//! class" is checked end to end, not just in-crate.
//!
//! [`SourceMutation`] plays the same role for the determinism lints
//! (`h2p lint --source`): each class is a seeded snippet of Rust that
//! must trip exactly its `H2P010`–`H2P013` diagnostic, and an annotated
//! twin ([`SourceMutation::waived_snippet`]) that must lint clean — so
//! both the detector and the allowlist path are proven live from the
//! CLI (`h2p lint --source --mutant <class>`).

use crate::diag::DiagCode;
use crate::ir::PlanIr;

/// A corruption class for the mutation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Remove a layer from coverage: shrink the last multi-layer stage,
    /// or (if every stage is single-layer) grow the model by one layer.
    /// Caught by `H2P001` (layer coverage).
    DropLayer,
    /// Map two pipeline slots onto the same processor. Caught by
    /// `H2P002` (slot conflict).
    DuplicateSlot,
    /// Re-pin one stage onto a processor other than its slot's. Caught
    /// by `H2P003` (processor feasibility).
    BadProc,
    /// Inflate the claimed makespan far beyond the static upper bound.
    /// Caught by `H2P007` (bound analysis).
    InflateMakespan,
}

impl Mutation {
    /// All corruption classes, in code order.
    pub const ALL: [Mutation; 4] = [
        Mutation::DropLayer,
        Mutation::DuplicateSlot,
        Mutation::BadProc,
        Mutation::InflateMakespan,
    ];

    /// Stable CLI name of the class.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropLayer => "drop-layer",
            Mutation::DuplicateSlot => "duplicate-slot",
            Mutation::BadProc => "bad-proc",
            Mutation::InflateMakespan => "inflate-makespan",
        }
    }

    /// Parses a CLI name back into a class.
    pub fn parse(s: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Applies `mutation` in place. Returns `false` if the plan has no
/// structure to corrupt (e.g. no requests at all), in which case the IR
/// is left untouched.
pub fn apply(ir: &mut PlanIr, mutation: Mutation) -> bool {
    match mutation {
        Mutation::DropLayer => drop_layer(ir),
        Mutation::DuplicateSlot => duplicate_slot(ir),
        Mutation::BadProc => bad_proc(ir),
        Mutation::InflateMakespan => inflate_makespan(ir),
    }
}

fn drop_layer(ir: &mut PlanIr) -> bool {
    // Prefer shrinking a multi-layer final stage so the damage is a
    // genuine gap, not a range error.
    for req in &mut ir.requests {
        if let Some(stage) = req
            .stages
            .iter_mut()
            .rev()
            .flatten()
            .find(|s| s.range.last > s.range.first)
        {
            stage.range.last -= 1;
            stage.runs.clear();
            return true;
        }
    }
    // Every stage is single-layer: grow a model instead, leaving the new
    // final layer uncovered.
    if let Some(req) = ir.requests.first_mut() {
        req.layer_count += 1;
        req.npu_supported.push(true);
        return true;
    }
    false
}

fn duplicate_slot(ir: &mut PlanIr) -> bool {
    if ir.procs.len() >= 2 {
        ir.procs[1] = ir.procs[0];
        // Drag the stages along so the slot conflict is the only damage.
        for req in &mut ir.requests {
            if let Some(Some(stage)) = req.stages.get_mut(1) {
                stage.proc = ir.procs[0];
            }
        }
        true
    } else if let Some(&p) = ir.procs.first() {
        ir.procs.push(p);
        for req in &mut ir.requests {
            req.stages.push(None);
        }
        true
    } else {
        false
    }
}

fn bad_proc(ir: &mut PlanIr) -> bool {
    let slots = ir.procs.clone();
    for req in &mut ir.requests {
        for stage in req.stages.iter_mut().flatten() {
            if let Some(&other) = slots.iter().find(|p| **p != stage.proc) {
                stage.proc = other;
                return true;
            }
        }
    }
    false
}

fn inflate_makespan(ir: &mut PlanIr) -> bool {
    if ir.requests.is_empty() {
        return false;
    }
    ir.claimed_makespan_ms = ir.claimed_makespan_ms * 1000.0 + 1000.0;
    true
}

/// A seeded determinism hazard for the source-lint harness: each class
/// is a small Rust snippet that must trip exactly one of the
/// `H2P010`–`H2P013` diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceMutation {
    /// Iteration over a `HashMap`. Caught by `H2P010`.
    HashIteration,
    /// `Instant::now()` in planning code. Caught by `H2P011`.
    WallClock,
    /// Float `.sum()` over hash-iteration. Caught by `H2P012`.
    UnorderedReduction,
    /// `rand::thread_rng()`. Caught by `H2P013`.
    UnseededRng,
}

impl SourceMutation {
    /// All source-hazard classes, in code order.
    pub const ALL: [SourceMutation; 4] = [
        SourceMutation::HashIteration,
        SourceMutation::WallClock,
        SourceMutation::UnorderedReduction,
        SourceMutation::UnseededRng,
    ];

    /// Stable CLI name of the class.
    pub fn name(self) -> &'static str {
        match self {
            SourceMutation::HashIteration => "hash-iteration",
            SourceMutation::WallClock => "wall-clock",
            SourceMutation::UnorderedReduction => "unordered-reduction",
            SourceMutation::UnseededRng => "unseeded-rng",
        }
    }

    /// Parses a CLI name back into a class.
    pub fn parse(s: &str) -> Option<SourceMutation> {
        SourceMutation::ALL.into_iter().find(|m| m.name() == s)
    }

    /// The diagnostic this class must trip.
    pub fn expected_code(self) -> DiagCode {
        match self {
            SourceMutation::HashIteration => DiagCode::NondetIteration,
            SourceMutation::WallClock => DiagCode::WallClock,
            SourceMutation::UnorderedReduction => DiagCode::UnorderedReduction,
            SourceMutation::UnseededRng => DiagCode::UnseededRng,
        }
    }

    /// The seeded hazard snippet. Hazard tokens are assembled with
    /// `concat!` so this file's own text never contains them
    /// contiguously (the workspace lints itself).
    pub fn snippet(self) -> &'static str {
        match self {
            SourceMutation::HashIteration => concat!(
                "let m: Hash",
                "Map<u32, u32> = build();\n",
                "for (k, v) in &m { emit(k, v); }\n",
            ),
            SourceMutation::WallClock => {
                concat!("let t0 = std::time::Instant", "::now();\n")
            }
            SourceMutation::UnorderedReduction => concat!(
                "let w: Hash",
                "Map<u32, f64> = build();\n",
                "let total: f64 = w.val",
                "ues().su",
                "m();\n",
            ),
            SourceMutation::UnseededRng => {
                concat!("let mut rng = rand::thread_", "rng();\n")
            }
        }
    }

    /// The same hazard with a justified allowlist annotation on the
    /// hazardous line — must lint clean, proving the waiver path.
    pub fn waived_snippet(self) -> String {
        let snippet = self.snippet();
        let hazard_line = match self {
            SourceMutation::HashIteration | SourceMutation::UnorderedReduction => 1,
            SourceMutation::WallClock | SourceMutation::UnseededRng => 0,
        };
        let mut out = String::new();
        for (i, line) in snippet.lines().enumerate() {
            if i == hazard_line {
                out.push_str(concat!("// h2p-", "lint: all", "ow("));
                out.push_str(self.expected_code().code());
                out.push_str(") — seeded mutant waiver: hazard is intentional here\n");
            }
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lint_source;

    #[test]
    fn names_round_trip() {
        for m in Mutation::ALL {
            assert_eq!(Mutation::parse(m.name()), Some(m));
        }
        assert_eq!(Mutation::parse("no-such-class"), None);
    }

    #[test]
    fn mutations_on_an_empty_plan_are_noops() {
        let mut ir = PlanIr {
            procs: Vec::new(),
            requests: Vec::new(),
            claimed_makespan_ms: 0.0,
            claimed_bubble_ms: 0.0,
            staging_gbps: 2.0,
        };
        for m in Mutation::ALL {
            assert!(
                !apply(&mut ir, m),
                "{} should report nothing to corrupt",
                m.name()
            );
        }
    }

    #[test]
    fn source_mutation_names_round_trip() {
        for m in SourceMutation::ALL {
            assert_eq!(SourceMutation::parse(m.name()), Some(m));
        }
        assert_eq!(SourceMutation::parse("no-such-class"), None);
    }

    #[test]
    fn every_source_mutant_trips_exactly_its_lint() {
        for m in SourceMutation::ALL {
            let d = lint_source("mutant.rs", "core", m.snippet());
            let codes: Vec<DiagCode> = d.diags.iter().map(|x| x.code).collect();
            assert_eq!(
                codes,
                vec![m.expected_code()],
                "{} must trip exactly {}: {d:?}",
                m.name(),
                m.expected_code().code()
            );
        }
    }

    #[test]
    fn every_waived_source_mutant_lints_clean() {
        for m in SourceMutation::ALL {
            let d = lint_source("mutant.rs", "core", &m.waived_snippet());
            assert!(d.is_clean(), "{} waiver failed: {d:?}", m.name());
        }
    }
}
