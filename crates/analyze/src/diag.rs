//! Typed lint diagnostics: severities, stable codes, and machine-readable
//! JSON output.
//!
//! Every check in this crate reports through [`Diagnostics`], so callers
//! get one uniform surface: the CLI renders [`std::fmt::Display`], CI
//! consumes [`Diagnostic::json_line`], and the `debug_assertions` gates
//! only look at [`Diagnostics::error_count`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// `Error` means the plan violates a structural contract and must not be
/// executed; `Warn` flags legal-but-slow structure (paging, unresolved
/// contention windows) the planner may knowingly accept; `Info` is
/// advisory context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Legal but likely slow; execution proceeds.
    Warn,
    /// Contract violation; the plan must not execute.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes, one per check family (documented in
/// `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiagCode {
    /// H2P000 — the plan or task graph is empty.
    EmptyPlan,
    /// H2P001 — layer coverage: a request's stages do not tile its model
    /// contiguously and exactly once.
    LayerCoverage,
    /// H2P002 — slot conflict: duplicate processors across pipeline
    /// slots, or a malformed stage vector.
    SlotConflict,
    /// H2P003 — processor feasibility: invalid processor index, a stage
    /// pinned off its slot's processor, or NPU operator-fallback rules
    /// broken.
    ProcFeasibility,
    /// H2P004 — memory budget: peak concurrent footprint exceeds the
    /// SoC's physical capacity (Constraint 6), so execution will page.
    MemoryBudget,
    /// H2P005 — DAG sanity: request indices are not distinct, or task
    /// dependencies are inconsistent with submission order.
    DagOrder,
    /// H2P006 — contention window: two ℍ requests inside one window of
    /// `K` positions (Def. 4), or an invalid mitigation permutation.
    ContentionWindow,
    /// H2P007 — bound analysis: the claimed makespan or bubble total
    /// (Eq. 3) falls outside the statically derivable envelope.
    BoundViolation,
    /// H2P008 — a cost, duration, intensity or rate is NaN, infinite or
    /// negative.
    NonFiniteCost,
    /// H2P009 — the plan references a processor marked unavailable
    /// (dropped out or administratively excluded): recovery replans must
    /// never route work onto a dead processor.
    ProcessorDown,
    /// H2P010 — source determinism: iteration over a `HashMap`/`HashSet`
    /// in plan-affecting code — hash order is nondeterministic across
    /// runs, so anything it feeds can differ bit-for-bit.
    NondetIteration,
    /// H2P011 — source determinism: wall-clock read (`Instant::now`,
    /// `SystemTime`) in a planning path; plans must be pure functions of
    /// their inputs.
    WallClock,
    /// H2P012 — source determinism: a float reduction (`sum`/`product`/
    /// `fold`) over an unordered hash iteration — float addition is not
    /// associative, so the result depends on iteration order.
    UnorderedReduction,
    /// H2P013 — source determinism: unseeded RNG (`thread_rng`,
    /// `from_entropy`, `rand::random`) in library code; randomness must
    /// be seeded to stay replayable.
    UnseededRng,
}

/// The single source of truth for every diagnostic code: variant,
/// stable `H2Pnnn` string, default severity, and one-line meaning —
/// indexed by discriminant and used by [`DiagCode::code`],
/// [`DiagCode::severity`], [`DiagCode::summary`], [`DiagCode::parse_code`]
/// (and, through `code()`, by `Display` and the JSON serialization).
const CODE_TABLE: &[(DiagCode, &str, Severity, &str)] = &[
    (
        DiagCode::EmptyPlan,
        "H2P000",
        Severity::Warn,
        "the plan or task graph is empty",
    ),
    (
        DiagCode::LayerCoverage,
        "H2P001",
        Severity::Error,
        "stages do not tile the model contiguously and exactly once",
    ),
    (
        DiagCode::SlotConflict,
        "H2P002",
        Severity::Error,
        "duplicate processors across slots or malformed stage vector",
    ),
    (
        DiagCode::ProcFeasibility,
        "H2P003",
        Severity::Error,
        "invalid processor assignment or broken NPU-fallback rules",
    ),
    (
        DiagCode::MemoryBudget,
        "H2P004",
        Severity::Warn,
        "peak concurrent footprint exceeds physical memory (paging)",
    ),
    (
        DiagCode::DagOrder,
        "H2P005",
        Severity::Error,
        "request indices or task dependencies inconsistent",
    ),
    (
        DiagCode::ContentionWindow,
        "H2P006",
        Severity::Warn,
        "two high-contention requests inside one window of K positions",
    ),
    (
        DiagCode::BoundViolation,
        "H2P007",
        Severity::Error,
        "claimed makespan/bubbles outside the statically derived envelope",
    ),
    (
        DiagCode::NonFiniteCost,
        "H2P008",
        Severity::Error,
        "a cost, duration, intensity or rate is NaN/infinite/negative",
    ),
    (
        DiagCode::ProcessorDown,
        "H2P009",
        Severity::Error,
        "the plan references a processor marked unavailable",
    ),
    (
        DiagCode::NondetIteration,
        "H2P010",
        Severity::Error,
        "HashMap/HashSet iteration feeding plan-affecting output",
    ),
    (
        DiagCode::WallClock,
        "H2P011",
        Severity::Error,
        "wall-clock read (Instant/SystemTime) in a planning path",
    ),
    (
        DiagCode::UnorderedReduction,
        "H2P012",
        Severity::Error,
        "float reduction over an unordered hash iteration",
    ),
    (
        DiagCode::UnseededRng,
        "H2P013",
        Severity::Error,
        "unseeded RNG in library code (thread_rng/from_entropy/random)",
    ),
];

impl DiagCode {
    /// Every code, in `H2P000..` order.
    pub const ALL: [DiagCode; 14] = [
        DiagCode::EmptyPlan,
        DiagCode::LayerCoverage,
        DiagCode::SlotConflict,
        DiagCode::ProcFeasibility,
        DiagCode::MemoryBudget,
        DiagCode::DagOrder,
        DiagCode::ContentionWindow,
        DiagCode::BoundViolation,
        DiagCode::NonFiniteCost,
        DiagCode::ProcessorDown,
        DiagCode::NondetIteration,
        DiagCode::WallClock,
        DiagCode::UnorderedReduction,
        DiagCode::UnseededRng,
    ];

    fn entry(self) -> &'static (DiagCode, &'static str, Severity, &'static str) {
        // The table is discriminant-ordered (pinned by a unit test), so
        // the lookup is a direct index.
        &CODE_TABLE[self as usize]
    }

    /// The stable `H2Pnnn` code string.
    pub fn code(self) -> &'static str {
        self.entry().1
    }

    /// The severity this code reports at.
    pub fn severity(self) -> Severity {
        self.entry().2
    }

    /// One-line meaning, for tables and `--help`-style listings.
    pub fn summary(self) -> &'static str {
        self.entry().3
    }

    /// Parses a stable code string (`"H2P010"`, case-insensitive) back
    /// to its variant — used by the source-lint allowlist annotations.
    pub fn parse_code(s: &str) -> Option<DiagCode> {
        CODE_TABLE
            .iter()
            .find(|e| e.1.eq_ignore_ascii_case(s.trim()))
            .map(|e| e.0)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The check family that fired.
    pub code: DiagCode,
    /// Severity (normally [`DiagCode::severity`]).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Request the finding is about (execution-order position), if any.
    pub request: Option<usize>,
    /// Pipeline slot the finding is about, if any.
    pub slot: Option<usize>,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            request: None,
            slot: None,
        }
    }

    /// Attaches the request position (builder style).
    pub fn request(mut self, request: usize) -> Self {
        self.request = Some(request);
        self
    }

    /// Attaches the slot (builder style).
    pub fn slot(mut self, slot: usize) -> Self {
        self.slot = Some(slot);
        self
    }

    /// One machine-readable JSON object describing this finding, with no
    /// trailing newline. The format is hand-rolled (the vendored serde
    /// facade has no JSON backend) and kept flat on purpose.
    pub fn json_line(&self) -> String {
        let mut s = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
            self.code.code(),
            self.severity.label(),
            escape_json(&self.message)
        );
        if let Some(r) = self.request {
            s.push_str(&format!(",\"request\":{r}"));
        }
        if let Some(k) = self.slot {
            s.push_str(&format!(",\"slot\":{k}"));
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.severity.label(),
            self.code.code(),
            self.message
        )?;
        if let Some(r) = self.request {
            write!(f, " (request {r}")?;
            if let Some(k) = self.slot {
                write!(f, ", slot {k}")?;
            }
            write!(f, ")")?;
        } else if let Some(k) = self.slot {
            write!(f, " (slot {k})")?;
        }
        Ok(())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The outcome of a lint pass: every finding plus how many checks ran.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// All findings, in check order.
    pub diags: Vec<Diagnostic>,
    /// Number of check families evaluated (clean or not).
    pub checks: usize,
}

impl Diagnostics {
    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Records that one check family ran.
    pub fn record_check(&mut self) {
        self.checks += 1;
    }

    /// Merges another pass's findings and check count into this one.
    pub fn merge(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
        self.checks += other.checks;
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn` findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == sev).count()
    }

    /// Whether the pass found no errors (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Whether the pass should fail the caller: errors always, warnings
    /// only when `deny_warnings`.
    pub fn should_fail(&self, deny_warnings: bool) -> bool {
        self.error_count() > 0 || (deny_warnings && self.warn_count() > 0)
    }

    /// JSON-lines rendering: one object per finding, then one summary
    /// object, each on its own line.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.json_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"summary\":true,\"errors\":{},\"warnings\":{},\"checks\":{}}}\n",
            self.error_count(),
            self.warn_count(),
            self.checks
        ));
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "lint: {} error(s), {} warning(s) over {} checks",
            self.error_count(),
            self.warn_count(),
            self.checks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_ranks_error_highest() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let mut codes: Vec<&str> = DiagCode::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), DiagCode::ALL.len(), "codes must be unique");
        assert_eq!(DiagCode::ALL.len(), 14);
        assert_eq!(DiagCode::LayerCoverage.code(), "H2P001");
        assert_eq!(DiagCode::ProcessorDown.code(), "H2P009");
        assert_eq!(DiagCode::NondetIteration.code(), "H2P010");
        assert_eq!(DiagCode::WallClock.code(), "H2P011");
        assert_eq!(DiagCode::UnorderedReduction.code(), "H2P012");
        assert_eq!(DiagCode::UnseededRng.code(), "H2P013");
    }

    #[test]
    fn code_table_is_discriminant_ordered() {
        // `DiagCode::entry` indexes the table by discriminant: every row
        // must sit at its own variant's index, and each stable string
        // must be `H2P{index:03}`.
        for (i, code) in DiagCode::ALL.iter().enumerate() {
            assert_eq!(*code as usize, i, "ALL out of discriminant order at {i}");
            assert_eq!(code.code(), format!("H2P{i:03}"), "table row {i} misplaced");
            assert!(!code.summary().is_empty());
        }
    }

    #[test]
    fn parse_code_round_trips() {
        for code in DiagCode::ALL {
            assert_eq!(DiagCode::parse_code(code.code()), Some(code));
        }
        assert_eq!(
            DiagCode::parse_code("h2p010"),
            Some(DiagCode::NondetIteration)
        );
        assert_eq!(
            DiagCode::parse_code(" H2P013 "),
            Some(DiagCode::UnseededRng)
        );
        assert_eq!(DiagCode::parse_code("H2P099"), None);
        assert_eq!(DiagCode::parse_code(""), None);
    }

    #[test]
    fn new_determinism_codes_are_errors() {
        for code in [
            DiagCode::NondetIteration,
            DiagCode::WallClock,
            DiagCode::UnorderedReduction,
            DiagCode::UnseededRng,
        ] {
            assert_eq!(code.severity(), Severity::Error, "{code:?}");
        }
    }

    #[test]
    fn json_line_escapes_and_carries_anchors() {
        let d = Diagnostic::new(DiagCode::LayerCoverage, "bad \"range\"\n")
            .request(3)
            .slot(1);
        let j = d.json_line();
        assert!(j.contains("\"code\":\"H2P001\""), "{j}");
        assert!(j.contains("\"severity\":\"error\""), "{j}");
        assert!(j.contains("bad \\\"range\\\"\\n"), "{j}");
        assert!(j.contains("\"request\":3"), "{j}");
        assert!(j.contains("\"slot\":1"), "{j}");
    }

    #[test]
    fn should_fail_honors_deny_warnings() {
        let mut d = Diagnostics::default();
        assert!(!d.should_fail(true));
        d.push(Diagnostic::new(DiagCode::MemoryBudget, "paging"));
        assert!(!d.should_fail(false));
        assert!(d.should_fail(true));
        d.push(Diagnostic::new(DiagCode::LayerCoverage, "gap"));
        assert!(d.should_fail(false));
        assert!(!d.is_clean());
    }

    #[test]
    fn display_and_json_summary_count_consistently() {
        let mut d = Diagnostics::default();
        d.record_check();
        d.record_check();
        d.push(Diagnostic::new(DiagCode::NonFiniteCost, "NaN exec"));
        let text = d.to_string();
        assert!(
            text.contains("1 error(s), 0 warning(s) over 2 checks"),
            "{text}"
        );
        let json = d.to_json_lines();
        assert!(
            json.contains("\"errors\":1,\"warnings\":0,\"checks\":2"),
            "{json}"
        );
    }
}
