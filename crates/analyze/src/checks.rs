//! The static check families over [`PlanIr`].
//!
//! [`lint_plan`] runs, in order:
//!
//! 1. **Layer coverage** — every layer of every request in exactly one
//!    stage; ranges contiguous and non-overlapping; fallback runs tile
//!    their stage.
//! 2. **Slot/processor feasibility** — distinct slot processors, stage
//!    vectors of the right arity, stages pinned to their slot's
//!    processor, valid processor indices, and the NPU operator-fallback
//!    rules (an unsupported layer may sit in an NPU stage only inside a
//!    non-NPU fallback run).
//! 3. **Memory budget** — peak concurrent footprint across staggered
//!    columns against the SoC ledger (Constraint 6). Paging is legal but
//!    slow, so this is a warning.
//! 4. **DAG sanity** — request indices form a set (the lowering keys
//!    completion times by them) and stage chains are slot-ordered by
//!    construction, so submission order implies acyclicity.
//! 5. **Contention windows** — no two ℍ requests within one window of
//!    `K` positions (Def. 4, Algorithm 2's postcondition). The planner
//!    may accept a conflicted order when no resolution exists, so this
//!    is a warning.
//! 6. **Bound analysis** — the claimed makespan must fall inside the
//!    envelope `[synchronous column bound, worst-case contention bound]`
//!    derived by abstract interpretation over the coupling matrix, and
//!    the claimed bubble total must equal the Eq. 3 recomputation.
//!
//! Non-finite or negative costs anywhere short-circuit into `H2P008`.

use std::collections::HashSet;

use h2p_simulator::interference::slowdown_for;
use h2p_simulator::processor::ProcessorKind;
use h2p_simulator::soc::SocSpec;
use h2p_simulator::thermal::ThermalSpec;

use crate::diag::{DiagCode, Diagnostic, Diagnostics};
use crate::ir::{PlanIr, RequestIr, StageIr};

/// Contention sensitivity of a stage given its emitted intensity — the
/// same shaping the planner and executor apply.
fn sensitivity(intensity: f64) -> f64 {
    0.5 + 0.5 * intensity.clamp(0.0, 2.0)
}

/// Relative + absolute tolerance for comparing recomputed quantities.
const TOL: f64 = 1e-6;

/// Slack multiplier on the worst-case upper bound: the bound is an
/// over-approximation, so claims only fail it when structurally absurd.
const UPPER_SLACK: f64 = 1.05;

/// Lints a plan IR against `soc` without executing anything.
pub fn lint_plan(soc: &SocSpec, ir: &PlanIr) -> Diagnostics {
    let mut out = Diagnostics::default();

    if ir.requests.is_empty() {
        out.record_check();
        out.push(Diagnostic::new(
            DiagCode::EmptyPlan,
            "plan contains no requests",
        ));
        return out;
    }

    let finite_ok = check_finite(ir, &mut out);
    let procs_ok = check_slots(soc, ir, &mut out);
    check_coverage(ir, &mut out);
    if procs_ok {
        check_npu_feasibility(soc, ir, &mut out);
        check_memory(soc, ir, &mut out);
    }
    check_dag(ir, &mut out);
    check_contention_windows(ir, &mut out);
    if procs_ok && finite_ok {
        check_bounds(soc, ir, &mut out);
    }
    out
}

/// Family H2P008: every duration, intensity and claim must be a finite,
/// non-negative number. Returns whether everything was finite (bound
/// analysis is meaningless otherwise).
fn check_finite(ir: &PlanIr, out: &mut Diagnostics) -> bool {
    out.record_check();
    let before = out.error_count();
    let mut bad = |msg: String, pos: Option<usize>, slot: Option<usize>| {
        let mut d = Diagnostic::new(DiagCode::NonFiniteCost, msg);
        d.request = pos;
        d.slot = slot;
        out.push(d);
    };
    let ok = |x: f64| x.is_finite() && x >= 0.0;
    if !(ir.staging_gbps.is_finite() && ir.staging_gbps > 0.0) {
        bad(
            format!(
                "weight-staging rate {} GB/s is not positive",
                ir.staging_gbps
            ),
            None,
            None,
        );
    }
    if !ok(ir.claimed_makespan_ms) {
        bad(
            format!(
                "claimed makespan {} ms is not finite",
                ir.claimed_makespan_ms
            ),
            None,
            None,
        );
    }
    if !ok(ir.claimed_bubble_ms) {
        bad(
            format!(
                "claimed bubble total {} ms is not finite",
                ir.claimed_bubble_ms
            ),
            None,
            None,
        );
    }
    for (pos, req) in ir.requests.iter().enumerate() {
        if !ok(req.intensity_sum()) {
            // Covered per-stage below; aggregate kept implicit.
        }
        for (slot, stage) in req.stages.iter().enumerate() {
            let Some(stage) = stage else { continue };
            for (what, v) in [
                ("exec time", stage.exec_ms),
                ("input-copy time", stage.copy_in_ms),
                ("intensity", stage.intensity),
            ] {
                if !ok(v) {
                    bad(
                        format!("{}: stage {what} {v} is not finite", req.model),
                        Some(pos),
                        Some(slot),
                    );
                }
            }
            for run in &stage.runs {
                if !ok(run.ms) {
                    bad(
                        format!("{}: fallback run time {} is not finite", req.model, run.ms),
                        Some(pos),
                        Some(slot),
                    );
                }
            }
        }
    }
    out.error_count() == before
}

impl RequestIr {
    /// Sum of stage intensities (finiteness probe only).
    fn intensity_sum(&self) -> f64 {
        self.stages
            .iter()
            .flatten()
            .map(|s| s.intensity)
            .sum::<f64>()
    }
}

/// Families H2P002/H2P003 (structural part): slot processors distinct and
/// valid, stage vectors the right length, stages pinned to their slot.
/// Returns whether processor indexing is sound enough for the memory and
/// bound checks to dereference specs.
fn check_slots(soc: &SocSpec, ir: &PlanIr, out: &mut Diagnostics) -> bool {
    out.record_check();
    let before = out.error_count();
    let n_procs = soc.processors.len();
    if ir.procs.is_empty() {
        out.push(Diagnostic::new(
            DiagCode::SlotConflict,
            "plan has no processor slots",
        ));
    }
    let mut seen: HashSet<usize> = HashSet::new();
    for (slot, proc) in ir.procs.iter().enumerate() {
        if proc.index() >= n_procs {
            out.push(
                Diagnostic::new(
                    DiagCode::ProcFeasibility,
                    format!(
                        "slot processor index {} out of range for {} ({} processors)",
                        proc.index(),
                        soc.name,
                        n_procs
                    ),
                )
                .slot(slot),
            );
        }
        if !seen.insert(proc.index()) {
            out.push(
                Diagnostic::new(
                    DiagCode::SlotConflict,
                    format!(
                        "processor {} appears in more than one pipeline slot — two stages of one \
                         request would share a column processor",
                        proc.index()
                    ),
                )
                .slot(slot),
            );
        }
    }
    for (pos, req) in ir.requests.iter().enumerate() {
        if req.stages.len() != ir.procs.len() {
            out.push(
                Diagnostic::new(
                    DiagCode::SlotConflict,
                    format!(
                        "{}: stage vector has {} entries for {} slots",
                        req.model,
                        req.stages.len(),
                        ir.procs.len()
                    ),
                )
                .request(pos),
            );
            continue;
        }
        for (slot, stage) in req.stages.iter().enumerate() {
            let Some(stage) = stage else { continue };
            if stage.proc != ir.procs[slot] {
                out.push(
                    Diagnostic::new(
                        DiagCode::ProcFeasibility,
                        format!(
                            "{}: stage pinned to processor {} but slot {} is processor {}",
                            req.model,
                            stage.proc.index(),
                            slot,
                            ir.procs[slot].index()
                        ),
                    )
                    .request(pos)
                    .slot(slot),
                );
            }
        }
    }
    out.error_count() == before
        && ir
            .requests
            .iter()
            .flat_map(|r| r.stages.iter().flatten())
            .all(|s| s.proc.index() < n_procs)
}

/// Family H2P001: every request's active stages tile `[0, layer_count)`
/// contiguously in slot order, and fallback runs tile their stage.
fn check_coverage(ir: &PlanIr, out: &mut Diagnostics) {
    out.record_check();
    for (pos, req) in ir.requests.iter().enumerate() {
        let diag = |msg: String| Diagnostic::new(DiagCode::LayerCoverage, msg).request(pos);
        if req.layer_count == 0 {
            out.push(diag(format!("{}: model has zero layers", req.model)));
            continue;
        }
        if req.npu_supported.len() != req.layer_count {
            out.push(diag(format!(
                "{}: NPU supportability table has {} entries for {} layers",
                req.model,
                req.npu_supported.len(),
                req.layer_count
            )));
        }
        let active: Vec<(usize, &StageIr)> = req
            .stages
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| s.as_ref().map(|s| (slot, s)))
            .collect();
        if active.is_empty() {
            out.push(diag(format!(
                "{}: request occupies no slot — no layer is covered",
                req.model
            )));
            continue;
        }
        let mut next = 0usize;
        let mut broken = false;
        for &(slot, stage) in &active {
            if stage.range.first != next {
                out.push(
                    diag(format!(
                        "{}: stage covers layers {} but layer {} is the next uncovered one \
                         (gap or overlap)",
                        req.model, stage.range, next
                    ))
                    .slot(slot),
                );
                broken = true;
                break;
            }
            if stage.range.last >= req.layer_count {
                out.push(
                    diag(format!(
                        "{}: stage range {} exceeds the model's {} layers",
                        req.model, stage.range, req.layer_count
                    ))
                    .slot(slot),
                );
                broken = true;
                break;
            }
            check_runs(req, pos, slot, stage, out);
            next = stage.range.last + 1;
        }
        if !broken && next != req.layer_count {
            out.push(diag(format!(
                "{}: layers {}..{} are not covered by any stage",
                req.model,
                next,
                req.layer_count - 1
            )));
        }
    }
}

/// Fallback runs of one stage must tile the stage range contiguously.
fn check_runs(req: &RequestIr, pos: usize, slot: usize, stage: &StageIr, out: &mut Diagnostics) {
    if stage.runs.is_empty() {
        return;
    }
    let mut next = stage.range.first;
    for run in &stage.runs {
        if run.range.first != next || run.range.last > stage.range.last {
            out.push(
                Diagnostic::new(
                    DiagCode::LayerCoverage,
                    format!(
                        "{}: fallback runs do not tile stage range {} (run {} out of place)",
                        req.model, stage.range, run.range
                    ),
                )
                .request(pos)
                .slot(slot),
            );
            return;
        }
        next = run.range.last + 1;
    }
    if next != stage.range.last + 1 {
        out.push(
            Diagnostic::new(
                DiagCode::LayerCoverage,
                format!(
                    "{}: fallback runs stop at layer {} but the stage range is {}",
                    req.model,
                    next - 1,
                    stage.range
                ),
            )
            .request(pos)
            .slot(slot),
        );
    }
}

/// Family H2P003 (operator part): NPU stages may contain unsupported
/// layers only inside non-NPU fallback runs, and NPU runs may contain
/// only supported layers. Requires valid processor indices.
fn check_npu_feasibility(soc: &SocSpec, ir: &PlanIr, out: &mut Diagnostics) {
    out.record_check();
    let is_npu =
        |p: h2p_simulator::processor::ProcessorId| soc.processor(p).kind == ProcessorKind::Npu;
    for (pos, req) in ir.requests.iter().enumerate() {
        for (slot, stage) in req.stages.iter().enumerate() {
            let Some(stage) = stage else { continue };
            let supported = |layer: usize| req.npu_supported.get(layer).copied().unwrap_or(false);
            if stage.runs.is_empty() {
                if is_npu(stage.proc) {
                    if let Some(layer) =
                        (stage.range.first..=stage.range.last).find(|&l| !supported(l))
                    {
                        out.push(
                            Diagnostic::new(
                                DiagCode::ProcFeasibility,
                                format!(
                                    "{}: layer {layer} is not NPU-supported but the stage runs \
                                     on the NPU with no fallback runs",
                                    req.model
                                ),
                            )
                            .request(pos)
                            .slot(slot),
                        );
                    }
                }
                continue;
            }
            for run in &stage.runs {
                if run.proc.index() >= soc.processors.len() {
                    out.push(
                        Diagnostic::new(
                            DiagCode::ProcFeasibility,
                            format!(
                                "{}: fallback run processor index {} out of range",
                                req.model,
                                run.proc.index()
                            ),
                        )
                        .request(pos)
                        .slot(slot),
                    );
                    continue;
                }
                if is_npu(run.proc) {
                    if let Some(layer) = (run.range.first..=run.range.last).find(|&l| !supported(l))
                    {
                        out.push(
                            Diagnostic::new(
                                DiagCode::ProcFeasibility,
                                format!(
                                    "{}: layer {layer} is not NPU-supported but run {} executes \
                                     on the NPU",
                                    req.model, run.range
                                ),
                            )
                            .request(pos)
                            .slot(slot),
                        );
                    }
                }
            }
        }
    }
}

/// Family H2P004: peak concurrent footprint (largest column sum) against
/// the SoC memory ledger.
fn check_memory(soc: &SocSpec, ir: &PlanIr, out: &mut Diagnostics) {
    out.record_check();
    let peak: u64 = (0..ir.column_count())
        .map(|j| {
            ir.column_cells(j)
                .iter()
                .filter_map(|&(pos, slot)| ir.stage(pos, slot))
                .map(|s| s.footprint_bytes)
                .sum()
        })
        .max()
        .unwrap_or(0);
    let capacity = soc.memory.capacity_bytes;
    if peak > capacity {
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        out.push(Diagnostic::new(
            DiagCode::MemoryBudget,
            format!(
                "peak concurrent footprint {:.1} MB exceeds {} capacity {:.1} MB — execution \
                 will page at {:.0}% speed (Constraint 6)",
                mb(peak),
                soc.name,
                mb(capacity),
                soc.memory.page_fault_penalty * 100.0
            ),
        ));
    }
}

/// Family H2P005: request indices must be distinct — the executor keys
/// completion times by them, and a duplicate silently drops a latency.
fn check_dag(ir: &PlanIr, out: &mut Diagnostics) {
    out.record_check();
    let mut seen: HashSet<usize> = HashSet::new();
    for (pos, req) in ir.requests.iter().enumerate() {
        if !seen.insert(req.request) {
            out.push(
                Diagnostic::new(
                    DiagCode::DagOrder,
                    format!(
                        "{}: original request index {} appears more than once in the execution \
                         order",
                        req.model, req.request
                    ),
                )
                .request(pos),
            );
        }
    }
}

/// Family H2P006: Algorithm 2's postcondition — no two ℍ requests within
/// one contention window of `K` positions.
fn check_contention_windows(ir: &PlanIr, out: &mut Diagnostics) {
    out.record_check();
    let k = ir.depth();
    if k == 0 {
        return;
    }
    let highs: Vec<usize> = ir
        .requests
        .iter()
        .enumerate()
        .filter(|(_, r)| r.class.is_high())
        .map(|(i, _)| i)
        .collect();
    for w in highs.windows(2) {
        if w[1] - w[0] < k {
            out.push(
                Diagnostic::new(
                    DiagCode::ContentionWindow,
                    format!(
                        "ℍ requests at positions {} and {} are {} apart — inside one contention \
                         window of K = {k} (Def. 4); their stages overlap temporally",
                        w[0],
                        w[1],
                        w[1] - w[0]
                    ),
                )
                .request(w[0]),
            );
        }
    }
}

/// Family H2P007: abstract interpretation of the plan against the cost
/// model. The claimed makespan must lie in the envelope
/// `[sync_lower, worst_case_upper]`, and the claimed bubble total must
/// equal the Eq. 3 recomputation.
fn check_bounds(soc: &SocSpec, ir: &PlanIr, out: &mut Diagnostics) {
    out.record_check();

    // Eq. 3 recomputation: per column, Σ (max − cell).
    let mut sync_lower = 0.0f64;
    let mut bubbles = 0.0f64;
    let mut stretched_upper = 0.0f64;
    for j in 0..ir.column_count() {
        let cells = ir.column_cells(j);
        let times: Vec<f64> = cells
            .iter()
            .filter_map(|&(p, s)| ir.stage(p, s))
            .map(StageIr::total_ms)
            .collect();
        let max = times.iter().fold(0.0f64, |a, &b| a.max(b));
        sync_lower += max;
        bubbles += times.iter().map(|t| max - t).sum::<f64>();
        // Worst-case column duration: each cell stretched by the full
        // coupling-matrix slowdown from all its co-runners.
        let mut col_worst = 0.0f64;
        for &(p, s) in &cells {
            let Some(stage) = ir.stage(p, s) else {
                continue;
            };
            let corunners = cells
                .iter()
                .filter(|&&(p2, s2)| !(p2 == p && s2 == s))
                .filter_map(|&(p2, s2)| ir.stage(p2, s2))
                .map(|o| (soc.processor(o.proc), o.intensity));
            let slow = slowdown_for(
                &soc.coupling,
                soc.processor(stage.proc),
                sensitivity(stage.intensity),
                corunners,
            );
            col_worst = col_worst.max(stage.total_ms() * (1.0 + slow));
        }
        stretched_upper += col_worst;
    }

    if (ir.claimed_bubble_ms - bubbles).abs() > TOL + TOL * bubbles.max(1.0) {
        out.push(Diagnostic::new(
            DiagCode::BoundViolation,
            format!(
                "claimed bubble total {:.3} ms does not match the Eq. 3 recomputation {:.3} ms",
                ir.claimed_bubble_ms, bubbles
            ),
        ));
    }

    // First-touch staging: every distinct (model, processor, range)
    // placement pays its footprint once at the executor's staging rate.
    let mut placements: HashSet<(String, usize, usize, usize)> = HashSet::new();
    let mut staging_ms = 0.0f64;
    for req in &ir.requests {
        for stage in req.stages.iter().flatten() {
            let key = (
                req.model.clone(),
                stage.proc.index(),
                stage.range.first,
                stage.range.last,
            );
            if placements.insert(key) {
                staging_ms += stage.footprint_bytes as f64 / (ir.staging_gbps * 1e6);
            }
        }
    }

    // Worst-case rate divisors: sustained thermal throttling on the
    // slowest-throttling processor in use, and page-fault slowdown if the
    // peak footprint overcommits memory.
    let min_thermal = ir
        .requests
        .iter()
        .flat_map(|r| r.stages.iter().flatten())
        .map(|s| ThermalSpec::for_kind(soc.processor(s.proc).kind).throttle_factor)
        .fold(1.0f64, f64::min);
    let peak: u64 = (0..ir.column_count())
        .map(|j| {
            ir.column_cells(j)
                .iter()
                .filter_map(|&(p, s)| ir.stage(p, s))
                .map(|s| s.footprint_bytes)
                .sum()
        })
        .max()
        .unwrap_or(0);
    let paging = if peak > soc.memory.capacity_bytes {
        soc.memory.page_fault_penalty
    } else {
        1.0
    };
    let upper = (stretched_upper + staging_ms) / (min_thermal * paging) * UPPER_SLACK + TOL;
    let lower = sync_lower * (1.0 - TOL) - TOL;

    if ir.claimed_makespan_ms < lower {
        out.push(Diagnostic::new(
            DiagCode::BoundViolation,
            format!(
                "claimed makespan {:.3} ms beats the synchronous column lower bound {:.3} ms — \
                 no schedule of these stages can be that fast",
                ir.claimed_makespan_ms, sync_lower
            ),
        ));
    }
    if ir.claimed_makespan_ms > upper {
        out.push(Diagnostic::new(
            DiagCode::BoundViolation,
            format!(
                "claimed makespan {:.3} ms exceeds the worst-case contention upper bound \
                 {:.3} ms (coupling-stretched columns + staging, throttled and paging)",
                ir.claimed_makespan_ms, upper
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RequestIr, RunIr, StageIr};
    use h2p_contention::ContentionClass;
    use h2p_models::graph::LayerRange;
    use h2p_simulator::processor::ProcessorId;

    /// A well-formed two-request, two-slot IR on Kirin 990 (slot 0 = NPU,
    /// slot 1 = CPU_B in power order).
    fn clean_ir(soc: &SocSpec) -> PlanIr {
        let procs = soc.processors_by_power();
        let (p0, p1) = (procs[0], procs[1]);
        let mk_req = |idx: usize| RequestIr {
            request: idx,
            model: format!("toy{idx}"),
            layer_count: 4,
            npu_supported: vec![true; 4],
            class: ContentionClass::Low,
            stages: vec![
                Some(StageIr {
                    range: LayerRange::new(0, 1),
                    proc: p0,
                    exec_ms: 2.0,
                    copy_in_ms: 0.0,
                    intensity: 0.1,
                    footprint_bytes: 1_000,
                    runs: Vec::new(),
                }),
                Some(StageIr {
                    range: LayerRange::new(2, 3),
                    proc: p1,
                    exec_ms: 2.0,
                    copy_in_ms: 0.1,
                    intensity: 0.1,
                    footprint_bytes: 1_000,
                    runs: Vec::new(),
                }),
            ],
        };
        let mut ir = PlanIr {
            procs: vec![p0, p1],
            requests: vec![mk_req(0), mk_req(1)],
            claimed_makespan_ms: 0.0,
            claimed_bubble_ms: 0.0,
            staging_gbps: 2.0,
        };
        // Make the claims self-consistent the way the planner's are.
        let mut sync = 0.0;
        let mut bub = 0.0;
        for j in 0..ir.column_count() {
            let times: Vec<f64> = ir
                .column_cells(j)
                .iter()
                .filter_map(|&(p, s)| ir.stage(p, s))
                .map(StageIr::total_ms)
                .collect();
            let max = times.iter().fold(0.0f64, |a, &b| a.max(b));
            sync += max;
            bub += times.iter().map(|t| max - t).sum::<f64>();
        }
        ir.claimed_makespan_ms = sync;
        ir.claimed_bubble_ms = bub;
        ir
    }

    fn kirin() -> SocSpec {
        SocSpec::kirin_990()
    }

    #[test]
    fn clean_ir_lints_clean() {
        let soc = kirin();
        let d = lint_plan(&soc, &clean_ir(&soc));
        assert!(d.is_clean(), "{d}");
        assert_eq!(d.warn_count(), 0, "{d}");
        assert!(d.checks >= 6, "all families must run, got {}", d.checks);
    }

    #[test]
    fn empty_plan_warns() {
        let soc = kirin();
        let ir = PlanIr {
            procs: soc.processors_by_power(),
            requests: Vec::new(),
            claimed_makespan_ms: 0.0,
            claimed_bubble_ms: 0.0,
            staging_gbps: 2.0,
        };
        let d = lint_plan(&soc, &ir);
        assert!(d.is_clean());
        assert_eq!(d.warn_count(), 1);
        assert_eq!(d.diags[0].code, DiagCode::EmptyPlan);
    }

    #[test]
    fn dropped_layer_is_a_coverage_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        // Shrink the last stage: layer 3 is now uncovered.
        if let Some(s) = &mut ir.requests[0].stages[1] {
            s.range = LayerRange::new(2, 2);
        }
        let d = lint_plan(&soc, &ir);
        assert!(d
            .diags
            .iter()
            .any(|x| x.code == DiagCode::LayerCoverage && x.severity == Severity::Error));
    }

    use crate::diag::Severity;

    #[test]
    fn overlapping_ranges_are_a_coverage_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        if let Some(s) = &mut ir.requests[1].stages[1] {
            s.range = LayerRange::new(1, 3); // overlaps layer 1 of stage 0
        }
        let d = lint_plan(&soc, &ir);
        assert!(!d.is_clean(), "{d}");
        assert!(d.diags.iter().any(|x| x.code == DiagCode::LayerCoverage));
    }

    #[test]
    fn duplicate_slot_processor_is_a_slot_conflict() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        ir.procs[1] = ir.procs[0];
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::SlotConflict),
            "{d}"
        );
    }

    #[test]
    fn stage_off_its_slot_processor_is_infeasible() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        let other = ir.procs[0];
        if let Some(s) = &mut ir.requests[0].stages[1] {
            s.proc = other;
        }
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::ProcFeasibility),
            "{d}"
        );
    }

    #[test]
    fn out_of_range_processor_is_infeasible() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        ir.procs[0] = ProcessorId(99);
        if let Some(s) = &mut ir.requests[0].stages[0] {
            s.proc = ProcessorId(99);
        }
        if let Some(s) = &mut ir.requests[1].stages[0] {
            s.proc = ProcessorId(99);
        }
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::ProcFeasibility),
            "{d}"
        );
    }

    #[test]
    fn unsupported_layer_on_npu_without_runs_is_infeasible() {
        let soc = kirin();
        let npu = soc
            .processor_by_kind(ProcessorKind::Npu)
            .expect("kirin has an NPU");
        let mut ir = clean_ir(&soc);
        // Slot 0 on Kirin power order is the NPU.
        assert_eq!(ir.procs[0], npu);
        ir.requests[0].npu_supported[1] = false;
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::ProcFeasibility),
            "{d}"
        );
    }

    #[test]
    fn unsupported_layer_in_fallback_run_is_fine() {
        let soc = kirin();
        let cpu = soc
            .processor_by_kind(ProcessorKind::CpuBig)
            .expect("kirin has a big CPU");
        let mut ir = clean_ir(&soc);
        ir.requests[0].npu_supported[1] = false;
        if let Some(s) = &mut ir.requests[0].stages[0] {
            s.runs = vec![
                RunIr {
                    range: LayerRange::new(0, 0),
                    proc: s.proc,
                    ms: 1.0,
                },
                RunIr {
                    range: LayerRange::new(1, 1),
                    proc: cpu,
                    ms: 1.0,
                },
            ];
        }
        let d = lint_plan(&soc, &ir);
        assert!(d.is_clean(), "{d}");
    }

    #[test]
    fn runs_that_do_not_tile_the_stage_are_a_coverage_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        if let Some(s) = &mut ir.requests[0].stages[0] {
            s.runs = vec![RunIr {
                range: LayerRange::new(0, 0),
                proc: s.proc,
                ms: 1.0,
            }]; // layer 1 of the stage has no run
        }
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::LayerCoverage),
            "{d}"
        );
    }

    #[test]
    fn overcommitted_memory_warns_but_does_not_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        for req in &mut ir.requests {
            for s in req.stages.iter_mut().flatten() {
                s.footprint_bytes = soc.memory.capacity_bytes;
            }
        }
        // Keep the claims consistent: footprints feed staging, so recompute
        // an enormous-but-consistent claim is unnecessary — the sync bound
        // does not move with footprints, only the upper bound does.
        let d = lint_plan(&soc, &ir);
        assert!(d.is_clean(), "{d}");
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::MemoryBudget),
            "{d}"
        );
    }

    #[test]
    fn duplicate_request_index_is_a_dag_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        ir.requests[1].request = ir.requests[0].request;
        let d = lint_plan(&soc, &ir);
        assert!(d.diags.iter().any(|x| x.code == DiagCode::DagOrder), "{d}");
    }

    #[test]
    fn adjacent_high_contention_requests_warn() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        ir.requests[0].class = ContentionClass::High;
        ir.requests[1].class = ContentionClass::High;
        let d = lint_plan(&soc, &ir);
        assert!(d.is_clean(), "window conflicts are warnings: {d}");
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::ContentionWindow),
            "{d}"
        );
    }

    #[test]
    fn inflated_makespan_claim_is_a_bound_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        ir.claimed_makespan_ms = ir.claimed_makespan_ms * 1000.0 + 1000.0;
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::BoundViolation),
            "{d}"
        );
    }

    #[test]
    fn impossibly_fast_makespan_claim_is_a_bound_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        ir.claimed_makespan_ms /= 10.0;
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::BoundViolation),
            "{d}"
        );
    }

    #[test]
    fn wrong_bubble_claim_is_a_bound_error() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        ir.claimed_bubble_ms += 123.0;
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::BoundViolation),
            "{d}"
        );
    }

    #[test]
    fn nan_exec_time_is_a_nonfinite_error_and_skips_bounds() {
        let soc = kirin();
        let mut ir = clean_ir(&soc);
        if let Some(s) = &mut ir.requests[0].stages[0] {
            s.exec_ms = f64::NAN;
        }
        let d = lint_plan(&soc, &ir);
        assert!(
            d.diags.iter().any(|x| x.code == DiagCode::NonFiniteCost),
            "{d}"
        );
        // Bound analysis must not also fire spuriously on NaN arithmetic.
        assert!(
            !d.diags.iter().any(|x| x.code == DiagCode::BoundViolation),
            "{d}"
        );
    }
}
